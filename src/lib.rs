//! G-MAP: statistical pattern based modeling of GPU memory access streams.
//!
//! This is the façade crate of the workspace: it re-exports every
//! sub-crate under one roof so applications can depend on `gmap` alone.
//!
//! A reproduction of Panda, Zheng, Wang, Gerstlauer and John,
//! *"Statistical Pattern Based Modeling of GPU Memory Access Streams"*,
//! DAC 2017.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `gmap-core` | profiler, proxy generator, miniaturization, validation |
//! | [`gpu`] | `gmap-gpu` | GPU execution model, kernel DSL, 18 synthetic workloads |
//! | [`memsim`] | `gmap-memsim` | multi-core cache hierarchy, MSHRs, prefetchers |
//! | [`dram`] | `gmap-dram` | GDDR DRAM model with FR-FCFS controllers |
//! | [`trace`] | `gmap-trace` | records, histograms, reuse distance, statistics |
//! | [`mod@bench`] | `gmap-bench` | single-pass multi-config sweep engine |
//! | [`analyze`] | `gmap-analyze` | static verifier for the kernel DSL, determinism lint |
//! | [`ingest`] | `gmap-ingest` | streaming trace ingestion, online pattern classification |
//! | [`serve`] | `gmap-serve` | concurrent model-cloning HTTP service |
//!
//! # Quickstart
//!
//! Profile an application, regenerate a clone from the statistics alone,
//! and check that the clone's cache behaviour matches:
//!
//! ```
//! use gmap::core::{profile_kernel, run_original, run_proxy, ProfilerConfig, SimtConfig};
//! use gmap::gpu::workloads::{self, Scale};
//!
//! # fn main() -> Result<(), gmap::core::GmapError> {
//! let kernel = workloads::kmeans(Scale::Tiny);
//! let cfg = SimtConfig::default();
//!
//! let original = run_original(&kernel, &cfg)?;
//! let profile = profile_kernel(&kernel, &ProfilerConfig::default());
//! let clone = run_proxy(&profile, &cfg)?;
//!
//! let error = (original.l1_miss_pct() - clone.l1_miss_pct()).abs();
//! assert!(error < 15.0, "clone should track the original within a few points");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use gmap_analyze as analyze;
pub use gmap_bench as bench;
pub use gmap_core as core;
pub use gmap_dram as dram;
pub use gmap_gpu as gpu;
pub use gmap_ingest as ingest;
pub use gmap_memsim as memsim;
pub use gmap_serve as serve;
pub use gmap_trace as trace;
