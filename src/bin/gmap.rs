//! `gmap` — command-line front end to the G-MAP pipeline.
//!
//! ```text
//! gmap profile  --workload kmeans [--scale small] [--rebase 0x7f000000] -o profile.json
//! gmap info     -p profile.json
//! gmap clone    -p profile.json [--seed 7] [--factor 4] -o trace.bin
//! gmap simulate (--workload NAME | -p profile.json | --trace trace.bin)
//!               [--l1 16384:4:128] [--l2 1048576:8:128] [--policy lrr|gto]
//!               [--seed 7] [--dram]
//! gmap analyze  --trace trace.txt --grid 24 --block 128 [--json]
//! gmap list
//! gmap serve    [--listen 127.0.0.1:0] [--workers 4] [--queue 64]
//! gmap client   <profile|clone|evaluate|ingest|health|metrics> --addr HOST:PORT ...
//! ```
//!
//! The binary wraps the library pipeline so a memory-system architect can
//! work with shipped profiles without writing Rust.

use gmap::core::{
    generate::generate_streams, miniaturize, profile_kernel, simulate_streams, GmapProfile,
    ProfilerConfig, SimtConfig,
};
use gmap::dram::DramConfig;
use gmap::gpu::schedule::{Policy, WarpStream, WarpStreamEvent};
use gmap::gpu::workloads::{self, Scale};
use gmap::memsim::cache::{CacheConfig, ReplacementPolicy};
use gmap::memsim::hierarchy::TraceCapture;
use gmap::trace::record::{ThreadId, WarpId};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprint!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("profile") => cmd_profile(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("clone") => cmd_clone(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("fidelity") => cmd_fidelity(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("list") => {
            check_flags(&args[1..], &[], &[])?;
            for n in workloads::NAMES {
                println!("{n}");
            }
            Ok(())
        }
        Some("help") | None => {
            print!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

fn usage() -> String {
    "gmap — GPU memory access proxies (G-MAP, DAC 2017)

USAGE:
  gmap list                                     list bundled workload models
  gmap profile (--workload NAME | --trace FILE --grid B --block T) [OPTS] -o FILE
  gmap analyze (--workload NAME | --spec FILE | --fixture NAME | --all
                | --trace FILE --grid B --block T)
                                                statically verify a kernel spec,
                                                or heat-map an external trace
  gmap info -p FILE                             summarize a profile
  gmap clone -p FILE [OPTS] -o FILE             regenerate a clone trace
  gmap simulate SOURCE [OPTS]                   run the memory hierarchy
  gmap fidelity (-p FILE | --workload NAME)     predict clone trustworthiness
  gmap serve [OPTS]                             run the model-cloning HTTP service
                                                (or a router with --route)
  gmap client ACTION --addr HOST:PORT [OPTS]    talk to a running service
                                                (or --peers P1,P2 for a fleet)

PROFILE OPTIONS:
  --scale tiny|small|default    workload size (default: small)
  --rebase HEX                  shift base addresses (obfuscation)
  External traces stream through gmap-ingest in bounded memory; the
  printed content key equals the model id POST /v1/ingest returns for
  the same trace and name.

ANALYZE OPTIONS (exactly one source: --workload, --spec, --fixture, --all,
or --trace):
  --workload NAME               analyze a bundled workload model
  --spec FILE                   analyze a kernel spec from a JSON file
  --fixture NAME                analyze a named fixture: defects (oob-affine,
                                uncoalesced, barrier-divergent,
                                overlapping-write, race-ww, race-rw,
                                race-interblock, race-ww-interblock) or
                                certified-clean ones (phased-stencil,
                                phased-reduction, clean-streaming)
  --all                         analyze every bundled workload; exit nonzero
                                if any has error findings
  --scale tiny|small|default    workload size (default: small)
  --dump-spec FILE              also write the resolved spec as JSON
  --races                       print only the race-verdict pair table
                                (per-scope verdicts plus witness schedules)
  --trace FILE                  stream an external trace (text or binary) and
                                print its per-array/per-PC heat-map report
                                instead of static analysis; needs --grid
                                BLOCKS and --block THREADS
  --json                        emit the full report as JSON (the static
                                report for spec sources, an array under
                                --all, or the heat-map for --trace)
  Exits nonzero when the analyzer reports error-severity findings,
  in every output mode (--races and --json included).

CLONE OPTIONS:
  --seed N                      generation seed (default: 42)
  --factor F                    miniaturization factor (default: 1)
  --format text|binary          trace output format (default: text)

SIMULATE SOURCE (exactly one):
  --workload NAME               execute a bundled workload model
  -p, --profile FILE            clone a shipped profile

SIMULATE OPTIONS:
  --l1 SIZE:ASSOC:LINE          L1 geometry in bytes (default 16384:4:128)
  --l2 SIZE:ASSOC:LINE          L2 geometry in bytes (default 1048576:8:128)
  --policy lrr|gto|self:P       warp scheduler (default lrr)
  --seed N                      scheduling/generation seed (default 42)
  --dram                        also replay memory traffic through DRAM

SERVE OPTIONS:
  --listen ADDR                 bind address (default 127.0.0.1:0, ephemeral
                                port; the bound address is printed on stdout)
  --workers N                   pipeline worker threads (default 2)
  --queue N                     pending-job capacity before 429 (default 64)
  --deadline-ms N               per-request deadline (default 60000)
  --cache-dir DIR               on-disk tier for the model cache
  --cache-capacity N            memory-tier LRU bound (default 256 models)
  --keepalive-max N             requests served per connection (default 100)
  --read-timeout-ms N           mid-request stall budget, then 408 (default 10000)
  --idle-timeout-ms N           keep-alive idle budget, then close (default 30000)
  --faults SEED:SPEC            deterministic fault injection, e.g.
                                7:disk_err=0.2,panic=0.1,slow_ms=50
                                (also read from GMAP_FAULTS; flag wins)
  --route P1,P2,...             router mode: forward /v1/profile, /v1/clone,
                                /v1/evaluate, and /v1/ingest to the replica
                                owning each request's content key on a
                                consistent-hash ring, propagating the
                                remaining deadline budget and failing over
                                to ring successors on transport errors
                                (duplicate or self-referencing entries are
                                rejected)
  --fleet P1,P2,...             replica-fleet membership, enabling successor
                                replication (RF-1 ring successors receive an
                                async copy of every stored model), hinted
                                handoff while a peer is down, and read-repair
  --advertise HOST:PORT         this server's own address inside --fleet
                                (default: the bound listen address)
  --replication-factor N        replica-set size per key (default 2:
                                the owner plus one successor)
  --probe-interval-ms N         cadence of active peer /healthz probes and
                                hint replay (default 500)
  The server runs until stdin reaches EOF, then drains and exits.

CLIENT ACTIONS (all need --addr HOST:PORT, or --peers P1,P2,... to shard
requests across a replica fleet by content key with failover; add
--retries N to retry transient failures with exponential backoff —
idempotent requests only; ingest is --addr-only):
  health                        GET /healthz
  metrics                       GET /metrics
  profile  (--workload NAME [--scale tiny|small|default] | --spec FILE)
  analyze  (--workload NAME [--scale tiny|small|default] | --spec FILE)
  ingest   --trace FILE --grid B --block T [--name N] [--chunk BYTES]
           stream a raw trace to POST /v1/ingest (chunked transfer
           encoding; the service profiles it as it arrives and answers
           with the model id, stats, and heat-map report)
  clone    --model ID [--factor F] [--seed N]
  evaluate --model ID --grid KB:ASSOC[:LINE[:POLICY]][,...]
           [--level l1|l2] [--kernel N] [--metric l1_miss_pct|l2_miss_pct]
           [--seed N]
           [--stride-prefetch TABLE:DEGREE[:DISTANCE[:CONFIDENCE]]]  (l1 grids)
           [--stream-prefetch WINDOW:DEGREE[:STREAMS]]               (l2 grids)
  drain    POST /v1/admin/drain (--addr only): flip the replica to
           draining and stream its models to ring successors
"
    .to_owned()
}

/// Strict argument validation: every token must be a known flag (or the
/// value of one). Typos fail loudly instead of silently taking defaults.
fn check_flags(args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> Result<(), String> {
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if value_flags.contains(&a) {
            if i + 1 >= args.len() {
                return Err(format!("flag {a} needs a value"));
            }
            i += 2;
        } else if bool_flags.contains(&a) {
            i += 1;
        } else if a.starts_with('-') {
            return Err(format!("unknown flag {a:?}"));
        } else {
            return Err(format!("unexpected argument {a:?}"));
        }
    }
    Ok(())
}

/// Minimal flag parser: `--key value` pairs plus `-o`/`-p` aliases.
fn flag<'a>(args: &'a [String], names: &[&str]) -> Option<&'a str> {
    args.windows(2)
        .find(|w| names.contains(&w[0].as_str()))
        .map(|w| w[1].as_str())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_scale(args: &[String]) -> Scale {
    match flag(args, &["--scale"]) {
        Some("tiny") => Scale::Tiny,
        Some("default") => Scale::Default,
        _ => Scale::Small,
    }
}

fn parse_seed(args: &[String]) -> Result<u64, String> {
    match flag(args, &["--seed"]) {
        None => Ok(42),
        Some(s) => s.parse().map_err(|e| format!("bad --seed {s:?}: {e}")),
    }
}

fn parse_cache(spec: &str) -> Result<CacheConfig, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 {
        return Err(format!(
            "bad cache spec {spec:?} (expected SIZE:ASSOC:LINE)"
        ));
    }
    let size: u64 = parts[0].parse().map_err(|e| format!("bad size: {e}"))?;
    let assoc: u32 = parts[1].parse().map_err(|e| format!("bad assoc: {e}"))?;
    let line: u64 = parts[2].parse().map_err(|e| format!("bad line: {e}"))?;
    CacheConfig::new(size, assoc, line, ReplacementPolicy::Lru).map_err(|e| e.to_string())
}

fn parse_policy(args: &[String]) -> Result<Policy, String> {
    match flag(args, &["--policy"]) {
        None | Some("lrr") => Ok(Policy::Lrr),
        Some("gto") => Ok(Policy::Gto),
        Some(s) if s.starts_with("self:") => s[5..]
            .parse()
            .map(Policy::SelfProb)
            .map_err(|e| format!("bad --policy {s:?}: {e}")),
        Some(other) => Err(format!("unknown policy {other:?}")),
    }
}

fn load_profile(path: &str) -> Result<GmapProfile, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let profile =
        GmapProfile::load(BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))?;
    profile
        .validate()
        .map_err(|e| format!("{path} is inconsistent: {e}"))?;
    Ok(profile)
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    check_flags(
        args,
        &[
            "-o",
            "--output",
            "--workload",
            "--trace",
            "--grid",
            "--block",
            "--scale",
            "--rebase",
        ],
        &[],
    )?;
    let out = flag(args, &["-o", "--output"]).ok_or("missing -o FILE")?;
    let mut profile = match (flag(args, &["--workload"]), flag(args, &["--trace"])) {
        (Some(name), None) => {
            let kernel = workloads::by_name(name, parse_scale(args))
                .ok_or_else(|| format!("unknown workload {name:?} (see `gmap list`)"))?;
            profile_kernel(&kernel, &ProfilerConfig::default())
        }
        (None, Some(path)) => {
            // External per-thread trace: needs the launch geometry.
            // Streamed through gmap-ingest, so arbitrarily large traces
            // profile in bounded memory (format is auto-detected).
            let (launch, name) = trace_geometry(args, path)?;
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let outcome = gmap::ingest::ingest_reader(
                &name,
                BufReader::new(file),
                &launch,
                gmap::ingest::IngestConfig::default(),
                gmap::ingest::DEFAULT_CHUNK_BYTES,
            )
            .map_err(|e| format!("cannot profile {path}: {e}"))?;
            outcome.profile
        }
        _ => return Err("pass exactly one of --workload NAME or --trace FILE".into()),
    };
    let name = profile.name.clone();
    if let Some(shift) = flag(args, &["--rebase"]) {
        let hex = shift.strip_prefix("0x").unwrap_or(shift);
        let delta = i64::from_str_radix(hex, 16).map_err(|e| format!("bad --rebase: {e}"))?;
        profile.rebase(delta);
    }
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    profile
        .save(BufWriter::new(file))
        .map_err(|e| e.to_string())?;
    println!(
        "profiled {name}: {} PCs, {} pi profiles, {} warp accesses -> {out}",
        profile.num_slots(),
        profile.profiles.len(),
        profile.total_warp_accesses
    );
    // The content key matches the model id `POST /v1/ingest` returns for
    // the same trace, so local and served profiling can be diffed.
    let key = gmap::core::cachekey::key_of(&gmap::core::AppProfile {
        name,
        kernels: vec![profile],
    });
    println!("content key: {key}");
    // For bundled workloads, also print the spec-addressed model id the
    // service computes for the same profile request, so routed responses
    // can be checked against a locally computed key.
    if let Some(w) = flag(args, &["--workload"]) {
        let scale = gmap::serve::api::scale_name(parse_scale(args));
        println!(
            "model id: {}",
            gmap::serve::handlers::model_id_for(w, scale)
        );
    }
    Ok(())
}

/// Launch geometry + workload name (the file stem) for an external trace.
fn trace_geometry(
    args: &[String],
    path: &str,
) -> Result<(gmap::gpu::hierarchy::LaunchConfig, String), String> {
    let grid: u32 = flag(args, &["--grid"])
        .ok_or("external traces need --grid BLOCKS")?
        .parse()
        .map_err(|e| format!("bad --grid: {e}"))?;
    let block: u32 = flag(args, &["--block"])
        .ok_or("external traces need --block THREADS")?
        .parse()
        .map_err(|e| format!("bad --block: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .map_or("trace", |s| s.to_str().unwrap_or("trace"))
        .to_owned();
    Ok((gmap::gpu::hierarchy::LaunchConfig::new(grid, block), name))
}

fn load_spec(path: &str) -> Result<gmap::gpu::kernel::KernelDesc, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&raw).map_err(|e| format!("cannot parse {path} as a kernel spec: {e}"))
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    check_flags(
        args,
        &[
            "--workload",
            "--spec",
            "--fixture",
            "--scale",
            "--dump-spec",
            "--trace",
            "--grid",
            "--block",
        ],
        &["--all", "--json", "--races"],
    )?;
    if let Some(path) = flag(args, &["--trace"]) {
        if has_flag(args, "--races") {
            return Err("--races only applies to kernel specs, not --trace heat-maps".into());
        }
        return analyze_trace(args, path);
    }
    let kernels: Vec<gmap::gpu::kernel::KernelDesc> = match (
        flag(args, &["--workload"]),
        flag(args, &["--spec"]),
        flag(args, &["--fixture"]),
        has_flag(args, "--all"),
    ) {
        (Some(name), None, None, false) => {
            vec![workloads::by_name(name, parse_scale(args))
                .ok_or_else(|| format!("unknown workload {name:?} (see `gmap list`)"))?]
        }
        (None, Some(path), None, false) => vec![load_spec(path)?],
        (None, None, Some(name), false) => {
            vec![gmap::analyze::fixtures::by_name(name).ok_or_else(|| {
                format!(
                    "unknown fixture {name:?} (known: {}, phased-stencil, phased-reduction, clean-streaming)",
                    gmap::analyze::fixtures::NAMES.join(", ")
                )
            })?]
        }
        (None, None, None, true) => workloads::all(parse_scale(args)),
        _ => return Err("pass exactly one of --workload, --spec, --fixture, or --all".into()),
    };
    if let Some(out) = flag(args, &["--dump-spec"]) {
        let spec = gmap::core::cachekey::canonical_json(&kernels[0]);
        std::fs::write(out, spec).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    let reports: Vec<gmap::analyze::StaticReport> =
        kernels.iter().map(gmap::analyze::analyze_kernel).collect();
    let total_errors: usize = reports.iter().map(|r| r.errors().count()).sum();
    if has_flag(args, "--json") {
        // One source -> one report object; --all -> an array. Error
        // findings still fail the process so the JSON mode can gate CI.
        let body = if reports.len() == 1 {
            serde_json::to_string_pretty(&reports[0])
        } else {
            serde_json::to_string_pretty(&reports)
        }
        .map_err(|e| format!("cannot serialize report: {e}"))?;
        println!("{body}");
    } else if has_flag(args, "--races") {
        for report in &reports {
            print!("{}", report.render_races());
        }
    } else {
        for report in &reports {
            print!("{}", report.render());
        }
    }
    if total_errors > 0 {
        Err(format!(
            "static analysis found {total_errors} error finding(s)"
        ))
    } else {
        Ok(())
    }
}

/// `gmap analyze --trace FILE --grid B --block T [--json]`: stream an
/// external trace and print its per-array/per-PC heat-map report.
fn analyze_trace(args: &[String], path: &str) -> Result<(), String> {
    if flag(args, &["--workload", "--spec", "--fixture"]).is_some() || has_flag(args, "--all") {
        return Err("pass exactly one of --workload, --spec, --fixture, --all, or --trace".into());
    }
    let (launch, name) = trace_geometry(args, path)?;
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let outcome = gmap::ingest::ingest_reader(
        &name,
        BufReader::new(file),
        &launch,
        gmap::ingest::IngestConfig::default(),
        gmap::ingest::DEFAULT_CHUNK_BYTES,
    )
    .map_err(|e| format!("cannot analyze {path}: {e}"))?;
    if has_flag(args, "--json") {
        println!("{}", outcome.report.to_json());
    } else {
        print!("{}", outcome.report.render_text());
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    check_flags(args, &["-p", "--profile"], &[])?;
    let path = flag(args, &["-p", "--profile"]).ok_or("missing -p FILE")?;
    let p = load_profile(path)?;
    println!("name            : {}", p.name);
    println!(
        "launch          : {} blocks x {} threads ({} warps)",
        p.launch.num_blocks(),
        p.launch.threads_per_block(),
        p.launch.total_warps(p.warp_size)
    );
    println!("warp accesses   : {}", p.total_warp_accesses);
    println!("pi profiles     : {}", p.profiles.len());
    println!("static PCs      : {}", p.num_slots());
    let freqs = p.slot_frequencies();
    let mut order: Vec<usize> = (0..p.num_slots()).collect();
    order.sort_by(|&a, &b| freqs[b].partial_cmp(&freqs[a]).expect("finite"));
    println!(
        "{:<10} {:>8} {:>6} {:>14} {:>14}",
        "PC", "freq%", "kind", "inter-warp", "intra-warp"
    );
    for &s in order.iter().take(10) {
        println!(
            "{:<10} {:>7.1}% {:>6} {:>14} {:>14}",
            p.pcs[s].to_string(),
            freqs[s] * 100.0,
            format!("{}", p.kinds[s]),
            p.inter_stride[s]
                .dominant()
                .map_or("-".into(), |(v, f)| format!("{v}B@{:.0}%", f * 100.0)),
            p.intra_stride[s]
                .dominant()
                .map_or("-".into(), |(v, f)| format!("{v}B@{:.0}%", f * 100.0)),
        );
    }
    for (i, prof) in p.profiles.iter().enumerate() {
        println!(
            "pi[{i}]: weight {:.1}%  {} accesses  reuse {}",
            p.profile_weights.freq_of(i) * 100.0,
            prof.num_accesses(),
            p.reuse[i].class()
        );
    }
    Ok(())
}

/// Flattens warp streams to thread-trace entries for the trace writers
/// (each transaction attributed to the warp's lane-0 thread).
fn streams_to_entries(
    streams: &[WarpStream],
    profile: &GmapProfile,
) -> Vec<(ThreadId, gmap::trace::record::MemAccess)> {
    let mut out = Vec::new();
    for s in streams {
        let tid = profile
            .launch
            .thread_of(WarpId(s.warp.0), 0, profile.warp_size)
            .unwrap_or(ThreadId(s.warp.0 * profile.warp_size));
        for e in &s.events {
            if let WarpStreamEvent::Access(a) = e {
                for l in &a.lines {
                    out.push((
                        tid,
                        gmap::trace::record::MemAccess {
                            pc: a.pc,
                            addr: *l,
                            kind: a.kind,
                        },
                    ));
                }
            }
        }
    }
    out
}

fn cmd_clone(args: &[String]) -> Result<(), String> {
    check_flags(
        args,
        &[
            "-p",
            "--profile",
            "-o",
            "--output",
            "--seed",
            "--factor",
            "--format",
        ],
        &[],
    )?;
    let path = flag(args, &["-p", "--profile"]).ok_or("missing -p FILE")?;
    let out = flag(args, &["-o", "--output"]).ok_or("missing -o FILE")?;
    let seed = parse_seed(args)?;
    let mut profile = load_profile(path)?;
    if let Some(f) = flag(args, &["--factor"]) {
        let factor: f64 = f.parse().map_err(|e| format!("bad --factor: {e}"))?;
        profile = miniaturize(&profile, factor).map_err(|e| e.to_string())?;
    }
    let streams = generate_streams(&profile, seed);
    let entries = streams_to_entries(&streams, &profile);
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let mut w = BufWriter::new(file);
    match flag(args, &["--format"]) {
        None | Some("text") => {
            gmap::trace::io::write_text(&mut w, &entries).map_err(|e| e.to_string())?
        }
        Some("binary") => {
            gmap::trace::io::write_binary(&mut w, &entries).map_err(|e| e.to_string())?
        }
        Some(other) => return Err(format!("unknown --format {other:?}")),
    }
    println!(
        "clone of '{}': {} transactions -> {out}",
        profile.name,
        entries.len()
    );
    Ok(())
}

fn cmd_fidelity(args: &[String]) -> Result<(), String> {
    check_flags(args, &["-p", "--profile", "--workload", "--scale"], &[])?;
    let profile = match (
        flag(args, &["-p", "--profile"]),
        flag(args, &["--workload"]),
    ) {
        (Some(path), None) => load_profile(path)?,
        (None, Some(name)) => {
            let kernel = workloads::by_name(name, parse_scale(args))
                .ok_or_else(|| format!("unknown workload {name:?}"))?;
            profile_kernel(&kernel, &ProfilerConfig::default())
        }
        _ => return Err("pass exactly one of -p FILE or --workload NAME".into()),
    };
    let report = gmap::core::fidelity::analyze(&profile);
    println!("{report}");
    println!(
        "\ninterpretation: {} fidelity — {}",
        report.class,
        match report.class {
            gmap::core::FidelityClass::High =>
                "dominant patterns; expect clone errors of a few percent or less",
            gmap::core::FidelityClass::Medium =>
                "mixed regularity; expect single-digit to low-teens errors",
            gmap::core::FidelityClass::Low =>
                "no dominant patterns (the hotspot regime); treat clone results as aggregate, not fine-grained",
        }
    );
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    check_flags(
        args,
        &[
            "--workload",
            "-p",
            "--profile",
            "--l1",
            "--l2",
            "--policy",
            "--seed",
            "--scale",
        ],
        &["--dram"],
    )?;
    let mut cfg = SimtConfig {
        seed: parse_seed(args)?,
        policy: parse_policy(args)?,
        ..SimtConfig::default()
    };
    if let Some(spec) = flag(args, &["--l1"]) {
        cfg.hierarchy.l1 = parse_cache(spec)?;
    }
    if let Some(spec) = flag(args, &["--l2"]) {
        cfg.hierarchy.l2 = parse_cache(spec)?;
    }
    let with_dram = has_flag(args, "--dram");
    cfg.hierarchy.trace_capture = if with_dram {
        TraceCapture::Full
    } else {
        TraceCapture::Off
    };

    let (streams, launch, label) = match (
        flag(args, &["--workload"]),
        flag(args, &["-p", "--profile"]),
    ) {
        (Some(name), None) => {
            let kernel = workloads::by_name(name, parse_scale(args))
                .ok_or_else(|| format!("unknown workload {name:?}"))?;
            let streams = gmap::core::model::original_streams(&kernel);
            (streams, kernel.launch, format!("original {name}"))
        }
        (None, Some(path)) => {
            let profile = load_profile(path)?;
            let streams = generate_streams(&profile, cfg.seed);
            (
                streams,
                profile.launch,
                format!("clone of {}", profile.name),
            )
        }
        _ => return Err("pass exactly one of --workload NAME or -p FILE".into()),
    };

    let out = simulate_streams(&streams, &launch, &cfg).map_err(|e| e.to_string())?;
    println!("simulated {label}");
    println!("cycles          : {}", out.schedule.cycles);
    println!("warp accesses   : {}", out.schedule.issued_accesses);
    println!("transactions    : {}", out.schedule.issued_transactions);
    println!("SchedP_self     : {:.3}", out.schedule.sched_p_self);
    println!("L1 miss rate    : {:.2}%", out.l1_miss_pct());
    println!("L2 miss rate    : {:.2}%", out.l2_miss_pct());
    println!("memory reads    : {}", out.stats.mem_reads);
    println!("memory writes   : {}", out.stats.mem_writes);
    if with_dram {
        let m = out.dram_metrics(DramConfig::table2_baseline());
        println!("DRAM RBL        : {:.3}", m.rbl);
        println!("DRAM queue len  : {:.2}", m.avg_queue_len);
        println!("DRAM read lat   : {:.1} cycles", m.avg_read_latency);
        println!("DRAM write lat  : {:.1} cycles", m.avg_write_latency);
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    check_flags(
        args,
        &[
            "--listen",
            "--workers",
            "--queue",
            "--deadline-ms",
            "--cache-dir",
            "--cache-capacity",
            "--keepalive-max",
            "--read-timeout-ms",
            "--idle-timeout-ms",
            "--faults",
            "--route",
            "--fleet",
            "--advertise",
            "--replication-factor",
            "--probe-interval-ms",
        ],
        &[],
    )?;
    let mut config = gmap::serve::ServeConfig::default();
    if let Some(peers) = flag(args, &["--route"]) {
        let route = parse_peer_list(peers, "--route")?;
        // A router forwarding to itself would loop until the deadline
        // burns out; reject the misconfiguration up front.
        if let Some(listen) = flag(args, &["--listen"]) {
            if route.iter().any(|p| p == listen) {
                return Err(format!(
                    "--route must not include the router's own --listen address {listen}"
                ));
            }
        }
        config.route = Some(route);
    }
    if let Some(peers) = flag(args, &["--fleet"]) {
        config.fleet = Some(parse_peer_list(peers, "--fleet")?);
    }
    if let Some(addr) = flag(args, &["--advertise"]) {
        if let Some(fleet) = &config.fleet {
            if !fleet.iter().any(|p| p == addr) {
                return Err(format!(
                    "--advertise {addr} is not a member of --fleet (replication targets \
                     are chosen by ring position, so the fleet must know this address)"
                ));
            }
        }
        config.advertise = Some(addr.to_owned());
    }
    if let Some(n) = flag(args, &["--replication-factor"]) {
        config.replication_factor = n
            .parse()
            .map_err(|e| format!("bad --replication-factor {n:?}: {e}"))?;
    }
    if let Some(n) = flag(args, &["--probe-interval-ms"]) {
        let ms: u64 = n
            .parse()
            .map_err(|e| format!("bad --probe-interval-ms {n:?}: {e}"))?;
        config.probe_interval = std::time::Duration::from_millis(ms);
    }
    if let Some(listen) = flag(args, &["--listen"]) {
        config.listen = listen.to_owned();
    }
    if let Some(n) = flag(args, &["--workers"]) {
        config.workers = n.parse().map_err(|e| format!("bad --workers {n:?}: {e}"))?;
    }
    if let Some(n) = flag(args, &["--queue"]) {
        config.queue_capacity = n.parse().map_err(|e| format!("bad --queue {n:?}: {e}"))?;
    }
    if let Some(n) = flag(args, &["--deadline-ms"]) {
        let ms: u64 = n
            .parse()
            .map_err(|e| format!("bad --deadline-ms {n:?}: {e}"))?;
        config.deadline = std::time::Duration::from_millis(ms);
    }
    if let Some(dir) = flag(args, &["--cache-dir"]) {
        config.cache_dir = Some(dir.into());
    }
    if let Some(n) = flag(args, &["--cache-capacity"]) {
        config.cache_capacity = n
            .parse()
            .map_err(|e| format!("bad --cache-capacity {n:?}: {e}"))?;
    }
    if let Some(n) = flag(args, &["--keepalive-max"]) {
        config.keepalive_max = n
            .parse()
            .map_err(|e| format!("bad --keepalive-max {n:?}: {e}"))?;
    }
    if let Some(n) = flag(args, &["--read-timeout-ms"]) {
        let ms: u64 = n
            .parse()
            .map_err(|e| format!("bad --read-timeout-ms {n:?}: {e}"))?;
        config.read_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(n) = flag(args, &["--idle-timeout-ms"]) {
        let ms: u64 = n
            .parse()
            .map_err(|e| format!("bad --idle-timeout-ms {n:?}: {e}"))?;
        config.idle_timeout = std::time::Duration::from_millis(ms);
    }
    // --faults wins over the GMAP_FAULTS environment variable.
    let fault_spec = flag(args, &["--faults"])
        .map(str::to_owned)
        .or_else(|| std::env::var("GMAP_FAULTS").ok().filter(|s| !s.is_empty()));
    if let Some(spec) = fault_spec {
        config.faults = Some(
            gmap::serve::faults::FaultSpec::parse(&spec)
                .map_err(|e| format!("bad fault spec {spec:?}: {e}"))?,
        );
        eprintln!("gmap-serve: fault injection enabled ({spec})");
    }
    let handle = gmap::serve::start(config).map_err(|e| format!("cannot start server: {e}"))?;
    println!("gmap-serve listening on {}", handle.addr());
    std::io::Write::flush(&mut std::io::stdout()).ok();
    // Run until the supervisor closes stdin, then drain. EOF as the stop
    // signal keeps graceful shutdown scriptable without signal handling.
    let stdin = std::io::stdin();
    let mut sink = String::new();
    loop {
        sink.clear();
        match std::io::BufRead::read_line(&mut stdin.lock(), &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    handle.shutdown();
    println!("gmap-serve: drained and stopped");
    Ok(())
}

fn client_addr(args: &[String]) -> Result<&str, String> {
    flag(args, &["--addr"]).ok_or_else(|| "missing --addr HOST:PORT".into())
}

/// Parses a comma-separated replica list (`--route` / `--fleet` /
/// `--peers`). A duplicate entry is a usage error: it would double the
/// duplicated replica's vnode share on the ring and silently skew
/// placement.
fn parse_peer_list(spec: &str, flag_name: &str) -> Result<Vec<String>, String> {
    let peers: Vec<String> = spec
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_owned)
        .collect();
    if peers.is_empty() {
        return Err(format!("{flag_name} needs at least one HOST:PORT"));
    }
    let mut seen = std::collections::BTreeSet::new();
    for peer in &peers {
        if !seen.insert(peer.as_str()) {
            return Err(format!("{flag_name} lists {peer:?} more than once"));
        }
    }
    Ok(peers)
}

fn client_seed(args: &[String]) -> Result<Option<u64>, String> {
    flag(args, &["--seed"])
        .map(|s| s.parse().map_err(|e| format!("bad --seed {s:?}: {e}")))
        .transpose()
}

/// Splits a colon-separated numeric spec into `lo..=hi` fields.
fn numeric_fields(spec: &str, lo: usize, hi: usize, shape: &str) -> Result<Vec<u32>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if !(lo..=hi).contains(&parts.len()) {
        return Err(format!("bad spec {spec:?} (expected {shape})"));
    }
    parts
        .iter()
        .map(|p| {
            p.parse()
                .map_err(|e| format!("bad field {p:?} in {spec:?}: {e}"))
        })
        .collect()
}

/// Parses `--stride-prefetch TABLE:DEGREE[:DISTANCE[:CONFIDENCE]]`.
fn parse_stride_prefetch(spec: &str) -> Result<gmap::serve::api::StridePoint, String> {
    let f = numeric_fields(spec, 2, 4, "TABLE:DEGREE[:DISTANCE[:CONFIDENCE]]")?;
    Ok(gmap::serve::api::StridePoint {
        table: f[0],
        degree: f[1],
        distance: f.get(2).copied(),
        confidence: f.get(3).copied(),
    })
}

/// Parses `--stream-prefetch WINDOW:DEGREE[:STREAMS]`.
fn parse_stream_prefetch(spec: &str) -> Result<gmap::serve::api::StreamPoint, String> {
    let f = numeric_fields(spec, 2, 3, "WINDOW:DEGREE[:STREAMS]")?;
    Ok(gmap::serve::api::StreamPoint {
        window: f[0],
        degree: f[1],
        streams: f.get(2).copied(),
    })
}

/// Parses an evaluation grid: comma-separated `KB:ASSOC[:LINE[:POLICY]]`
/// points, all applied to `level`, each carrying the same optional
/// prefetcher attachment.
fn parse_grid(
    spec: &str,
    level: Option<&str>,
    stride: Option<&gmap::serve::api::StridePoint>,
    stream: Option<&gmap::serve::api::StreamPoint>,
) -> Result<Vec<gmap::serve::api::GridPoint>, String> {
    spec.split(',')
        .map(|point| {
            let parts: Vec<&str> = point.split(':').collect();
            if !(2..=4).contains(&parts.len()) {
                return Err(format!(
                    "bad grid point {point:?} (expected KB:ASSOC[:LINE[:POLICY]])"
                ));
            }
            Ok(gmap::serve::api::GridPoint {
                level: level.map(str::to_owned),
                size_kb: parts[0]
                    .parse()
                    .map_err(|e| format!("bad size in {point:?}: {e}"))?,
                assoc: parts[1]
                    .parse()
                    .map_err(|e| format!("bad assoc in {point:?}: {e}"))?,
                line: parts
                    .get(2)
                    .map(|l| l.parse().map_err(|e| format!("bad line in {point:?}: {e}")))
                    .transpose()?,
                policy: parts.get(3).map(|p| (*p).to_owned()),
                stride_prefetch: stride.cloned(),
                stream_prefetch: stream.cloned(),
            })
        })
        .collect()
}

/// `gmap client ingest`: stream a trace file to `POST /v1/ingest` with
/// chunked transfer encoding, so the service profiles it as it arrives.
/// Separate from the JSON actions because the body is a file, not a
/// materialized request.
fn client_ingest(rest: &[String]) -> Result<(), String> {
    check_flags(
        rest,
        &[
            "--addr", "--trace", "--grid", "--block", "--name", "--chunk",
        ],
        &[],
    )?;
    let path = flag(rest, &["--trace"]).ok_or("missing --trace FILE")?;
    let (launch, stem) = trace_geometry(rest, path)?;
    let name = flag(rest, &["--name"]).unwrap_or(&stem);
    let chunk: usize = flag(rest, &["--chunk"])
        .map(|n| n.parse().map_err(|e| format!("bad --chunk {n:?}: {e}")))
        .transpose()?
        .unwrap_or(gmap::ingest::DEFAULT_CHUNK_BYTES);
    if chunk == 0 {
        return Err("--chunk must be nonzero".into());
    }
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let url = format!(
        "/v1/ingest?grid={}&block={}&name={name}",
        launch.num_blocks(),
        launch.threads_per_block()
    );
    let mut reader = BufReader::new(file);
    let response = gmap::serve::client::post_chunked(client_addr(rest)?, &url, &mut reader, chunk)
        .map_err(|e| format!("request failed: {e}"))?;
    println!("{}", response.body.trim_end());
    if response.is_ok() {
        Ok(())
    } else {
        Err(format!("server answered {}", response.status))
    }
}

fn cmd_client(args: &[String]) -> Result<(), String> {
    use gmap::core::cachekey::canonical_json;
    use gmap::serve::{api, client};

    let action = args.first().ok_or(
        "client needs an action: health, metrics, profile, analyze, ingest, clone, evaluate, \
         or drain",
    )?;
    let action = action.as_str();
    let rest = &args[1..];
    if action == "ingest" {
        return client_ingest(rest);
    }
    let (path, body): (&str, Option<String>) = match action {
        "health" => {
            check_flags(rest, &["--addr", "--peers", "--retries"], &[])?;
            ("/healthz", None)
        }
        "metrics" => {
            check_flags(rest, &["--addr", "--peers", "--retries"], &[])?;
            ("/metrics", None)
        }
        "drain" => {
            // Decommission targets one specific replica, so only --addr
            // makes sense (sharding the request would drain an
            // arbitrary fleet member).
            check_flags(rest, &["--addr", "--retries"], &[])?;
            ("/v1/admin/drain", Some(String::new()))
        }
        "profile" => {
            check_flags(
                rest,
                &[
                    "--addr",
                    "--peers",
                    "--workload",
                    "--scale",
                    "--spec",
                    "--retries",
                ],
                &[],
            )?;
            let spec = flag(rest, &["--spec"]).map(load_spec).transpose()?;
            if spec.is_none() && flag(rest, &["--workload"]).is_none() {
                return Err("missing --workload NAME or --spec FILE".into());
            }
            let body = canonical_json(&api::ProfileRequest {
                workload: flag(rest, &["--workload"]).map(str::to_owned),
                scale: flag(rest, &["--scale"]).map(str::to_owned),
                spec,
            });
            ("/v1/profile", Some(body))
        }
        "analyze" => {
            check_flags(
                rest,
                &[
                    "--addr",
                    "--peers",
                    "--workload",
                    "--scale",
                    "--spec",
                    "--retries",
                ],
                &[],
            )?;
            let spec = flag(rest, &["--spec"]).map(load_spec).transpose()?;
            if spec.is_none() && flag(rest, &["--workload"]).is_none() {
                return Err("missing --workload NAME or --spec FILE".into());
            }
            let body = canonical_json(&api::AnalyzeRequest {
                workload: flag(rest, &["--workload"]).map(str::to_owned),
                scale: flag(rest, &["--scale"]).map(str::to_owned),
                spec,
            });
            ("/v1/analyze", Some(body))
        }
        "clone" => {
            check_flags(
                rest,
                &[
                    "--addr",
                    "--peers",
                    "--model",
                    "--factor",
                    "--seed",
                    "--retries",
                ],
                &[],
            )?;
            let factor = flag(rest, &["--factor"])
                .map(|f| f.parse().map_err(|e| format!("bad --factor {f:?}: {e}")))
                .transpose()?;
            let body = canonical_json(&api::CloneRequest {
                model_id: flag(rest, &["--model"])
                    .ok_or("missing --model ID")?
                    .to_owned(),
                factor,
                seed: client_seed(rest)?,
            });
            ("/v1/clone", Some(body))
        }
        "evaluate" => {
            check_flags(
                rest,
                &[
                    "--addr",
                    "--peers",
                    "--model",
                    "--grid",
                    "--level",
                    "--kernel",
                    "--metric",
                    "--seed",
                    "--stride-prefetch",
                    "--stream-prefetch",
                    "--retries",
                ],
                &[],
            )?;
            let kernel = flag(rest, &["--kernel"])
                .map(|k| k.parse().map_err(|e| format!("bad --kernel {k:?}: {e}")))
                .transpose()?;
            let stride = flag(rest, &["--stride-prefetch"])
                .map(parse_stride_prefetch)
                .transpose()?;
            let stream = flag(rest, &["--stream-prefetch"])
                .map(parse_stream_prefetch)
                .transpose()?;
            let grid = parse_grid(
                flag(rest, &["--grid"]).ok_or("missing --grid SPEC")?,
                flag(rest, &["--level"]),
                stride.as_ref(),
                stream.as_ref(),
            )?;
            let body = canonical_json(&api::EvaluateRequest {
                model_id: flag(rest, &["--model"])
                    .ok_or("missing --model ID")?
                    .to_owned(),
                kernel,
                metric: flag(rest, &["--metric"]).map(str::to_owned),
                seed: client_seed(rest)?,
                grid,
            });
            ("/v1/evaluate", Some(body))
        }
        other => return Err(format!("unknown client action {other:?}")),
    };
    let retries: u32 = flag(rest, &["--retries"])
        .map(|n| n.parse().map_err(|e| format!("bad --retries {n:?}: {e}")))
        .transpose()?
        .unwrap_or(0);
    let policy = client::RetryPolicy {
        max_retries: retries,
        ..client::RetryPolicy::default()
    };
    let method = if body.is_some() { "POST" } else { "GET" };
    // --peers routes through the consistent-hash ring with failover to
    // ring successors; --addr talks to one server (or a router) directly.
    let response = match flag(rest, &["--peers"]) {
        Some(peers) => {
            let peers = parse_peer_list(peers, "--peers")?;
            client::PeerClient::new(&peers, policy).request(method, path, body.as_deref())
        }
        None => {
            client::request_with_retry(client_addr(rest)?, method, path, body.as_deref(), &policy)
        }
    };
    let response = response.map_err(|e| format!("request failed: {e}"))?;
    println!("{}", response.body.trim_end());
    if response.is_ok() {
        Ok(())
    } else {
        Err(format!("server answered {}", response.status))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let args = s(&["--seed", "7", "-o", "out.json"]);
        assert_eq!(flag(&args, &["--seed"]), Some("7"));
        assert_eq!(flag(&args, &["-o", "--output"]), Some("out.json"));
        assert_eq!(flag(&args, &["--missing"]), None);
        assert!(!has_flag(&args, "--dram"));
    }

    #[test]
    fn cache_spec_parsing() {
        let c = parse_cache("16384:4:128").expect("valid spec");
        assert_eq!((c.size_bytes, c.assoc, c.line_size), (16384, 4, 128));
        assert!(parse_cache("16384:4").is_err());
        assert!(parse_cache("a:b:c").is_err());
        assert!(parse_cache("100:3:100").is_err()); // invalid geometry
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(
            parse_policy(&s(&["--policy", "lrr"])).expect("valid"),
            Policy::Lrr
        );
        assert_eq!(
            parse_policy(&s(&["--policy", "gto"])).expect("valid"),
            Policy::Gto
        );
        assert!(matches!(
            parse_policy(&s(&["--policy", "self:0.7"])).expect("valid"),
            Policy::SelfProb(p) if (p - 0.7).abs() < 1e-9
        ));
        assert!(parse_policy(&s(&["--policy", "bogus"])).is_err());
        assert_eq!(parse_policy(&[]).expect("default"), Policy::Lrr);
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn unknown_flags_error() {
        // Typo'd flags must fail instead of silently taking defaults.
        assert!(run(&s(&["simulate", "--workload", "kmeans", "--sedd", "7"])).is_err());
        assert!(run(&s(&["list", "--verbose"])).is_err());
        assert!(run(&s(&["list", "extra"])).is_err());
        assert!(cmd_serve(&s(&["--port", "80"])).is_err());
        assert!(cmd_client(&s(&[
            "profile",
            "--addr",
            "x",
            "--workload",
            "k",
            "--bogus",
            "1"
        ]))
        .is_err());
        // A value flag at the end of the line is missing its value.
        assert!(cmd_clone(&s(&["-p", "x.json", "-o", "y", "--seed"])).is_err());
    }

    #[test]
    fn peer_list_parsing() {
        assert_eq!(
            parse_peer_list("a:1, b:2 ,c:3", "--peers").expect("valid"),
            vec!["a:1".to_string(), "b:2".to_string(), "c:3".to_string()]
        );
        assert!(parse_peer_list("", "--route").is_err());
        assert!(parse_peer_list(",,", "--peers").is_err());
        // An empty --route list must fail before any socket is bound.
        assert!(cmd_serve(&s(&["--route", ","])).is_err());
        // Duplicates would double a replica's vnode share: usage error.
        let err = parse_peer_list("a:1,b:2,a:1", "--peers").expect_err("duplicate rejected");
        assert!(err.contains("more than once"), "unexpected error: {err}");
        assert!(parse_peer_list("a:1, a:1", "--route").is_err());
    }

    #[test]
    fn serve_rejects_misconfigured_fleets_and_routes() {
        // A router that routes to itself would forward in a loop.
        assert!(cmd_serve(&s(&[
            "--listen",
            "127.0.0.1:9101",
            "--route",
            "127.0.0.1:9100,127.0.0.1:9101",
        ]))
        .is_err());
        // Duplicate fleet members are rejected before binding.
        assert!(cmd_serve(&s(&["--fleet", "a:1,a:1"])).is_err());
        // An advertised address outside the fleet can never own a key.
        assert!(cmd_serve(&s(&[
            "--fleet",
            "127.0.0.1:9100,127.0.0.1:9101",
            "--advertise",
            "127.0.0.1:9102",
        ]))
        .is_err());
        assert!(cmd_serve(&s(&["--replication-factor", "two"])).is_err());
        assert!(cmd_serve(&s(&["--probe-interval-ms", "fast"])).is_err());
    }

    #[test]
    fn client_drain_is_addr_only() {
        // Drain targets one replica; sharding it via --peers is a usage
        // error, and the flag set is validated before any connection.
        assert!(cmd_client(&s(&["drain", "--peers", "a:1,b:2"])).is_err());
        assert!(cmd_client(&s(&["drain"])).is_err());
    }

    #[test]
    fn client_peers_route_to_a_replica_fleet() {
        let replicas: Vec<_> = (0..2)
            .map(|_| gmap::serve::start(gmap::serve::ServeConfig::default()).expect("bind replica"))
            .collect();
        let peers = replicas
            .iter()
            .map(|h| h.addr().to_string())
            .collect::<Vec<_>>()
            .join(",");
        assert!(cmd_client(&s(&["health", "--peers", peers.as_str()])).is_ok());
        assert!(cmd_client(&s(&[
            "profile",
            "--peers",
            peers.as_str(),
            "--workload",
            "kmeans",
            "--scale",
            "tiny",
        ]))
        .is_ok());
        // Neither --peers nor --addr: a clear error, not a panic.
        assert!(cmd_client(&s(&["health"])).is_err());
        for handle in replicas {
            handle.shutdown();
        }
    }

    #[test]
    fn usage_lists_every_subcommand() {
        let text = usage();
        for sub in [
            "profile", "analyze", "info", "clone", "simulate", "fidelity", "list", "serve",
            "client",
        ] {
            assert!(text.contains(sub), "usage must mention {sub}");
        }
    }

    #[test]
    fn grid_specs_parse() {
        let grid = parse_grid("16:4,32:8:64:fifo", Some("l2"), None, None).expect("valid grid");
        assert_eq!(grid.len(), 2);
        assert_eq!((grid[0].size_kb, grid[0].assoc), (16, 4));
        assert_eq!(grid[0].line, None);
        assert_eq!(grid[1].line, Some(64));
        assert_eq!(grid[1].policy.as_deref(), Some("fifo"));
        assert_eq!(grid[1].level.as_deref(), Some("l2"));
        assert_eq!(grid[0].stride_prefetch, None);
        assert_eq!(grid[0].stream_prefetch, None);
        assert!(parse_grid("16", None, None, None).is_err());
        assert!(parse_grid("16:4:64:lru:extra", None, None, None).is_err());
        assert!(parse_grid("a:b", None, None, None).is_err());
    }

    #[test]
    fn prefetch_specs_parse_and_attach_to_every_point() {
        let stride = parse_stride_prefetch("64:2").expect("minimal stride");
        assert_eq!((stride.table, stride.degree), (64, 2));
        assert_eq!((stride.distance, stride.confidence), (None, None));
        let full = parse_stride_prefetch("256:4:2:3").expect("full stride");
        assert_eq!((full.distance, full.confidence), (Some(2), Some(3)));
        assert!(parse_stride_prefetch("64").is_err());
        assert!(parse_stride_prefetch("64:2:1:2:9").is_err());

        let stream = parse_stream_prefetch("16:4").expect("minimal stream");
        assert_eq!(
            (stream.window, stream.degree, stream.streams),
            (16, 4, None)
        );
        let full = parse_stream_prefetch("32:8:64").expect("full stream");
        assert_eq!(full.streams, Some(64));
        assert!(parse_stream_prefetch("x:y").is_err());

        let grid = parse_grid("8:4,16:4", None, Some(&stride), None).expect("stride grid");
        assert!(grid
            .iter()
            .all(|p| p.stride_prefetch == Some(stride.clone())));
        let grid = parse_grid("512:8", Some("l2"), None, Some(&stream)).expect("stream grid");
        assert_eq!(grid[0].stream_prefetch, Some(stream));
    }

    #[test]
    fn client_round_trip_against_live_server() {
        let handle = gmap::serve::start(gmap::serve::ServeConfig::default()).expect("start");
        let addr = handle.addr().to_string();
        run(&s(&["client", "health", "--addr", &addr])).expect("health");
        run(&s(&[
            "client",
            "profile",
            "--addr",
            &addr,
            "--workload",
            "kmeans",
            "--scale",
            "tiny",
        ]))
        .expect("profile");
        let model = gmap::serve::handlers::model_id_for("kmeans", "tiny");
        run(&s(&[
            "client", "clone", "--addr", &addr, "--model", &model, "--factor", "2",
        ]))
        .expect("clone");
        run(&s(&[
            "client",
            "evaluate",
            "--addr",
            &addr,
            "--model",
            &model,
            "--grid",
            "16:4,32:4",
        ]))
        .expect("evaluate");
        run(&s(&["client", "metrics", "--addr", &addr])).expect("metrics");
        // Unknown model ids surface the server's 404 as a CLI error.
        assert!(run(&s(&["client", "clone", "--addr", &addr, "--model", "feed"])).is_err());
        assert!(cmd_client(&s(&["health"])).is_err()); // missing --addr
        assert!(cmd_client(&s(&["reboot", "--addr", &addr])).is_err());
        assert!(cmd_client(&[]).is_err());
        handle.shutdown();
    }

    #[test]
    fn help_and_list_work() {
        assert!(run(&s(&["help"])).is_ok());
        assert!(run(&s(&["list"])).is_ok());
        assert!(run(&[]).is_ok());
    }

    #[test]
    fn profile_info_clone_simulate_round_trip() {
        let dir = std::env::temp_dir().join(format!("gmap-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pfile = dir.join("p.json").to_string_lossy().into_owned();
        let tfile = dir.join("t.txt").to_string_lossy().into_owned();
        run(&s(&[
            "profile",
            "--workload",
            "kmeans",
            "--scale",
            "tiny",
            "-o",
            &pfile,
        ]))
        .expect("profile");
        run(&s(&["info", "-p", &pfile])).expect("info");
        run(&s(&["clone", "-p", &pfile, "--factor", "2", "-o", &tfile])).expect("clone");
        assert!(std::fs::metadata(&tfile).expect("trace written").len() > 0);
        run(&s(&["simulate", "-p", &pfile, "--l1", "32768:8:128"])).expect("simulate clone");
        run(&s(&[
            "simulate",
            "--workload",
            "kmeans",
            "--scale",
            "tiny",
            "--dram",
        ]))
        .expect("simulate original");
        run(&s(&["fidelity", "-p", &pfile])).expect("fidelity from profile");
        run(&s(&[
            "fidelity",
            "--workload",
            "hotspot",
            "--scale",
            "tiny",
        ]))
        .expect("fidelity from workload");
        // External-trace ingestion: clone the profile to a trace, then
        // re-profile that trace.
        let p2 = dir.join("p2.json").to_string_lossy().into_owned();
        run(&s(&[
            "profile", "--trace", &tfile, "--grid", "24", "--block", "128", "-o", &p2,
        ]))
        .expect("profile external trace");
        run(&s(&["info", "-p", &p2])).expect("info on ingested profile");
        // The same trace also heat-maps, in text and JSON.
        run(&s(&[
            "analyze", "--trace", &tfile, "--grid", "24", "--block", "128",
        ]))
        .expect("heat-map report");
        run(&s(&[
            "analyze", "--trace", &tfile, "--grid", "24", "--block", "128", "--json",
        ]))
        .expect("heat-map report as JSON");
        // The heat-map mode is a source like any other: exclusive, and
        // incomplete geometry fails loudly.
        assert!(run(&s(&[
            "analyze", "--trace", &tfile, "--grid", "24", "--block", "128", "--all"
        ]))
        .is_err());
        assert!(run(&s(&["analyze", "--trace", &tfile, "--grid", "24"])).is_err());
        // --races is a static-analysis view; heat-maps reject it.
        assert!(run(&s(&[
            "analyze", "--trace", &tfile, "--grid", "24", "--block", "128", "--races"
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn client_ingest_streams_a_trace_to_a_live_server() {
        let dir = std::env::temp_dir().join(format!("gmap-cli-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let tfile = dir.join("wl.txt").to_string_lossy().into_owned();
        // One block of 64 threads, three steps each: enough to exercise
        // warp reconstruction without slowing the suite down.
        let mut trace = String::new();
        for step in 0..3u64 {
            for tid in 0..64u64 {
                trace.push_str(&format!(
                    "{tid} 0x40 R {:#x}\n",
                    0x1000 + tid * 4 + step * 0x800
                ));
            }
        }
        std::fs::write(&tfile, trace).expect("write trace");

        let handle = gmap::serve::start(gmap::serve::ServeConfig::default()).expect("start");
        let addr = handle.addr().to_string();
        run(&s(&[
            "client", "ingest", "--addr", &addr, "--trace", &tfile, "--grid", "1", "--block", "64",
            "--chunk", "97",
        ]))
        .expect("chunked ingest");
        // Bad invocations fail before touching the network.
        assert!(cmd_client(&s(&["ingest", "--addr", &addr, "--trace", &tfile])).is_err());
        assert!(cmd_client(&s(&[
            "ingest", "--trace", &tfile, "--grid", "1", "--block", "64"
        ]))
        .is_err());
        assert!(cmd_client(&s(&[
            "ingest", "--addr", &addr, "--trace", &tfile, "--grid", "1", "--block", "64",
            "--chunk", "0",
        ]))
        .is_err());
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_verifies_specs_and_gates_defects() {
        // Clean sources succeed.
        run(&s(&["analyze", "--workload", "kmeans", "--scale", "tiny"])).expect("kmeans clean");
        run(&s(&["analyze", "--all", "--scale", "tiny"])).expect("all bundled workloads clean");
        run(&s(&["analyze", "--fixture", "clean-streaming"])).expect("clean fixture");

        // Error-severity fixtures exit nonzero with error findings;
        // `uncoalesced` is a warning and does not fail the command.
        for fixture in ["oob-affine", "barrier-divergent", "overlapping-write"] {
            let err = run(&s(&["analyze", "--fixture", fixture])).expect_err("defect detected");
            assert!(err.contains("error finding"), "{fixture}: {err}");
        }
        run(&s(&["analyze", "--fixture", "uncoalesced"])).expect("warnings do not gate");

        // Bad invocations.
        assert!(run(&s(&["analyze"])).is_err());
        assert!(run(&s(&["analyze", "--workload", "kmeans", "--all"])).is_err());
        assert!(run(&s(&["analyze", "--workload", "nope"])).is_err());
        assert!(run(&s(&["analyze", "--fixture", "nope"])).is_err());

        // --dump-spec writes a spec that --spec round-trips.
        let dir = std::env::temp_dir().join(format!("gmap-analyze-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let spec = dir.join("oob.json").to_string_lossy().into_owned();
        let err = run(&s(&[
            "analyze",
            "--fixture",
            "oob-affine",
            "--dump-spec",
            &spec,
        ]))
        .expect_err("still reports the defect");
        assert!(err.contains("error finding"));
        let err = run(&s(&["analyze", "--spec", &spec])).expect_err("spec file re-analyzed");
        assert!(err.contains("error finding"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_race_views_gate_like_the_default_view() {
        // Racy fixtures fail in every output mode — the view never
        // weakens the exit-status contract.
        let err = run(&s(&["analyze", "--fixture", "race-ww", "--races"])).expect_err("gated");
        assert!(err.contains("error finding"), "{err}");
        let err = run(&s(&["analyze", "--fixture", "race-rw", "--json"])).expect_err("gated");
        assert!(err.contains("error finding"), "{err}");

        // Certified positives pass in both modes, and the whole bundled
        // set stays clean under --races and --json as well.
        run(&s(&["analyze", "--fixture", "phased-stencil", "--races"])).expect("certified");
        run(&s(&["analyze", "--fixture", "phased-reduction", "--json"])).expect("certified");
        run(&s(&["analyze", "--all", "--scale", "tiny", "--races"])).expect("all, races view");
        run(&s(&["analyze", "--all", "--scale", "tiny", "--json"])).expect("all, JSON view");
    }

    #[test]
    fn client_analyze_round_trip_against_live_server() {
        let handle = gmap::serve::start(gmap::serve::ServeConfig::default()).expect("start");
        let addr = handle.addr().to_string();
        run(&s(&[
            "client",
            "analyze",
            "--addr",
            &addr,
            "--workload",
            "kmeans",
            "--scale",
            "tiny",
        ]))
        .expect("analyze workload");

        // An inadmissible spec: `client analyze` succeeds (the report is
        // the answer), but `client profile` surfaces the 422 gate.
        let dir = std::env::temp_dir().join(format!("gmap-client-analyze-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let spec = dir.join("oob.json").to_string_lossy().into_owned();
        let _ = run(&s(&[
            "analyze",
            "--fixture",
            "oob-affine",
            "--dump-spec",
            &spec,
        ]));
        run(&s(&["client", "analyze", "--addr", &addr, "--spec", &spec]))
            .expect("report delivered");
        let err = run(&s(&["client", "profile", "--addr", &addr, "--spec", &spec]))
            .expect_err("gate rejects");
        assert!(err.contains("422"), "{err}");
        assert!(cmd_client(&s(&["analyze", "--addr", &addr])).is_err()); // no source
        std::fs::remove_dir_all(&dir).ok();
        handle.shutdown();
    }

    #[test]
    fn missing_arguments_error_cleanly() {
        assert!(cmd_profile(&s(&["--workload", "kmeans"])).is_err()); // no -o
        assert!(cmd_profile(&s(&["-o", "x.json"])).is_err()); // no workload
        assert!(cmd_info(&[]).is_err());
        assert!(cmd_simulate(&s(&["--workload", "kmeans", "-p", "x.json"])).is_err()); // both sources
        assert!(cmd_simulate(&[]).is_err()); // no source
    }
}
