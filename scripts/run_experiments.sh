#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/.
# Usage: scripts/run_experiments.sh [tiny|small|default]
set -euo pipefail
scale="${1:-small}"
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p gmap-bench
for f in table1 fig5 fig6a fig6b fig6c fig6d fig6e fig7 fig8 ablation; do
  echo "=== $f (scale: $scale) ==="
  cargo run --release -q -p gmap-bench --bin "$f" -- --scale "$scale" \
    --csv "results/$f.csv" | tee "results/$f.txt"
done
echo "All experiment outputs in results/"
