#!/usr/bin/env bash
# Workspace determinism lint, as a standalone CI gate.
#
# Runs the `determinism_lint` integration test, which lints the
# simulation crates (memsim, gpu, dram, core, serve, trace, ingest)
# for order-sensitive iteration over HashMap/HashSet — hash order is
# nondeterministic, and
# the deterministic-output contract (bit-identical profiles, clones,
# and statistics across runs) is part of the public API. Justified
# sites live in scripts/determinism_allowlist.txt.
#
# Usage: scripts/determinism_lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo test -q --test determinism_lint
echo "determinism lint: simulation crates are free of hash-order iteration"
