#!/usr/bin/env bash
# Smoke test for `gmap serve`: boots the service on an ephemeral port,
# exercises a profile -> clone round trip through `gmap client`, pokes
# the HTTP edge cases (keep-alive, truncated and oversized bodies) with
# raw sockets, and checks that closing the server's stdin drains it
# cleanly. A final section boots two replicas behind a `--route` router
# and checks that routed responses match locally computed model ids.
#
# Usage: scripts/smoke_serve.sh [path-to-gmap-binary]
set -euo pipefail

GMAP="${1:-target/release/gmap}"
if [[ ! -x "$GMAP" ]]; then
    echo "smoke: $GMAP is not an executable (build with: cargo build --release)" >&2
    exit 1
fi

WORK="$(mktemp -d)"
SERVER_OUT="$WORK/server.out"
mkfifo "$WORK/stdin"
cleanup() {
    # Closing the fifo writers ends the servers; kill as a fallback only.
    exec 9>&- 2>/dev/null || true
    exec 5>&- 2>/dev/null || true
    exec 6>&- 2>/dev/null || true
    exec 7>&- 2>/dev/null || true
    for pid in "${SERVER_PID:-}" "${R1_PID:-}" "${R2_PID:-}" "${ROUTER_PID:-}" \
        "${RES1_PID:-}" "${RES2_PID:-}" "${F1_PID:-}" "${F2_PID:-}"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            sleep 2
            kill "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Hold the fifo open on fd 9 so the server's stdin stays open until we
# deliberately close it for graceful shutdown.
# Short read/idle timeouts keep the truncated-body case fast.
"$GMAP" serve --listen 127.0.0.1:0 --workers 2 \
    --read-timeout-ms 1500 --idle-timeout-ms 1500 \
    <"$WORK/stdin" >"$SERVER_OUT" &
SERVER_PID=$!
exec 9>"$WORK/stdin"

# Wait for the bound address to appear on stdout.
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^gmap-serve listening on //p' "$SERVER_OUT" | head -n1)"
    [[ -n "$ADDR" ]] && break
    sleep 0.1
done
if [[ -z "$ADDR" ]]; then
    echo "smoke: server never reported its address" >&2
    cat "$SERVER_OUT" >&2
    exit 1
fi
echo "smoke: server up at $ADDR"

# Buffer a client command's stdout before grepping. Piping straight into
# `grep -q` races under pipefail: grep exits at the first match, the
# client's remaining stdout write takes EPIPE and panics, and the
# pipeline's 101 fails the script (~40%% of runs on a slow host).
expect() { # expect <pattern> <cmd...>
    local pat="$1"; shift
    local out
    out="$("$@")"
    grep -q "$pat" <<<"$out"
}


expect '"status":"ok"' "$GMAP" client health --addr "$ADDR"
echo "smoke: health ok"

PROFILE="$("$GMAP" client profile --addr "$ADDR" --workload kmeans --scale tiny)"
echo "smoke: profile -> $PROFILE"
MODEL="$(printf '%s' "$PROFILE" | sed -n 's/.*"model_id":"\([0-9a-f]*\)".*/\1/p')"
if [[ -z "$MODEL" ]]; then
    echo "smoke: could not extract model_id" >&2
    exit 1
fi

expect '"kernels":' "$GMAP" client clone --addr "$ADDR" --model "$MODEL" --factor 2
echo "smoke: clone ok"

expect '"values":' "$GMAP" client evaluate --addr "$ADDR" --model "$MODEL" --grid 16:4,32:4
echo "smoke: evaluate ok"

# A fig6c-shaped stride-prefetcher grid must ride the single-pass engine.
expect '"single_pass":true' "$GMAP" client evaluate --addr "$ADDR" --model "$MODEL" \
    --grid 8:4,16:4,64:4 --stride-prefetch 64:2:1
echo "smoke: prefetcher evaluate single-pass ok"

# An out-of-envelope prefetcher table is a structured 400, not a crash.
if "$GMAP" client evaluate --addr "$ADDR" --model "$MODEL" --grid 16:4 \
    --stride-prefetch 3:2 >"$WORK/pf.out" 2>&1; then
    echo "smoke: unsupported prefetcher was not rejected" >&2
    exit 1
fi
grep -q 'power of two' "$WORK/pf.out"
echo "smoke: unsupported prefetcher rejected with 400"

# Repeat profile must be a cache hit, visible in /metrics.
expect '"cached":true' "$GMAP" client profile --addr "$ADDR" --workload kmeans --scale tiny
expect '^gmap_cache_hits_total 1' "$GMAP" client metrics --addr "$ADDR"
echo "smoke: cache hit observed in metrics"

# Static analysis over the wire: a named workload is admissible...
expect '"admissible":true' "$GMAP" client analyze --addr "$ADDR" --workload kmeans --scale tiny
echo "smoke: analyze ok"

# ...while an out-of-bounds spec is explained by /v1/analyze and then
# rejected 422 by the admission gate before it ever reaches the queue.
BAD_SPEC="$WORK/oob.json"
"$GMAP" analyze --fixture oob-affine --dump-spec "$BAD_SPEC" >/dev/null 2>&1 || true
[[ -s "$BAD_SPEC" ]] || { echo "smoke: --dump-spec wrote nothing" >&2; exit 1; }
expect '"admissible":false' "$GMAP" client analyze --addr "$ADDR" --spec "$BAD_SPEC"
if "$GMAP" client profile --addr "$ADDR" --spec "$BAD_SPEC" 2>"$WORK/gate.err"; then
    echo "smoke: inadmissible spec was not rejected" >&2
    exit 1
fi
grep -q '422' "$WORK/gate.err"
expect '^gmap_analyze_rejects_total 1' "$GMAP" client metrics --addr "$ADDR"
echo "smoke: admission gate rejected inadmissible spec with 422"

# Streaming ingest: clone a model into a trace file, stream it chunked
# to /v1/ingest, and check that the returned model id equals the content
# key the local (bounded-memory) profiler prints for the same trace.
TRACE="$WORK/clone.txt"
"$GMAP" profile --workload kmeans --scale tiny -o "$WORK/kmeans.json" >/dev/null
"$GMAP" clone -p "$WORK/kmeans.json" --factor 2 -o "$TRACE" >/dev/null
LOCAL="$("$GMAP" profile --trace "$TRACE" --grid 24 --block 128 -o "$WORK/reprofiled.json")"
KEY="$(sed -n 's/^content key: //p' <<<"$LOCAL")"
if [[ -z "$KEY" ]]; then
    echo "smoke: local profile printed no content key" >&2
    exit 1
fi
INGEST="$("$GMAP" client ingest --addr "$ADDR" --trace "$TRACE" \
    --grid 24 --block 128 --chunk 4096)"
INGEST_MODEL="$(printf '%s' "$INGEST" | sed -n 's/.*"model_id":"\([0-9a-f]*\)".*/\1/p')"
if [[ "$INGEST_MODEL" != "$KEY" ]]; then
    echo "smoke: streamed ingest diverged from local profiling" >&2
    echo "  local content key : $KEY" >&2
    echo "  served model id   : $INGEST_MODEL" >&2
    exit 1
fi
grep -q '"pcs":' <<<"$INGEST" || { echo "smoke: ingest reply lacks a heat-map report" >&2; exit 1; }
expect '^gmap_ingest_streams_total 1' "$GMAP" client metrics --addr "$ADDR"
expect '^gmap_ingest_bytes_total [1-9]' "$GMAP" client metrics --addr "$ADDR"
echo "smoke: streamed ingest matches local profiling ($KEY)"

# Raw-socket edge cases via bash's /dev/tcp.
HOST="${ADDR%:*}"
PORT="${ADDR##*:}"

# Keep-alive: two pipelined requests on one connection get two responses;
# the second asks for close, so the server then hangs up.
exec 8<>"/dev/tcp/$HOST/$PORT"
printf 'GET /healthz HTTP/1.1\r\nHost: %s\r\n\r\nGET /healthz HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n' \
    "$ADDR" "$ADDR" >&8
KEEPALIVE="$(cat <&8)"
exec 8<&- 8>&- 2>/dev/null || true
if [[ "$(grep -c 'HTTP/1.1 200' <<<"$KEEPALIVE")" -ne 2 ]]; then
    echo "smoke: keep-alive connection did not serve two responses" >&2
    printf '%s\n' "$KEEPALIVE" >&2
    exit 1
fi
echo "smoke: keep-alive serves two requests on one connection"

# An absurd Content-Length is refused up front with 413 and a close.
exec 8<>"/dev/tcp/$HOST/$PORT"
printf 'POST /v1/profile HTTP/1.1\r\nHost: %s\r\nContent-Length: 99999999\r\n\r\n' "$ADDR" >&8
head -n1 <&8 | grep -q '413'
exec 8<&- 8>&- 2>/dev/null || true
echo "smoke: oversized body rejected with 413"

# A body shorter than its Content-Length stalls mid-request: after the
# read timeout the server answers 408 instead of hanging forever.
exec 8<>"/dev/tcp/$HOST/$PORT"
printf 'POST /v1/profile HTTP/1.1\r\nHost: %s\r\nContent-Length: 50\r\n\r\n{"wor' "$ADDR" >&8
head -n1 <&8 | grep -q '408'
exec 8<&- 8>&- 2>/dev/null || true
echo "smoke: truncated body answered with 408"

# Graceful shutdown: close stdin and expect a clean exit with the drain
# message on stdout.
exec 9>&-
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "smoke: server did not exit after stdin EOF" >&2
    exit 1
fi
wait "$SERVER_PID"
grep -q 'drained and stopped' "$SERVER_OUT"
echo "smoke: graceful shutdown ok"

# ------------------------------------------------------------------
# Router mode: two replicas behind a consistent-hash router. A routed
# profile must return exactly the model id `gmap profile` computes
# locally from the same spec, routed evaluate must work end to end, and
# the router's per-peer forward counters must move.

start_server() { # start_server <name> <fd> <listen-addr> [extra serve args...]
    local name="$1" fd="$2" listen="$3"; shift 3
    mkfifo "$WORK/$name.stdin"
    "$GMAP" serve --listen "$listen" --workers 2 "$@" \
        <"$WORK/$name.stdin" >"$WORK/$name.out" &
    START_PID=$!
    eval "exec $fd>\"$WORK/$name.stdin\""
    START_ADDR=""
    for _ in $(seq 1 100); do
        START_ADDR="$(sed -n 's/^gmap-serve listening on //p' "$WORK/$name.out" | head -n1)"
        [[ -n "$START_ADDR" ]] && break
        sleep 0.1
    done
    if [[ -z "$START_ADDR" ]]; then
        echo "smoke: $name never reported its address" >&2
        cat "$WORK/$name.out" >&2
        exit 1
    fi
}

start_server replica1 5 127.0.0.1:0
R1_PID=$START_PID; R1_ADDR=$START_ADDR
start_server replica2 6 127.0.0.1:0
R2_PID=$START_PID; R2_ADDR=$START_ADDR
start_server router 7 127.0.0.1:0 --route "$R1_ADDR,$R2_ADDR"
ROUTER_PID=$START_PID; ROUTER_ADDR=$START_ADDR
echo "smoke: router $ROUTER_ADDR fronting $R1_ADDR and $R2_ADDR"

# The model id a routed profile returns must equal the locally computed
# content key for the same workload+scale spec.
WANT_ID="$("$GMAP" profile --workload kmeans --scale tiny -o "$WORK/local.json" \
    | sed -n 's/^model id: //p')"
[[ -n "$WANT_ID" ]] || { echo "smoke: gmap profile printed no model id" >&2; exit 1; }
ROUTED="$("$GMAP" client profile --addr "$ROUTER_ADDR" --workload kmeans --scale tiny)"
ROUTED_ID="$(printf '%s' "$ROUTED" | sed -n 's/.*"model_id":"\([0-9a-f]*\)".*/\1/p')"
if [[ "$ROUTED_ID" != "$WANT_ID" ]]; then
    echo "smoke: routed profile diverged from the locally computed model id" >&2
    echo "  local model id : $WANT_ID" >&2
    echo "  routed model id: $ROUTED_ID" >&2
    exit 1
fi
expect '"values":' "$GMAP" client evaluate --addr "$ROUTER_ADDR" \
    --model "$ROUTED_ID" --grid 16:4,32:4
METRICS="$("$GMAP" client metrics --addr "$ROUTER_ADDR")"
grep -q 'gmap_route_forwards_total{peer="' <<<"$METRICS"
FORWARDS="$(sed -n 's/^gmap_route_forwards_total{[^}]*} //p' <<<"$METRICS" \
    | awk '{s+=$1} END {print s+0}')"
if [[ "$FORWARDS" -lt 2 ]]; then
    echo "smoke: router forward counters did not move ($FORWARDS)" >&2
    grep '^gmap_route' <<<"$METRICS" >&2 || true
    exit 1
fi
echo "smoke: routed profile matches local model id ($ROUTED_ID), $FORWARDS forwards"

# Close all three stdin fifos: replicas and router drain cleanly.
exec 7>&- 6>&- 5>&-
for pid in "$ROUTER_PID" "$R2_PID" "$R1_PID"; do
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "smoke: sharded server (pid $pid) did not exit after stdin EOF" >&2
        exit 1
    fi
done
grep -q 'drained and stopped' "$WORK/router.out"
echo "smoke: sharded fleet drained cleanly"

# ------------------------------------------------------------------
# Replicated fleet: two `--fleet` replicas with successor replication.
# A model stored on one member must replicate to the other; after the
# first member is killed outright (SIGKILL, no graceful drain), the
# survivor must serve the victim's model from its replica copy — a
# cache *hit*, proving zero recompute.

# Reserve two ports by booting throwaway servers on ephemeral ports and
# shutting them down again: fleet membership must be known before any
# member starts. The reserve servers never accept a connection, so the
# freed ports rebind immediately.
start_server reserve1 5 127.0.0.1:0
RES1_PID=$START_PID; FA1=$START_ADDR
start_server reserve2 6 127.0.0.1:0
RES2_PID=$START_PID; FA2=$START_ADDR
exec 5>&- 6>&-
for pid in "$RES1_PID" "$RES2_PID"; do
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
done

start_server fleet1 5 "$FA1" --fleet "$FA1,$FA2" --advertise "$FA1" --probe-interval-ms 100
F1_PID=$START_PID
start_server fleet2 6 "$FA2" --fleet "$FA1,$FA2" --advertise "$FA2" --probe-interval-ms 100
F2_PID=$START_PID
echo "smoke: replicated fleet up at $FA1 and $FA2"

FLEET_PROFILE="$("$GMAP" client profile --addr "$FA1" --workload kmeans --scale tiny)"
FLEET_MODEL="$(printf '%s' "$FLEET_PROFILE" | sed -n 's/.*"model_id":"\([0-9a-f]*\)".*/\1/p')"
[[ -n "$FLEET_MODEL" ]] || { echo "smoke: fleet profile returned no model id" >&2; exit 1; }

# Wait until the asynchronous push lands on the peer (it can answer
# /v1/evaluate for the model only once it holds a copy).
REPLICATED=""
for _ in $(seq 1 100); do
    if "$GMAP" client evaluate --addr "$FA2" --model "$FLEET_MODEL" --grid 16:4 \
        >/dev/null 2>&1; then
        REPLICATED=1
        break
    fi
    sleep 0.1
done
[[ -n "$REPLICATED" ]] || { echo "smoke: replication to the peer never landed" >&2; exit 1; }
expect '^gmap_replication_total [1-9]' "$GMAP" client metrics --addr "$FA1"
echo "smoke: model replicated to the fleet peer"

# Kill the member that stored the model — hard, no drain — and serve
# its model from the survivor's replica copy: a cache hit, not a
# recompute.
kill -9 "$F1_PID" 2>/dev/null || true
exec 5>&- 2>/dev/null || true
expect '"cached":true' "$GMAP" client profile --addr "$FA2" --workload kmeans --scale tiny
expect '"values":' "$GMAP" client evaluate --addr "$FA2" --model "$FLEET_MODEL" --grid 16:4,32:4
echo "smoke: survivor served the killed owner's model from its replica copy"

# Graceful decommission via the CLI: the drain endpoint answers even
# with the only peer dead (nothing is silently lost — failures are
# reported in the response).
expect '"status":"draining"' "$GMAP" client drain --addr "$FA2"
expect '"status":"draining"' "$GMAP" client health --addr "$FA2"
echo "smoke: drain flipped the survivor to draining"

exec 6>&-
for _ in $(seq 1 100); do
    kill -0 "$F2_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$F2_PID" 2>/dev/null; then
    echo "smoke: fleet survivor did not exit after stdin EOF" >&2
    exit 1
fi
grep -q 'drained and stopped' "$WORK/fleet2.out"
echo "smoke: replicated fleet shut down cleanly"
