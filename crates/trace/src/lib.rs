//! Trace and statistics substrate for the G-MAP framework.
//!
//! This crate provides the data-plane vocabulary shared by every other crate
//! in the workspace:
//!
//! - [`record`] — newtypes and records for memory accesses ([`Pc`],
//!   [`ThreadId`], [`WarpId`], [`ByteAddr`], [`MemAccess`], ...). Strong
//!   types keep program counters, thread indices and addresses from being
//!   confused for one another across crate boundaries.
//! - [`histogram`] — a discrete [`Histogram`] with weighted sampling,
//!   dominant-value queries and count scaling (the basis of every statistical
//!   profile distribution in the paper's 5-tuple `(Π, Q, B, P_S, P_R)`).
//! - [`reuse`] — exact LRU stack-distance (reuse-distance) computation after
//!   Mattson et al., the temporal-locality model of G-MAP §4.3, in
//!   `O(N log N)` via a Fenwick tree.
//! - [`stats`] — Pearson correlation and error metrics, the paper's two
//!   validation measures (§5).
//! - [`rng`] — a small, seedable, deterministic PRNG so that every proxy
//!   generation and experiment in the workspace is bit-reproducible.
//! - [`io`] — plain-text and binary readers/writers for per-thread traces.
//! - [`soa`] — structure-of-arrays storage for captured access streams
//!   ([`AccessColumns`]) with a row-wise [`AccessRecord`] view shim.
//! - [`batch`] — the [`KernelMode`] switch between the scalar reference
//!   loops and the lane-unrolled batch kernels used by the hot passes.
//!
//! # Example
//!
//! Reproducing the reuse-distance example of Figure 5 of the paper:
//!
//! ```
//! use gmap_trace::reuse::ReuseComputer;
//!
//! // Accesses X[0] X[1] X[2] X[3] X[1] X[2] X[3] X[0], two elements per line.
//! let lines = [0u64, 0, 1, 1, 0, 1, 1, 0];
//! let mut rc = ReuseComputer::new();
//! let dists: Vec<Option<u64>> = lines.iter().map(|&l| rc.push(l)).collect();
//! assert_eq!(
//!     dists,
//!     [None, Some(0), None, Some(0), Some(1), Some(1), Some(0), Some(1)]
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod histogram;
pub mod io;
pub mod record;
pub mod reuse;
pub mod rng;
pub mod soa;
pub mod stats;

pub use batch::{default_mode, KernelMode};
pub use histogram::{HistSampler, Histogram};
pub use record::{AccessKind, ByteAddr, CoreId, LineAddr, MemAccess, Pc, ThreadId, WarpId};
pub use reuse::{ReuseClass, ReuseComputer, ReuseHistogram};
pub use rng::Rng;
pub use soa::{AccessColumns, AccessRecord};
pub use stats::LatencyHistogram;
