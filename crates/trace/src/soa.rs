//! Structure-of-arrays storage for captured access streams.
//!
//! The sweep engine records millions of `(core, addr, pc, is_write)`
//! events and then makes many passes over them: per-core splitting,
//! line-address extraction, read/write accounting, L2 derivation. With an
//! array-of-structs layout every pass drags all four fields through the
//! cache even when it needs one, and the mixed-width struct (u16 next to
//! u64 next to bool) defeats the autovectorizer. [`AccessColumns`] stores
//! each field in its own dense column so a pass touches only the bytes it
//! reads and the hot loops compile to straight-line SIMD.
//!
//! The record-oriented API survives as a shim: [`AccessRecord`] is a
//! plain-old-data *view* with the same public fields the old struct had,
//! materialized on [`AccessColumns::get`] / [`AccessColumns::iter`] and
//! scattered back on [`AccessColumns::push`]. Call sites that iterated
//! `&capture.accesses` keep working verbatim against the view iterator.
//!
//! Column kernels ([`AccessColumns::lines_into`],
//! [`AccessColumns::count_writes`]) come in scalar and 8-lane batched
//! flavors selected by [`KernelMode`]; the batched bodies are hand-unrolled
//! over `chunks_exact` with a scalar tail and are bit-exact with the
//! scalar reference (see the differential proptests in the tier-1 suite).

use crate::batch::KernelMode;
pub use crate::batch::LANES;
use serde::{Deserialize, Serialize};

/// A single captured access, viewed row-wise.
///
/// This is the shim that preserves the old array-of-structs API: the
/// fields are public and identical to the former per-record struct, so
/// `access.addr`, `access.is_write`, struct literals, and destructuring
/// all keep compiling. It is a value (16 bytes), not a reference into the
/// columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AccessRecord {
    /// Issuing core (streaming multiprocessor) index.
    pub core: u16,
    /// Address of the access. The engine stores byte addresses for L1
    /// captures and line addresses for derived L2 streams; the column
    /// kernels are agnostic.
    pub addr: u64,
    /// Program counter of the static instruction that issued the access.
    pub pc: u64,
    /// `true` for stores.
    pub is_write: bool,
}

/// Structure-of-arrays store for a captured access stream.
///
/// The four columns always have identical length (enforced by the
/// mutation API; [`AccessColumns::check_coherent`] asserts it in debug
/// builds). Row `i` of the stream is `(cores[i], addrs[i], pcs[i],
/// writes[i])`, materialized as an [`AccessRecord`] by [`get`].
///
/// [`get`]: AccessColumns::get
///
/// ```
/// use gmap_trace::soa::{AccessColumns, AccessRecord};
///
/// let mut cols = AccessColumns::new();
/// cols.push(AccessRecord { core: 1, addr: 0x80, pc: 0x10, is_write: false });
/// cols.push(AccessRecord { core: 0, addr: 0xc0, pc: 0x10, is_write: true });
/// assert_eq!(cols.len(), 2);
/// assert_eq!(cols.get(1).addr, 0xc0);
/// assert_eq!(cols.iter().filter(|a| a.is_write).count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessColumns {
    /// Issuing core per access.
    cores: Vec<u16>,
    /// Address per access (byte or line granularity — caller's contract).
    addrs: Vec<u64>,
    /// Program counter per access.
    pcs: Vec<u64>,
    /// Store flag per access.
    writes: Vec<bool>,
}

impl AccessColumns {
    /// An empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty stream with room for `cap` accesses in every column.
    pub fn with_capacity(cap: usize) -> Self {
        AccessColumns {
            cores: Vec::with_capacity(cap),
            addrs: Vec::with_capacity(cap),
            pcs: Vec::with_capacity(cap),
            writes: Vec::with_capacity(cap),
        }
    }

    /// Build columns from a row-ordered slice of records.
    pub fn from_records(records: &[AccessRecord]) -> Self {
        let mut cols = AccessColumns::with_capacity(records.len());
        for r in records {
            cols.push(*r);
        }
        cols
    }

    /// Number of accesses in the stream.
    #[inline]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` when the stream holds no accesses.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Append one access, scattering its fields into the columns.
    #[inline]
    pub fn push(&mut self, rec: AccessRecord) {
        self.cores.push(rec.core);
        self.addrs.push(rec.addr);
        self.pcs.push(rec.pc);
        self.writes.push(rec.is_write);
    }

    /// Gather row `i` into an [`AccessRecord`] view.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> AccessRecord {
        AccessRecord {
            core: self.cores[i],
            addr: self.addrs[i],
            pc: self.pcs[i],
            is_write: self.writes[i],
        }
    }

    /// Iterate the stream row-wise as [`AccessRecord`] values.
    pub fn iter(&self) -> impl Iterator<Item = AccessRecord> + '_ {
        self.check_coherent();
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The address column.
    #[inline]
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The program-counter column.
    #[inline]
    pub fn pcs(&self) -> &[u64] {
        &self.pcs
    }

    /// The issuing-core column.
    #[inline]
    pub fn cores(&self) -> &[u16] {
        &self.cores
    }

    /// The store-flag column.
    #[inline]
    pub fn writes(&self) -> &[bool] {
        &self.writes
    }

    /// Debug-assert that all four columns agree on the stream length.
    #[inline]
    pub fn check_coherent(&self) {
        debug_assert_eq!(self.cores.len(), self.addrs.len());
        debug_assert_eq!(self.pcs.len(), self.addrs.len());
        debug_assert_eq!(self.writes.len(), self.addrs.len());
    }

    /// Append `addr >> shift` for every access to `out`.
    ///
    /// This is the line-address extraction pass the engine runs before
    /// every stack-distance evaluation. Dispatches on `mode`; both paths
    /// produce identical output.
    pub fn lines_into(&self, shift: u32, mode: KernelMode, out: &mut Vec<u64>) {
        match mode {
            KernelMode::Scalar => self.lines_into_scalar(shift, out),
            KernelMode::Batched => self.lines_into_batched(shift, out),
        }
    }

    /// Scalar reference for [`AccessColumns::lines_into`].
    pub fn lines_into_scalar(&self, shift: u32, out: &mut Vec<u64>) {
        out.reserve(self.addrs.len());
        for &a in &self.addrs {
            out.push(a >> shift);
        }
    }

    fn lines_into_batched(&self, shift: u32, out: &mut Vec<u64>) {
        out.reserve(self.addrs.len());
        let mut chunks = self.addrs.chunks_exact(LANES);
        for c in &mut chunks {
            // One store per lane, no cross-lane dependency: the shift
            // vectorizes and the extends become a single widening copy.
            out.extend_from_slice(&[
                c[0] >> shift,
                c[1] >> shift,
                c[2] >> shift,
                c[3] >> shift,
                c[4] >> shift,
                c[5] >> shift,
                c[6] >> shift,
                c[7] >> shift,
            ]);
        }
        for &a in chunks.remainder() {
            out.push(a >> shift);
        }
    }

    /// Number of stores in the stream. Dispatches on `mode`; both paths
    /// produce identical counts.
    pub fn count_writes(&self, mode: KernelMode) -> u64 {
        match mode {
            KernelMode::Scalar => self.count_writes_scalar(),
            KernelMode::Batched => self.count_writes_batched(),
        }
    }

    /// Scalar reference for [`AccessColumns::count_writes`].
    pub fn count_writes_scalar(&self) -> u64 {
        self.writes.iter().filter(|&&w| w).count() as u64
    }

    fn count_writes_batched(&self) -> u64 {
        // Two independent 8-lane accumulators hide the add latency; bools
        // are 0/1 bytes so the sum is exact.
        let mut acc = [0u64; LANES];
        let mut chunks = self.writes.chunks_exact(LANES * 2);
        for c in &mut chunks {
            for lane in 0..LANES {
                acc[lane] += c[lane] as u64 + c[LANES + lane] as u64;
            }
        }
        let mut total: u64 = acc.iter().sum();
        total += chunks.remainder().iter().filter(|&&w| w).count() as u64;
        total
    }
}

/// Row-wise iteration over borrowed columns, yielding [`AccessRecord`]
/// *values*. This keeps `for a in &columns { ... a.addr ... }` loops
/// written against the old array-of-structs layout compiling unchanged.
impl<'a> IntoIterator for &'a AccessColumns {
    type Item = AccessRecord;
    type IntoIter = AccessIter<'a>;

    fn into_iter(self) -> AccessIter<'a> {
        self.check_coherent();
        AccessIter {
            cols: self,
            next: 0,
        }
    }
}

/// Iterator over an [`AccessColumns`] stream (see the `IntoIterator`
/// impl for `&AccessColumns`).
#[derive(Debug, Clone)]
pub struct AccessIter<'a> {
    cols: &'a AccessColumns,
    next: usize,
}

impl Iterator for AccessIter<'_> {
    type Item = AccessRecord;

    #[inline]
    fn next(&mut self) -> Option<AccessRecord> {
        if self.next < self.cols.len() {
            let r = self.cols.get(self.next);
            self.next += 1;
            Some(r)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.cols.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for AccessIter<'_> {}

impl FromIterator<AccessRecord> for AccessColumns {
    fn from_iter<I: IntoIterator<Item = AccessRecord>>(iter: I) -> Self {
        let mut cols = AccessColumns::new();
        for r in iter {
            cols.push(r);
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> AccessColumns {
        let mut rng = crate::Rng::seed_from(0x50a);
        (0..n)
            .map(|i| AccessRecord {
                core: (rng.next_u64() % 13) as u16,
                addr: rng.next_u64() >> 8,
                pc: (i as u64) * 8,
                is_write: rng.next_u64() % 3 == 0,
            })
            .collect()
    }

    #[test]
    fn round_trip_push_get_iter() {
        let cols = sample(100);
        assert_eq!(cols.len(), 100);
        let rows: Vec<AccessRecord> = cols.iter().collect();
        let back = AccessColumns::from_records(&rows);
        assert_eq!(cols, back);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(cols.get(i), *r);
        }
    }

    #[test]
    fn lines_kernels_agree_for_all_tail_lengths() {
        for n in 0..(2 * LANES) {
            let cols = sample(n + 64);
            let cols = AccessColumns::from_records(&cols.iter().take(n).collect::<Vec<_>>());
            for shift in [0u32, 5, 7] {
                let mut scalar = Vec::new();
                let mut batched = Vec::new();
                cols.lines_into(shift, KernelMode::Scalar, &mut scalar);
                cols.lines_into(shift, KernelMode::Batched, &mut batched);
                assert_eq!(scalar, batched, "n={n} shift={shift}");
            }
        }
    }

    #[test]
    fn write_count_kernels_agree_for_all_tail_lengths() {
        for n in 0..(4 * LANES) {
            let big = sample(4 * LANES);
            let cols = AccessColumns::from_records(&big.iter().take(n).collect::<Vec<_>>());
            assert_eq!(
                cols.count_writes(KernelMode::Scalar),
                cols.count_writes(KernelMode::Batched),
                "n={n}"
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let cols = sample(17);
        let json = serde_json::to_string(&cols).expect("serialize");
        let back: AccessColumns = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cols, back);
    }

    #[test]
    fn empty_stream() {
        let cols = AccessColumns::new();
        assert!(cols.is_empty());
        assert_eq!(cols.count_writes(KernelMode::Batched), 0);
        let mut out = Vec::new();
        cols.lines_into(3, KernelMode::Batched, &mut out);
        assert!(out.is_empty());
    }
}
