//! Readers and writers for per-thread memory traces.
//!
//! G-MAP can profile traces produced by any front end, not just the
//! execution substrate in `gmap-gpu`. This module defines two on-disk
//! formats for interchange:
//!
//! - **Text**: one access per line, `tid pc kind addr` with hexadecimal pc
//!   and address (comment lines start with `#`). Diffable and easy to
//!   produce from any tracing tool.
//! - **Binary**: a `GMTR` magic, a little-endian record count, then fixed
//!   21-byte records. Compact and fast for large traces.

use crate::record::{AccessKind, ByteAddr, MemAccess, Pc, ThreadId};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// One trace entry: which thread performed which access.
pub type TraceEntry = (ThreadId, MemAccess);

/// Error produced while parsing a trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line or record, with 1-based line/record index and a
    /// description.
    Malformed {
        /// 1-based index of the offending line or record.
        index: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The binary magic did not match `GMTR`.
    BadMagic,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ParseTraceError::Malformed { index, reason } => {
                write!(f, "malformed trace entry {index}: {reason}")
            }
            ParseTraceError::BadMagic => f.write_str("not a gmap binary trace (bad magic)"),
        }
    }
}

impl Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Writes a trace in the text format. The writer can be any `Write`
/// implementor (pass `&mut file` to keep ownership).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_text<W: Write>(mut w: W, entries: &[TraceEntry]) -> io::Result<()> {
    writeln!(w, "# gmap trace v1: tid pc kind addr")?;
    for (tid, acc) in entries {
        writeln!(
            w,
            "{} {:#x} {} {:#x}",
            tid.0, acc.pc.0, acc.kind, acc.addr.0
        )?;
    }
    Ok(())
}

/// Reads a trace in the text format.
///
/// # Errors
///
/// Returns [`ParseTraceError::Malformed`] on any line that does not have
/// four fields of the expected shape, and propagates I/O errors.
pub fn read_text<R: BufRead>(r: R) -> Result<Vec<TraceEntry>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let index = i + 1;
        let mut fields = line.split_whitespace();
        let mut next = |what: &str| {
            fields.next().ok_or_else(|| ParseTraceError::Malformed {
                index,
                reason: format!("missing {what} field"),
            })
        };
        let tid: u32 = next("tid")?
            .parse()
            .map_err(|e| ParseTraceError::Malformed {
                index,
                reason: format!("bad tid: {e}"),
            })?;
        let pc = parse_hex(next("pc")?, index, "pc")?;
        let kind = match next("kind")? {
            "R" => AccessKind::Read,
            "W" => AccessKind::Write,
            other => {
                return Err(ParseTraceError::Malformed {
                    index,
                    reason: format!("bad kind {other:?} (expected R or W)"),
                })
            }
        };
        let addr = parse_hex(next("addr")?, index, "addr")?;
        out.push((
            ThreadId(tid),
            MemAccess {
                pc: Pc(pc),
                addr: ByteAddr(addr),
                kind,
            },
        ));
    }
    Ok(out)
}

fn parse_hex(s: &str, index: usize, what: &str) -> Result<u64, ParseTraceError> {
    let stripped = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    u64::from_str_radix(stripped, 16).map_err(|e| ParseTraceError::Malformed {
        index,
        reason: format!("bad {what}: {e}"),
    })
}

const MAGIC: &[u8; 4] = b"GMTR";

/// Writes a trace in the binary format.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_binary<W: Write>(mut w: W, entries: &[TraceEntry]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(entries.len() as u64).to_le_bytes())?;
    for (tid, acc) in entries {
        w.write_all(&tid.0.to_le_bytes())?;
        w.write_all(&acc.pc.0.to_le_bytes())?;
        w.write_all(&acc.addr.0.to_le_bytes())?;
        w.write_all(&[acc.kind.is_write() as u8])?;
    }
    Ok(())
}

/// Reads a trace in the binary format.
///
/// # Errors
///
/// Returns [`ParseTraceError::BadMagic`] if the stream does not start with
/// `GMTR`, [`ParseTraceError::Malformed`] on a truncated record, and
/// propagates I/O errors.
pub fn read_binary<R: Read>(mut r: R) -> Result<Vec<TraceEntry>, ParseTraceError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ParseTraceError::BadMagic);
    }
    let mut len = [0u8; 8];
    r.read_exact(&mut len)?;
    let count = u64::from_le_bytes(len) as usize;
    let mut out = Vec::with_capacity(count.min(1 << 24));
    let mut rec = [0u8; 21];
    for i in 0..count {
        r.read_exact(&mut rec).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ParseTraceError::Malformed {
                    index: i + 1,
                    reason: "truncated record".into(),
                }
            } else {
                ParseTraceError::Io(e)
            }
        })?;
        let tid = u32::from_le_bytes(rec[0..4].try_into().expect("fixed slice"));
        let pc = u64::from_le_bytes(rec[4..12].try_into().expect("fixed slice"));
        let addr = u64::from_le_bytes(rec[12..20].try_into().expect("fixed slice"));
        let kind = if rec[20] != 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        out.push((
            ThreadId(tid),
            MemAccess {
                pc: Pc(pc),
                addr: ByteAddr(addr),
                kind,
            },
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<TraceEntry> {
        vec![
            (ThreadId(0), MemAccess::read(Pc(0x900), ByteAddr(0x1000))),
            (ThreadId(1), MemAccess::write(Pc(0x4a0), ByteAddr(0x1080))),
            (
                ThreadId(31),
                MemAccess::read(Pc(0xe8), ByteAddr(0xFFFF_FFFF_0000)),
            ),
        ]
    }

    #[test]
    fn text_round_trip() {
        let entries = sample_entries();
        let mut buf = Vec::new();
        write_text(&mut buf, &entries).expect("write");
        let back = read_text(&buf[..]).expect("read");
        assert_eq!(entries, back);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let src = "# header\n\n0 0x10 R 0x80\n  \n# tail\n";
        let got = read_text(src.as_bytes()).expect("read");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.pc, Pc(0x10));
    }

    #[test]
    fn text_accepts_bare_hex() {
        let src = "3 1c85 W ff00\n";
        let got = read_text(src.as_bytes()).expect("read");
        assert_eq!(
            got[0],
            (ThreadId(3), MemAccess::write(Pc(0x1c85), ByteAddr(0xff00)))
        );
    }

    #[test]
    fn text_rejects_missing_field() {
        let err = read_text("0 0x10 R\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, ParseTraceError::Malformed { index: 1, .. }),
            "got {err}"
        );
    }

    #[test]
    fn text_rejects_bad_kind() {
        let err = read_text("0 0x10 X 0x80\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad kind"), "got {msg}");
    }

    #[test]
    fn text_rejects_bad_number() {
        let err = read_text("zebra 0x10 R 0x80\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad tid"));
    }

    #[test]
    fn binary_round_trip() {
        let entries = sample_entries();
        let mut buf = Vec::new();
        write_binary(&mut buf, &entries).expect("write");
        let back = read_binary(&buf[..]).expect("read");
        assert_eq!(entries, back);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, ParseTraceError::BadMagic));
    }

    #[test]
    fn binary_rejects_truncation() {
        let entries = sample_entries();
        let mut buf = Vec::new();
        write_binary(&mut buf, &entries).expect("write");
        buf.truncate(buf.len() - 5);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(
            matches!(err, ParseTraceError::Malformed { .. }),
            "got {err}"
        );
    }

    #[test]
    fn empty_trace_round_trips_both_formats() {
        let mut t = Vec::new();
        write_text(&mut t, &[]).expect("write");
        assert_eq!(read_text(&t[..]).expect("read"), vec![]);
        let mut b = Vec::new();
        write_binary(&mut b, &[]).expect("write");
        assert_eq!(read_binary(&b[..]).expect("read"), vec![]);
    }
}
