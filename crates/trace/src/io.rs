//! Readers and writers for per-thread memory traces.
//!
//! G-MAP can profile traces produced by any front end, not just the
//! execution substrate in `gmap-gpu`. This module defines two on-disk
//! formats for interchange:
//!
//! - **Text**: one access per line, `tid pc kind addr` with hexadecimal pc
//!   and address (comment lines start with `#`). Diffable and easy to
//!   produce from any tracing tool.
//! - **Binary**: a `GMTR` magic, a little-endian record count, then fixed
//!   21-byte records. Compact and fast for large traces.
//!
//! Besides the materializing `read_text`/`read_binary` readers, the
//! building blocks of both formats ([`parse_text_line`], [`decode_record`],
//! the [`MAGIC`]/[`HEADER_BYTES`]/[`RECORD_BYTES`] framing constants) are
//! public so that streaming consumers (`gmap-ingest`) can parse chunk by
//! chunk with byte-identical semantics.

use crate::record::{AccessKind, ByteAddr, MemAccess, Pc, ThreadId};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// One trace entry: which thread performed which access.
pub type TraceEntry = (ThreadId, MemAccess);

/// Error produced while parsing a trace.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line or record, with 1-based line/record index, the
    /// offending field, and a description.
    Malformed {
        /// 1-based index of the offending entry. For text traces this is
        /// the *physical line number* (comments and blank lines count);
        /// for binary traces it is the 1-based record number.
        index: usize,
        /// The field that failed to parse (`"tid"`, `"pc"`, `"kind"`,
        /// `"addr"`), or a framing pseudo-field (`"line"`, `"record"`,
        /// `"magic"`, `"count"`).
        field: &'static str,
        /// What was wrong with it.
        reason: String,
    },
    /// The binary magic did not match `GMTR`.
    BadMagic,
}

impl ParseTraceError {
    fn malformed(index: usize, field: &'static str, reason: impl Into<String>) -> Self {
        ParseTraceError::Malformed {
            index,
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ParseTraceError::Malformed {
                index,
                field,
                reason,
            } => {
                write!(f, "malformed trace entry {index} ({field}): {reason}")
            }
            ParseTraceError::BadMagic => f.write_str("not a gmap binary trace (bad magic)"),
        }
    }
}

impl Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseTraceError {
    fn from(e: io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Writes a trace in the text format. The writer can be any `Write`
/// implementor (pass `&mut file` to keep ownership).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_text<W: Write>(mut w: W, entries: &[TraceEntry]) -> io::Result<()> {
    writeln!(w, "# gmap trace v1: tid pc kind addr")?;
    for (tid, acc) in entries {
        writeln!(
            w,
            "{} {:#x} {} {:#x}",
            tid.0, acc.pc.0, acc.kind, acc.addr.0
        )?;
    }
    Ok(())
}

/// Parses one line of the text format.
///
/// `index` is the 1-based physical line number, used verbatim in errors.
/// Returns `Ok(None)` for blank lines and `#` comments.
///
/// # Errors
///
/// Returns [`ParseTraceError::Malformed`] (carrying `index` and the
/// offending field) when the line does not have four fields of the
/// expected shape.
pub fn parse_text_line(line: &str, index: usize) -> Result<Option<TraceEntry>, ParseTraceError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let mut next = |what: &'static str| {
        fields
            .next()
            .ok_or_else(|| ParseTraceError::malformed(index, what, format!("missing {what} field")))
    };
    let tid: u32 = next("tid")?
        .parse()
        .map_err(|e| ParseTraceError::malformed(index, "tid", format!("bad tid: {e}")))?;
    let pc = parse_hex(next("pc")?, index, "pc")?;
    let kind = match next("kind")? {
        "R" => AccessKind::Read,
        "W" => AccessKind::Write,
        other => {
            return Err(ParseTraceError::malformed(
                index,
                "kind",
                format!("bad kind {other:?} (expected R or W)"),
            ))
        }
    };
    let addr = parse_hex(next("addr")?, index, "addr")?;
    Ok(Some((
        ThreadId(tid),
        MemAccess {
            pc: Pc(pc),
            addr: ByteAddr(addr),
            kind,
        },
    )))
}

/// Reads a trace in the text format.
///
/// # Errors
///
/// Returns [`ParseTraceError::Malformed`] on any line that does not have
/// four fields of the expected shape — with the 1-based line number and
/// the offending field — and propagates I/O errors.
pub fn read_text<R: BufRead>(r: R) -> Result<Vec<TraceEntry>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if let Some(entry) = parse_text_line(&line, i + 1)? {
            out.push(entry);
        }
    }
    Ok(out)
}

fn parse_hex(s: &str, index: usize, what: &'static str) -> Result<u64, ParseTraceError> {
    let stripped = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    u64::from_str_radix(stripped, 16)
        .map_err(|e| ParseTraceError::malformed(index, what, format!("bad {what}: {e}")))
}

/// The binary-format magic bytes.
pub const MAGIC: &[u8; 4] = b"GMTR";

/// Size of the binary header: magic plus little-endian `u64` record count.
pub const HEADER_BYTES: usize = 12;

/// Size of one fixed binary record: `u32` tid, `u64` pc, `u64` addr,
/// `u8` is-write flag.
pub const RECORD_BYTES: usize = 21;

/// Decodes one fixed-size binary record. Infallible: every bit pattern of
/// the numeric fields is a valid entry (a nonzero flag byte means write).
pub fn decode_record(rec: &[u8; RECORD_BYTES]) -> TraceEntry {
    let tid = u32::from_le_bytes(rec[0..4].try_into().expect("fixed slice"));
    let pc = u64::from_le_bytes(rec[4..12].try_into().expect("fixed slice"));
    let addr = u64::from_le_bytes(rec[12..20].try_into().expect("fixed slice"));
    let kind = if rec[20] != 0 {
        AccessKind::Write
    } else {
        AccessKind::Read
    };
    (
        ThreadId(tid),
        MemAccess {
            pc: Pc(pc),
            addr: ByteAddr(addr),
            kind,
        },
    )
}

/// Writes a trace in the binary format.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_binary<W: Write>(mut w: W, entries: &[TraceEntry]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(entries.len() as u64).to_le_bytes())?;
    for (tid, acc) in entries {
        w.write_all(&tid.0.to_le_bytes())?;
        w.write_all(&acc.pc.0.to_le_bytes())?;
        w.write_all(&acc.addr.0.to_le_bytes())?;
        w.write_all(&[acc.kind.is_write() as u8])?;
    }
    Ok(())
}

/// Reads a trace in the binary format.
///
/// # Errors
///
/// Returns [`ParseTraceError::BadMagic`] if the stream does not start with
/// `GMTR`, and [`ParseTraceError::Malformed`] on a truncated header, a
/// truncated record (including a partial *final* record), or trailing
/// bytes beyond the declared record count. Other I/O errors propagate as
/// [`ParseTraceError::Io`].
pub fn read_binary<R: Read>(mut r: R) -> Result<Vec<TraceEntry>, ParseTraceError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(|e| eof_as_malformed(e, 0, "magic", "truncated header (magic)"))?;
    if &magic != MAGIC {
        return Err(ParseTraceError::BadMagic);
    }
    let mut len = [0u8; 8];
    r.read_exact(&mut len)
        .map_err(|e| eof_as_malformed(e, 0, "count", "truncated header (record count)"))?;
    let count = u64::from_le_bytes(len) as usize;
    let mut out = Vec::with_capacity(count.min(1 << 24));
    let mut rec = [0u8; RECORD_BYTES];
    for i in 0..count {
        r.read_exact(&mut rec)
            .map_err(|e| eof_as_malformed(e, i + 1, "record", "truncated record"))?;
        out.push(decode_record(&rec));
    }
    // A well-formed trace ends exactly at the declared count; stray bytes
    // mean the header lied or the stream was corrupted mid-write.
    let mut probe = [0u8; 1];
    match r.read(&mut probe) {
        Ok(0) => Ok(out),
        Ok(_) => Err(ParseTraceError::malformed(
            count + 1,
            "record",
            "trailing data after declared record count",
        )),
        Err(e) => Err(ParseTraceError::Io(e)),
    }
}

fn eof_as_malformed(
    e: io::Error,
    index: usize,
    field: &'static str,
    reason: &'static str,
) -> ParseTraceError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        ParseTraceError::malformed(index, field, reason)
    } else {
        ParseTraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<TraceEntry> {
        vec![
            (ThreadId(0), MemAccess::read(Pc(0x900), ByteAddr(0x1000))),
            (ThreadId(1), MemAccess::write(Pc(0x4a0), ByteAddr(0x1080))),
            (
                ThreadId(31),
                MemAccess::read(Pc(0xe8), ByteAddr(0xFFFF_FFFF_0000)),
            ),
        ]
    }

    #[test]
    fn text_round_trip() {
        let entries = sample_entries();
        let mut buf = Vec::new();
        write_text(&mut buf, &entries).expect("write");
        let back = read_text(&buf[..]).expect("read");
        assert_eq!(entries, back);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let src = "# header\n\n0 0x10 R 0x80\n  \n# tail\n";
        let got = read_text(src.as_bytes()).expect("read");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.pc, Pc(0x10));
    }

    #[test]
    fn text_accepts_bare_hex() {
        let src = "3 1c85 W ff00\n";
        let got = read_text(src.as_bytes()).expect("read");
        assert_eq!(
            got[0],
            (ThreadId(3), MemAccess::write(Pc(0x1c85), ByteAddr(0xff00)))
        );
    }

    #[test]
    fn text_rejects_missing_field() {
        let err = read_text("0 0x10 R\n".as_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                ParseTraceError::Malformed {
                    index: 1,
                    field: "addr",
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn text_rejects_bad_kind() {
        let err = read_text("0 0x10 X 0x80\n".as_bytes()).unwrap_err();
        assert!(
            matches!(&err, ParseTraceError::Malformed { field: "kind", .. }),
            "got {err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("bad kind"), "got {msg}");
    }

    #[test]
    fn text_rejects_bad_number() {
        let err = read_text("zebra 0x10 R 0x80\n".as_bytes()).unwrap_err();
        assert!(
            matches!(&err, ParseTraceError::Malformed { field: "tid", .. }),
            "got {err}"
        );
        assert!(err.to_string().contains("bad tid"));
    }

    #[test]
    fn text_errors_carry_physical_line_numbers() {
        // Comments and blank lines still advance the reported line number.
        let src = "# header\n\n0 0x10 R 0x80\n0 0x10 Q 0x80\n";
        let err = read_text(src.as_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                ParseTraceError::Malformed {
                    index: 4,
                    field: "kind",
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn binary_round_trip() {
        let entries = sample_entries();
        let mut buf = Vec::new();
        write_binary(&mut buf, &entries).expect("write");
        let back = read_binary(&buf[..]).expect("read");
        assert_eq!(entries, back);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOPE\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, ParseTraceError::BadMagic));
    }

    #[test]
    fn binary_rejects_truncation() {
        let entries = sample_entries();
        let mut buf = Vec::new();
        write_binary(&mut buf, &entries).expect("write");
        buf.truncate(buf.len() - 5);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(
            matches!(
                err,
                ParseTraceError::Malformed {
                    index: 3,
                    field: "record",
                    ..
                }
            ),
            "truncated final record must be reported, got {err}"
        );
    }

    #[test]
    fn binary_rejects_truncated_header() {
        let err = read_binary(&b"GMTR\x01\x00"[..]).unwrap_err();
        assert!(
            matches!(&err, ParseTraceError::Malformed { field: "count", .. }),
            "got {err}"
        );
        let err = read_binary(&b"GM"[..]).unwrap_err();
        assert!(
            matches!(&err, ParseTraceError::Malformed { field: "magic", .. }),
            "got {err}"
        );
    }

    #[test]
    fn binary_rejects_trailing_bytes() {
        let entries = sample_entries();
        let mut buf = Vec::new();
        write_binary(&mut buf, &entries).expect("write");
        buf.push(0xFF);
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(
            matches!(err, ParseTraceError::Malformed { index: 4, .. }),
            "got {err}"
        );
        assert!(err.to_string().contains("trailing data"), "got {err}");
    }

    #[test]
    fn decode_record_matches_writer_layout() {
        let entry = (ThreadId(7), MemAccess::write(Pc(0xabc), ByteAddr(0xdef0)));
        let mut buf = Vec::new();
        write_binary(&mut buf, &[entry]).expect("write");
        assert_eq!(buf.len(), HEADER_BYTES + RECORD_BYTES);
        let rec: [u8; RECORD_BYTES] = buf[HEADER_BYTES..].try_into().expect("fixed slice");
        assert_eq!(decode_record(&rec), entry);
    }

    #[test]
    fn empty_trace_round_trips_both_formats() {
        let mut t = Vec::new();
        write_text(&mut t, &[]).expect("write");
        assert_eq!(read_text(&t[..]).expect("read"), vec![]);
        let mut b = Vec::new();
        write_binary(&mut b, &[]).expect("write");
        assert_eq!(read_binary(&b[..]).expect("read"), vec![]);
    }
}
