//! Exact LRU stack-distance (reuse-distance) computation.
//!
//! Reuse distance — the number of *distinct* data elements accessed between
//! two consecutive accesses to the same element (Mattson et al., 1970) — is
//! G-MAP's temporal-locality model (§4.3, Fig. 5 of the paper). Distances
//! are computed at cacheline granularity.
//!
//! The classic stack simulation is `O(N·M)`; [`ReuseComputer`] instead keeps
//! a Fenwick (binary-indexed) tree over access timestamps, marking the most
//! recent access time of every element, which yields each distance in
//! `O(log N)`.

use crate::histogram::Histogram;
use crate::rng::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Fenwick tree over access timestamps supporting point update and prefix
/// sum. Grows geometrically as the trace lengthens; growth rebuilds the
/// tree from a flat mirror of the marks, because a Fenwick node added after
/// the fact would otherwise miss propagations from earlier updates.
#[derive(Debug, Clone, Default)]
struct Fenwick {
    tree: Vec<u64>,
    flat: Vec<u8>,
}

impl Fenwick {
    fn ensure(&mut self, n: usize) {
        if self.flat.len() < n + 1 {
            let new_len = (n + 1).next_power_of_two();
            self.flat.resize(new_len, 0);
            // Rebuild: O(len) per doubling, amortized O(1) per access.
            self.tree = vec![0; new_len];
            for i in 1..new_len {
                self.tree[i] += self.flat[i] as u64;
                let parent = i + (i & i.wrapping_neg());
                if parent < new_len {
                    let child = self.tree[i];
                    self.tree[parent] += child;
                }
            }
        }
    }

    /// Adds `delta` (±1) at 1-based index `i`.
    fn add(&mut self, i: usize, delta: i64) {
        self.ensure(i);
        self.flat[i] = (self.flat[i] as i64 + delta) as u8;
        let mut i = i;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of values at 1-based indices `1..=i`.
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i.min(self.tree.len().saturating_sub(1));
        let mut s = 0u64;
        while i > 0 {
            s = s.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Streaming reuse-distance computer.
///
/// Feed cacheline addresses in access order with [`ReuseComputer::push`];
/// each call returns the LRU stack distance of that access, or `None` for a
/// cold (first-ever) access.
///
/// # Example
///
/// The worked example of Figure 5 of the paper (addresses already reduced to
/// cachelines):
///
/// ```
/// use gmap_trace::ReuseComputer;
///
/// let mut rc = ReuseComputer::new();
/// assert_eq!(rc.push(0), None);     // X[0] — cold
/// assert_eq!(rc.push(0), Some(0));  // X[1] — same line, distance 0
/// assert_eq!(rc.push(1), None);     // X[2] — cold
/// assert_eq!(rc.push(1), Some(0));  // X[3]
/// assert_eq!(rc.push(0), Some(1));  // X[1] — one distinct line in between
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReuseComputer {
    last_access: HashMap<u64, usize>,
    marks: Fenwick,
    time: usize,
}

impl ReuseComputer {
    /// Creates a computer with no history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an access to `line` and returns its reuse distance, or
    /// `None` if this is the first access to the line.
    pub fn push(&mut self, line: u64) -> Option<u64> {
        self.time += 1;
        let t = self.time; // 1-based timestamp
        let dist = match self.last_access.insert(line, t) {
            None => None,
            Some(prev) => {
                // Distinct lines touched strictly between prev and t =
                // number of "last access" marks in (prev, t).
                let d = self.marks.prefix(t - 1) - self.marks.prefix(prev);
                self.marks.add(prev, -1);
                Some(d)
            }
        };
        self.marks.add(t, 1);
        dist
    }

    /// Number of accesses observed so far.
    pub fn accesses(&self) -> usize {
        self.time
    }

    /// Number of distinct lines observed so far.
    pub fn distinct_lines(&self) -> usize {
        self.last_access.len()
    }
}

/// Reuse classification used in Table 1 of the paper: the fraction of
/// accesses that are reuses (finite distance) classifies an instruction
/// profile as low (<30 %), medium (30–70 %) or high (>70 %) reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReuseClass {
    /// Less than 30 % of accesses are reuses.
    Low,
    /// Between 30 % and 70 %.
    Medium,
    /// More than 70 %.
    High,
}

impl fmt::Display for ReuseClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseClass::Low => f.write_str("Low"),
            ReuseClass::Medium => f.write_str("Med"),
            ReuseClass::High => f.write_str("High"),
        }
    }
}

/// Reuse-distance distribution of one access stream: a histogram over the
/// finite distances plus a count of cold accesses.
///
/// This is the `P_R` component of G-MAP's statistical profile (§4.6).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReuseHistogram {
    hist: Histogram<u64>,
    cold: u64,
}

impl ReuseHistogram {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the distribution of an entire line-address stream.
    ///
    /// ```
    /// use gmap_trace::ReuseHistogram;
    /// let rh = ReuseHistogram::from_lines([0u64, 0, 1, 1, 0, 1, 1, 0]);
    /// assert_eq!(rh.cold(), 2);
    /// assert_eq!(rh.reuses(), 6);
    /// ```
    pub fn from_lines<I: IntoIterator<Item = u64>>(lines: I) -> Self {
        let mut rc = ReuseComputer::new();
        let mut rh = ReuseHistogram::new();
        for line in lines {
            rh.record(rc.push(line));
        }
        rh
    }

    /// Records one observation (`None` = cold access).
    pub fn record(&mut self, distance: Option<u64>) {
        match distance {
            Some(d) => self.hist.add(d),
            None => self.cold += 1,
        }
    }

    /// The histogram over finite distances.
    pub fn distances(&self) -> &Histogram<u64> {
        &self.hist
    }

    /// Number of cold (first-touch) accesses.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Number of reuse (finite-distance) accesses.
    pub fn reuses(&self) -> u64 {
        self.hist.total()
    }

    /// Total accesses observed.
    pub fn total(&self) -> u64 {
        self.cold + self.hist.total()
    }

    /// Fraction of accesses that are reuses, in `[0, 1]` (0 if empty).
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.reuses() as f64 / total as f64
        }
    }

    /// Table 1 style classification of this stream's temporal locality.
    pub fn class(&self) -> ReuseClass {
        let f = self.reuse_fraction();
        if f < 0.30 {
            ReuseClass::Low
        } else if f <= 0.70 {
            ReuseClass::Medium
        } else {
            ReuseClass::High
        }
    }

    /// Samples a finite reuse distance; `None` if no reuse was ever
    /// observed. Used by Algorithm 1, line 11 of the paper.
    pub fn sample(&self, rng: &mut Rng) -> Option<u64> {
        self.hist.sample(rng)
    }

    /// Merges another distribution into this one.
    pub fn merge(&mut self, other: &ReuseHistogram) {
        self.hist.merge(&other.hist);
        self.cold += other.cold;
    }

    /// Scales the finite-distance counts (miniaturization, §4.6). Cold
    /// counts scale too, flooring at 1 if any cold access existed.
    pub fn scale_counts(&mut self, factor: f64) {
        if !self.hist.is_empty() {
            self.hist.scale_counts(factor);
        }
        if self.cold > 0 {
            self.cold = ((self.cold as f64 * factor).round() as u64).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact example of Figure 5 of the paper: accesses
    /// X[0] X[1] X[2] X[3] X[1] X[2] X[3] X[0], two array elements per
    /// cacheline, expected distances ∞ 0 ∞ 0 1 1 0 1.
    #[test]
    fn paper_figure5_example() {
        let lines = [0u64, 0, 1, 1, 0, 1, 1, 0];
        let mut rc = ReuseComputer::new();
        let got: Vec<Option<u64>> = lines.iter().map(|&l| rc.push(l)).collect();
        assert_eq!(
            got,
            [
                None,
                Some(0),
                None,
                Some(0),
                Some(1),
                Some(1),
                Some(0),
                Some(1)
            ]
        );
    }

    #[test]
    fn all_cold_stream() {
        let mut rc = ReuseComputer::new();
        for l in 0..100u64 {
            assert_eq!(rc.push(l), None);
        }
        assert_eq!(rc.distinct_lines(), 100);
        assert_eq!(rc.accesses(), 100);
    }

    #[test]
    fn repeated_single_line() {
        let mut rc = ReuseComputer::new();
        assert_eq!(rc.push(7), None);
        for _ in 0..50 {
            assert_eq!(rc.push(7), Some(0));
        }
    }

    #[test]
    fn cyclic_stream_distance_equals_working_set() {
        // Accessing 0,1,2,3,0,1,2,3,... each reuse sees 3 distinct lines.
        let mut rc = ReuseComputer::new();
        for l in 0..4u64 {
            rc.push(l);
        }
        for _ in 0..3 {
            for l in 0..4u64 {
                assert_eq!(rc.push(l), Some(3));
            }
        }
    }

    /// Brute-force oracle: count distinct lines between consecutive
    /// accesses to the same line.
    fn naive_reuse(lines: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::with_capacity(lines.len());
        for (i, &l) in lines.iter().enumerate() {
            let prev = lines[..i].iter().rposition(|&x| x == l);
            out.push(prev.map(|p| {
                let mut set = std::collections::HashSet::new();
                for &x in &lines[p + 1..i] {
                    set.insert(x);
                }
                set.len() as u64
            }));
        }
        out
    }

    #[test]
    fn matches_naive_oracle_on_random_stream() {
        let mut rng = Rng::seed_from(1234);
        let lines: Vec<u64> = (0..2000).map(|_| rng.gen_range(64)).collect();
        let mut rc = ReuseComputer::new();
        let fast: Vec<Option<u64>> = lines.iter().map(|&l| rc.push(l)).collect();
        assert_eq!(fast, naive_reuse(&lines));
    }

    #[test]
    fn histogram_from_lines() {
        let rh = ReuseHistogram::from_lines([0u64, 0, 1, 1, 0, 1, 1, 0]);
        assert_eq!(rh.cold(), 2);
        assert_eq!(rh.reuses(), 6);
        assert_eq!(rh.total(), 8);
        assert_eq!(rh.distances().count_of(0), 3);
        assert_eq!(rh.distances().count_of(1), 3);
        assert!((rh.reuse_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(rh.class(), ReuseClass::High);
    }

    #[test]
    fn reuse_classification_bounds() {
        // 0 % reuse.
        let low = ReuseHistogram::from_lines(0..10u64);
        assert_eq!(low.class(), ReuseClass::Low);
        // 50 % reuse: 5 cold + 5 reuses.
        let med = ReuseHistogram::from_lines([0u64, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
        assert_eq!(med.class(), ReuseClass::Medium);
        // Empty stream defaults to Low.
        assert_eq!(ReuseHistogram::new().class(), ReuseClass::Low);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = ReuseHistogram::from_lines([0u64, 0, 0, 0]);
        let b = ReuseHistogram::from_lines([1u64, 2, 1, 2]);
        a.merge(&b);
        assert_eq!(a.cold(), 3);
        assert_eq!(a.reuses(), 5);
        a.scale_counts(0.5);
        assert!(a.cold() >= 1);
        assert!(a.reuses() >= 1);
    }

    #[test]
    fn sample_returns_observed_distance() {
        let rh = ReuseHistogram::from_lines([0u64, 1, 0, 1]);
        let mut rng = Rng::seed_from(5);
        for _ in 0..20 {
            assert_eq!(rh.sample(&mut rng), Some(1));
        }
        assert_eq!(ReuseHistogram::new().sample(&mut rng), None);
    }

    #[test]
    fn display_of_classes() {
        assert_eq!(ReuseClass::Low.to_string(), "Low");
        assert_eq!(ReuseClass::Medium.to_string(), "Med");
        assert_eq!(ReuseClass::High.to_string(), "High");
    }

    #[test]
    fn serde_round_trip() {
        let rh = ReuseHistogram::from_lines([0u64, 0, 1, 1, 0]);
        let json = serde_json::to_string(&rh).expect("serialize");
        let back: ReuseHistogram = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(rh, back);
    }
}
