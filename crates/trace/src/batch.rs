//! Batch-kernel selection for the vectorized hot paths.
//!
//! The sweep engine's inner passes — stack-distance recency scans,
//! histogram binning, warp coalescing, DRAM address decomposition — each
//! ship in two implementations: a straightforward *scalar* loop (the
//! reference every differential test replays against) and a *batched*
//! fixed-width kernel (8/16-lane hand-unrolled, branch-free in the lane
//! body, with a scalar tail) that the autovectorizer turns into SIMD on
//! stable Rust. The batched kernels are bit-exact by construction and by
//! test; selection only ever trades speed.
//!
//! [`default_mode`] is the process-wide switch: batched unless the
//! `GMAP_SCALAR_KERNELS` environment variable is set to `1`/`true` (the
//! escape hatch for A/B perf measurement and for bisecting a suspected
//! kernel bug). The perf tracker asserts the batched path is selected in
//! CI, so a regression to scalar cannot land silently.

use std::sync::OnceLock;

/// Lane width of the unrolled batch kernels.
///
/// Eight 64-bit lanes fill one AVX-512 register or two AVX2 registers;
/// the autovectorizer handles either without a width-specific code path.
pub const LANES: usize = 8;

/// Which implementation of a dual-path kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelMode {
    /// The reference implementation: one element at a time.
    Scalar,
    /// The lane-unrolled implementation (8/16-wide chunks + scalar tail).
    Batched,
}

impl KernelMode {
    /// `true` for [`KernelMode::Batched`].
    #[inline]
    pub fn is_batched(self) -> bool {
        matches!(self, KernelMode::Batched)
    }
}

/// The process-wide kernel mode: [`KernelMode::Batched`] unless the
/// `GMAP_SCALAR_KERNELS` environment variable is `1` or `true`.
///
/// Read once and cached — flipping the variable mid-process has no
/// effect, which keeps every pass of one run on one path.
pub fn default_mode() -> KernelMode {
    static MODE: OnceLock<KernelMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("GMAP_SCALAR_KERNELS") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => KernelMode::Scalar,
        _ => KernelMode::Batched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_is_the_default() {
        // The test environment does not set the escape hatch.
        assert_eq!(default_mode(), KernelMode::Batched);
        assert!(default_mode().is_batched());
        assert!(!KernelMode::Scalar.is_batched());
    }
}
