//! Deterministic pseudo-random number generation.
//!
//! G-MAP's proxy generation is stochastic (π-profile assignment, stride and
//! reuse sampling, the `SchedP_self` scheduler), but reproducibility is a
//! hard requirement for validation: the same profile and seed must produce
//! the same clone. This module implements xoshiro256\*\* seeded through
//! SplitMix64 — small, fast, and fully deterministic across platforms — so
//! the workspace needs no external RNG dependency in library code.

use serde::{Deserialize, Serialize};

/// Stateless 64-bit mixing function (SplitMix64 finalizer).
///
/// Used wherever a *deterministic* pseudo-random value must be derived from
/// structured inputs — e.g. the irregular index expressions of the synthetic
/// workloads hash `(seed, tid, iteration)` through this function.
///
/// ```
/// use gmap_trace::rng::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256\*\* pseudo-random number generator.
///
/// ```
/// use gmap_trace::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64 as
    /// recommended by the xoshiro authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next_sm(), next_sm(), next_sm(), next_sm()];
        Rng { state }
    }

    /// Derives an independent generator for a sub-task (e.g. one per thread
    /// or per warp) without correlating the streams.
    pub fn split(&mut self, stream: u64) -> Rng {
        let mix = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::seed_from(mix)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)`. Uses Lemire's multiply-shift rejection
    /// method, so the result is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range requires a positive bound");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform signed integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + self.gen_range(span) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Rng::seed_from(0xDEAD_BEEF);
        let mut b = Rng::seed_from(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        // SplitMix64 expansion means an all-zero internal state is impossible.
        let mut r = Rng::seed_from(0);
        assert_ne!(r.next_u64(), 0_u64.wrapping_add(r.next_u64()));
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Rng::seed_from(99);
        for _ in 0..10_000 {
            assert!(r.gen_range(7) < 7);
        }
        for _ in 0..100 {
            assert_eq!(r.gen_range(1), 0);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = Rng::seed_from(5);
        let n = 100_000;
        let mut counts = [0u64; 10];
        for _ in 0..n {
            counts[r.gen_range(10) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - 0.1).abs() < 0.01,
                "bucket frequency {frac} too far from 0.1"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn gen_range_zero_panics() {
        Rng::seed_from(1).gen_range(0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = Rng::seed_from(11);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = Rng::seed_from(21);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0 + 1e-9));
    }

    #[test]
    fn gen_range_i64_inclusive() {
        let mut r = Rng::seed_from(31);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(r.gen_range_i64(5, 5), 5);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut root = Rng::seed_from(77);
        let mut a = root.split(0);
        let mut b = root.split(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
