//! Strongly-typed records for GPU memory access traces.
//!
//! Everything downstream of the execution substrate speaks in terms of these
//! types: a static memory instruction is identified by its [`Pc`], a scalar
//! thread by its [`ThreadId`], a warp by its [`WarpId`], and memory locations
//! by [`ByteAddr`] (raw) or [`LineAddr`] (cacheline-granular).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Program counter of a *static* memory instruction.
///
/// G-MAP is a code-localized model: every distribution in the statistical
/// profile (inter-thread stride, intra-thread stride) is keyed by the static
/// instruction that produced the access (§4.2–4.3 of the paper).
///
/// ```
/// use gmap_trace::Pc;
/// let pc = Pc(0x900);
/// assert_eq!(format!("{pc}"), "0x900");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pc(pub u64);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Global (grid-wide) scalar thread identifier.
///
/// Threads are linearized in CUDA order: `tid = block_id * block_size +
/// thread_in_block` (CUDA programming guide §G.1, which G-MAP follows for
/// warp formation).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ThreadId(pub u32);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Global warp identifier: `tid / warp_size` (warp size is 32 in the
/// Fermi baseline the paper models).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct WarpId(pub u32);

impl fmt::Display for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Identifier of a streaming multiprocessor (SM / "core").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CoreId(pub u16);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sm{}", self.0)
    }
}

/// A raw byte address in the (synthetic) global memory space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteAddr(pub u64);

impl ByteAddr {
    /// The cacheline this address falls into, for a power-of-two
    /// `line_size` in bytes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `line_size` is not a power of two.
    ///
    /// ```
    /// use gmap_trace::ByteAddr;
    /// assert_eq!(ByteAddr(0x1234).line(128).0, 0x1234 / 128);
    /// ```
    #[inline]
    pub fn line(self, line_size: u64) -> LineAddr {
        debug_assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(self.0 >> line_size.trailing_zeros())
    }

    /// The line-aligned byte address (address of the first byte in the line).
    #[inline]
    pub fn line_base(self, line_size: u64) -> ByteAddr {
        debug_assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        ByteAddr(self.0 & !(line_size - 1))
    }

    /// Signed byte offset to another address (`other - self`), used when
    /// computing stride distributions.
    #[inline]
    pub fn offset_to(self, other: ByteAddr) -> i64 {
        other.0.wrapping_sub(self.0) as i64
    }

    /// The address displaced by a signed byte offset, saturating at zero.
    #[inline]
    pub fn offset(self, delta: i64) -> ByteAddr {
        ByteAddr(self.0.saturating_add_signed(delta))
    }
}

impl fmt::Display for ByteAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for ByteAddr {
    fn from(v: u64) -> Self {
        ByteAddr(v)
    }
}

/// A cacheline index (byte address divided by the line size).
///
/// Reuse distances (paper Fig. 5) and cache lookups are defined at this
/// granularity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first byte address of this line for a given line size.
    #[inline]
    pub fn to_byte_addr(self, line_size: u64) -> ByteAddr {
        debug_assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        ByteAddr(self.0 << line_size.trailing_zeros())
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Whether an access reads or writes memory.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum AccessKind {
    /// A load.
    #[default]
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("R"),
            AccessKind::Write => f.write_str("W"),
        }
    }
}

/// One dynamic memory access by one scalar thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Static instruction that issued the access.
    pub pc: Pc,
    /// Byte address touched.
    pub addr: ByteAddr,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Convenience constructor for a read access.
    pub fn read(pc: Pc, addr: ByteAddr) -> Self {
        MemAccess {
            pc,
            addr,
            kind: AccessKind::Read,
        }
    }

    /// Convenience constructor for a write access.
    pub fn write(pc: Pc, addr: ByteAddr) -> Self {
        MemAccess {
            pc,
            addr,
            kind: AccessKind::Write,
        }
    }
}

impl fmt::Display for MemAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.pc, self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        assert_eq!(ByteAddr(0).line(128), LineAddr(0));
        assert_eq!(ByteAddr(127).line(128), LineAddr(0));
        assert_eq!(ByteAddr(128).line(128), LineAddr(1));
        assert_eq!(ByteAddr(130).line(64), LineAddr(2));
    }

    #[test]
    fn line_base_alignment() {
        assert_eq!(ByteAddr(0x1234).line_base(128), ByteAddr(0x1200));
        assert_eq!(ByteAddr(0x1200).line_base(128), ByteAddr(0x1200));
    }

    #[test]
    fn line_round_trip() {
        let a = ByteAddr(0x4680);
        assert_eq!(a.line(128).to_byte_addr(128), a.line_base(128));
    }

    #[test]
    fn signed_offsets() {
        let a = ByteAddr(0x1000);
        let b = ByteAddr(0x0F00);
        assert_eq!(a.offset_to(b), -256);
        assert_eq!(b.offset_to(a), 256);
        assert_eq!(a.offset(-256), b);
        assert_eq!(b.offset(256), a);
    }

    #[test]
    fn offset_saturates_at_zero() {
        assert_eq!(ByteAddr(16).offset(-64), ByteAddr(0));
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Pc(0x3f8)), "0x3f8");
        assert_eq!(format!("{}", ThreadId(7)), "t7");
        assert_eq!(format!("{}", WarpId(2)), "w2");
        assert_eq!(format!("{}", CoreId(14)), "sm14");
        assert_eq!(format!("{}", AccessKind::Read), "R");
        let acc = MemAccess::write(Pc(0x10), ByteAddr(0x80));
        assert_eq!(format!("{acc}"), "0x10 W 0x80");
    }

    #[test]
    fn serde_round_trip() {
        let acc = MemAccess::read(Pc(0xe8), ByteAddr(4352));
        let json = serde_json::to_string(&acc).expect("serialize");
        let back: MemAccess = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(acc, back);
    }
}
