//! Discrete histograms with weighted sampling.
//!
//! Every distribution in G-MAP's statistical profile — inter-thread stride
//! `P_E`, intra-thread stride `P_A`, reuse distance `P_R`, π-profile weights
//! `Q`, transactions-per-warp-access — is an empirical discrete distribution
//! captured as a [`Histogram`] and replayed by weighted sampling through a
//! [`HistSampler`].

use crate::batch::{KernelMode, LANES};
use crate::rng::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Debug;

/// A discrete histogram over values of type `T`.
///
/// Counts are kept in a `BTreeMap`, so iteration is in ascending value
/// order and [`Histogram::dominant`] / [`Histogram::top_k`] tie-break
/// deterministically on the smaller value.
///
/// # Example
///
/// ```
/// use gmap_trace::Histogram;
///
/// let mut h = Histogram::new();
/// h.add(128i64);
/// h.add(128);
/// h.add(-64);
/// let (value, freq) = h.dominant().expect("non-empty");
/// assert_eq!(value, 128);
/// assert!((freq - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram<T: Ord> {
    counts: BTreeMap<T, u64>,
    total: u64,
}

impl<T: Ord> Default for Histogram<T> {
    fn default() -> Self {
        Histogram {
            counts: BTreeMap::new(),
            total: 0,
        }
    }
}

impl<T: Ord + Copy> Histogram<T> {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn add(&mut self, value: T) {
        self.add_n(value, 1);
    }

    /// Records `n` observations of `value`.
    pub fn add_n(&mut self, value: T, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(value).or_insert(0) += n;
        self.total += n;
    }

    /// Records one observation of every value in `values`.
    ///
    /// Dispatches on `mode`; both paths leave the histogram in an
    /// identical state (a histogram is order-independent by construction).
    /// The batched path accumulates into a small fixed registry with an
    /// 8-lane match scan, so the `BTreeMap` sees one `add_n` per
    /// *distinct* value instead of one tree probe per observation — on
    /// hot profiling loops most slices are runs of a handful of distinct
    /// strides. Distinct-heavy slices (more than `2 × LANES` values)
    /// fall back to a sort + run-length-encode pass.
    pub fn add_slice(&mut self, values: &[T], mode: KernelMode) {
        match mode {
            KernelMode::Scalar => self.add_slice_scalar(values),
            KernelMode::Batched => self.add_slice_batched(values),
        }
    }

    /// Scalar reference for [`Histogram::add_slice`]: one tree probe per
    /// observation.
    pub fn add_slice_scalar(&mut self, values: &[T]) {
        for &v in values {
            self.add(v);
        }
    }

    fn add_slice_batched(&mut self, values: &[T]) {
        // Transposed registry fast path: a fixed array of (value, count)
        // pairs. Each whole 8-value chunk is compared against every
        // *live* registry slot — one broadcast-equality mask and a
        // popcount per slot — so the common all-matched chunk costs
        // `len` lane-wide compares for eight observations instead of
        // eight probes. Registry values are distinct, so each lane
        // matches at most one slot and the popcounts are exact. Lanes
        // no slot matched are inserted one at a time, re-probing
        // because an earlier unmatched lane of the same chunk may have
        // just claimed the same value. Slices with more than `2 ×
        // LANES` distinct values fall back to a sort + run-length
        // encode pass; nothing is flushed before the fallback, so it
        // re-counts the whole slice from scratch.
        const REG: usize = 2 * LANES;
        const ALL: u32 = (1 << LANES) - 1;
        let Some(&first) = values.first() else {
            return;
        };
        let mut reg_v = [first; REG];
        let mut reg_n = [0u64; REG];
        let mut len = 1usize;
        let mut chunks = values.chunks_exact(LANES);
        for c in &mut chunks {
            let mut matched = 0u32;
            for slot in 0..len {
                let rv = reg_v[slot];
                let mut m = 0u32;
                for (lane, &v) in c.iter().enumerate() {
                    m |= u32::from(v == rv) << lane;
                }
                reg_n[slot] += u64::from(m.count_ones());
                matched |= m;
            }
            let mut miss = ALL & !matched;
            while miss != 0 {
                let lane = miss.trailing_zeros() as usize;
                miss &= miss - 1;
                if !registry_probe_insert(&mut reg_v, &mut reg_n, &mut len, c[lane]) {
                    return self.add_slice_sorted_rle(values);
                }
            }
        }
        for &v in chunks.remainder() {
            if !registry_probe_insert(&mut reg_v, &mut reg_n, &mut len, v) {
                return self.add_slice_sorted_rle(values);
            }
        }
        for slot in 0..len {
            self.add_n(reg_v[slot], reg_n[slot]);
        }
    }

    fn add_slice_sorted_rle(&mut self, values: &[T]) {
        if values.is_empty() {
            return;
        }
        let mut sorted: Vec<T> = values.to_vec();
        sorted.sort_unstable();
        // Run-length encode: an 8-lane unrolled neighbor-inequality scan
        // builds a boundary mask per chunk (branch-free lane body), then
        // trailing_zeros walks the set bits to flush completed runs.
        let n = sorted.len();
        let mut run_start = 0usize;
        let mut i = 1usize;
        while i + LANES <= n {
            let mut mask = 0u32;
            for lane in 0..LANES {
                mask |= u32::from(sorted[i + lane - 1] != sorted[i + lane]) << lane;
            }
            while mask != 0 {
                let boundary = i + mask.trailing_zeros() as usize;
                self.add_n(sorted[run_start], (boundary - run_start) as u64);
                run_start = boundary;
                mask &= mask - 1;
            }
            i += LANES;
        }
        while i < n {
            if sorted[i - 1] != sorted[i] {
                self.add_n(sorted[run_start], (i - run_start) as u64);
                run_start = i;
            }
            i += 1;
        }
        self.add_n(sorted[run_start], (n - run_start) as u64);
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// `true` if no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Count of a specific value.
    pub fn count_of(&self, value: T) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Relative frequency of a value in `[0, 1]`; `0` if the histogram is
    /// empty.
    pub fn freq_of(&self, value: T) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count_of(value) as f64 / self.total as f64
        }
    }

    /// `true` if `value` has been observed at least once — i.e. lies in the
    /// *support* of the distribution. This is the `supp(P_A)` membership
    /// test of Algorithm 1, line 12 of the paper.
    pub fn contains(&self, value: T) -> bool {
        self.counts.contains_key(&value)
    }

    /// The most frequent value and its relative frequency, or `None` for an
    /// empty histogram. Ties resolve to the smallest value.
    pub fn dominant(&self) -> Option<(T, f64)> {
        let (&v, &c) = self
            .counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))?;
        Some((v, c as f64 / self.total as f64))
    }

    /// The `k` most frequent `(value, count)` pairs, most frequent first.
    /// Ties resolve to the smaller value first.
    pub fn top_k(&self, k: usize) -> Vec<(T, u64)> {
        let mut entries: Vec<(T, u64)> = self.counts.iter().map(|(&v, &c)| (v, c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// Iterates over `(value, count)` in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (T, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Iterates over the support (distinct values) in ascending order.
    pub fn support(&self) -> impl Iterator<Item = T> + '_ {
        self.counts.keys().copied()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram<T>) {
        for (v, c) in other.iter() {
            self.add_n(v, c);
        }
    }

    /// Scales every count by `factor`, rounding, but never dropping a value
    /// out of the support (counts floor at 1).
    ///
    /// This is the miniaturization primitive of §4.6: the clone keeps the
    /// *shape* of the distribution while the number of samples shrinks.
    pub fn scale_counts(&mut self, factor: f64) {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut total = 0;
        for c in self.counts.values_mut() {
            *c = ((*c as f64 * factor).round() as u64).max(1);
            total += *c;
        }
        self.total = total;
    }

    /// Draws a value with probability proportional to its count.
    /// Returns `None` for an empty histogram.
    ///
    /// For repeated sampling build a [`HistSampler`] instead — this method
    /// is `O(distinct)` per draw.
    pub fn sample(&self, rng: &mut Rng) -> Option<T> {
        if self.total == 0 {
            return None;
        }
        let mut r = rng.gen_range(self.total);
        for (v, c) in self.iter() {
            if r < c {
                return Some(v);
            }
            r -= c;
        }
        unreachable!("cumulative walk must terminate within total")
    }

    /// Builds an `O(log distinct)`-per-draw sampler snapshot of this
    /// histogram.
    pub fn sampler(&self) -> HistSampler<T> {
        let mut values = Vec::with_capacity(self.counts.len());
        let mut cumulative = Vec::with_capacity(self.counts.len());
        let mut acc = 0u64;
        for (v, c) in self.iter() {
            acc += c;
            values.push(v);
            cumulative.push(acc);
        }
        HistSampler { values, cumulative }
    }
}

/// Scalar registry probe for [`Histogram::add_slice`]'s batched path:
/// bump the matching slot's count or claim a new slot for `v`. Returns
/// `false` when the registry is full, signalling the caller to fall
/// back to the sort + RLE pass.
#[inline]
fn registry_probe_insert<T: Copy + PartialEq>(
    reg_v: &mut [T],
    reg_n: &mut [u64],
    len: &mut usize,
    v: T,
) -> bool {
    for slot in 0..*len {
        if reg_v[slot] == v {
            reg_n[slot] += 1;
            return true;
        }
    }
    if *len == reg_v.len() {
        return false;
    }
    reg_v[*len] = v;
    reg_n[*len] = 1;
    *len += 1;
    true
}

impl<T: Ord + Copy> FromIterator<T> for Histogram<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

impl<T: Ord + Copy> Extend<T> for Histogram<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

/// Immutable weighted sampler built from a [`Histogram`] snapshot.
///
/// ```
/// use gmap_trace::{Histogram, Rng};
///
/// let mut h = Histogram::new();
/// h.add_n(10u64, 99);
/// h.add_n(20u64, 1);
/// let sampler = h.sampler();
/// let mut rng = Rng::seed_from(42);
/// let draws = (0..100).filter(|_| sampler.sample(&mut rng) == Some(10)).count();
/// assert!(draws > 80);
/// ```
#[derive(Debug, Clone)]
pub struct HistSampler<T> {
    values: Vec<T>,
    cumulative: Vec<u64>,
}

impl<T: Copy> HistSampler<T> {
    /// Draws a value with probability proportional to its histogram count,
    /// or `None` if the source histogram was empty.
    pub fn sample(&self, rng: &mut Rng) -> Option<T> {
        let total = *self.cumulative.last()?;
        let r = rng.gen_range(total);
        // First index with cumulative > r.
        let idx = self.cumulative.partition_point(|&c| c <= r);
        Some(self.values[idx])
    }

    /// `true` if the source histogram was empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h: Histogram<i64> = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.dominant(), None);
        assert_eq!(h.freq_of(1), 0.0);
        let mut rng = Rng::seed_from(1);
        assert_eq!(h.sample(&mut rng), None);
        assert_eq!(h.sampler().sample(&mut rng), None);
    }

    #[test]
    fn counting_and_frequency() {
        let mut h = Histogram::new();
        h.add_n(128i64, 3);
        h.add(-64);
        assert_eq!(h.total(), 4);
        assert_eq!(h.distinct(), 2);
        assert_eq!(h.count_of(128), 3);
        assert!((h.freq_of(128) - 0.75).abs() < 1e-12);
        assert!(h.contains(-64));
        assert!(!h.contains(0));
    }

    #[test]
    fn add_zero_is_noop() {
        let mut h = Histogram::new();
        h.add_n(5u64, 0);
        assert!(h.is_empty());
        assert!(!h.contains(5));
    }

    #[test]
    fn dominant_breaks_ties_on_smaller_value() {
        let mut h = Histogram::new();
        h.add_n(10i64, 2);
        h.add_n(-5, 2);
        assert_eq!(h.dominant(), Some((-5, 0.5)));
    }

    #[test]
    fn top_k_ordering() {
        let mut h = Histogram::new();
        h.add_n(1u64, 5);
        h.add_n(2, 10);
        h.add_n(3, 1);
        h.add_n(4, 10);
        assert_eq!(h.top_k(3), vec![(2, 10), (4, 10), (1, 5)]);
        assert_eq!(h.top_k(10).len(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let mut a: Histogram<i64> = [1, 1, 2].into_iter().collect();
        let b: Histogram<i64> = [2, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.count_of(2), 2);
        assert_eq!(a.count_of(3), 1);
    }

    #[test]
    fn scale_preserves_support() {
        let mut h = Histogram::new();
        h.add_n(1i64, 1000);
        h.add_n(2, 10);
        h.add_n(3, 1);
        h.scale_counts(0.01);
        assert_eq!(h.count_of(1), 10);
        // Small counts floor at 1 instead of vanishing.
        assert_eq!(h.count_of(2), 1);
        assert_eq!(h.count_of(3), 1);
        assert_eq!(h.total(), 12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_rejects_zero_factor() {
        let mut h: Histogram<i64> = [1].into_iter().collect();
        h.scale_counts(0.0);
    }

    #[test]
    fn sample_respects_weights() {
        let mut h = Histogram::new();
        h.add_n(0u64, 900);
        h.add_n(1, 100);
        let mut rng = Rng::seed_from(7);
        let n = 10_000;
        let ones: u64 = (0..n).map(|_| h.sample(&mut rng).unwrap()).sum();
        let frac = ones as f64 / n as f64;
        assert!(
            (frac - 0.1).abs() < 0.02,
            "sampled frequency {frac} too far from 0.1"
        );
    }

    #[test]
    fn sampler_matches_histogram_distribution() {
        let mut h = Histogram::new();
        for v in 0..10u64 {
            h.add_n(v, v + 1);
        }
        let s = h.sampler();
        assert_eq!(s.distinct(), 10);
        let mut rng = Rng::seed_from(3);
        let mut observed = Histogram::new();
        for _ in 0..55_000 {
            observed.add(s.sample(&mut rng).unwrap());
        }
        for v in 0..10u64 {
            let expect = (v + 1) as f64 / 55.0;
            let got = observed.freq_of(v);
            assert!(
                (got - expect).abs() < 0.01,
                "value {v}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn sampler_single_value() {
        let h: Histogram<u64> = [42].into_iter().collect();
        let s = h.sampler();
        let mut rng = Rng::seed_from(9);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), Some(42));
        }
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut h: Histogram<i64> = [5, 5, 7].into_iter().collect();
        h.extend([7, 9]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count_of(7), 2);
    }

    #[test]
    fn add_slice_kernels_agree_for_all_tail_lengths() {
        let mut rng = Rng::seed_from(0xadd);
        for n in 0..(2 * LANES + 1) {
            let values: Vec<i64> = (0..n).map(|_| (rng.gen_range(7) as i64) - 3).collect();
            let mut scalar = Histogram::new();
            let mut batched = Histogram::new();
            scalar.add_slice(&values, KernelMode::Scalar);
            batched.add_slice(&values, KernelMode::Batched);
            assert_eq!(scalar, batched, "n={n}");
            assert_eq!(scalar.total(), n as u64);
        }
    }

    #[test]
    fn add_slice_matches_sequential_adds() {
        let values = [5i64, -2, 5, 5, 9, -2, 0, 0, 5, 1, 1, 1, 1, 7];
        let mut seq = Histogram::new();
        for &v in &values {
            seq.add(v);
        }
        let mut batched = Histogram::new();
        batched.add_slice(&values, KernelMode::Batched);
        assert_eq!(seq, batched);
    }

    #[test]
    fn serde_round_trip() {
        let h: Histogram<i64> = [-128, -128, 64, 4352].into_iter().collect();
        let json = serde_json::to_string(&h).expect("serialize");
        let back: Histogram<i64> = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(h, back);
    }
}
