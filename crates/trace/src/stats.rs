//! Validation statistics.
//!
//! The paper validates proxies with two metrics (§5): the *percentage error*
//! between original and proxy performance numbers, and *Pearson's
//! correlation coefficient* over a sweep of configurations ("1 = perfect
//! correlation, 0 = no correlation"). This module implements both, plus the
//! usual summary helpers.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; `0.0` for slices shorter than 2.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson's correlation coefficient between two equal-length series.
///
/// Degenerate cases are resolved the way a design-space-ranking user would
/// want: if *both* series are constant the proxy tracks the original
/// perfectly (`1.0`); if only one is constant there is no linear trend to
/// speak of (`0.0`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// use gmap_trace::stats::pearson;
/// let xs = [1.0, 2.0, 3.0];
/// let ys = [2.0, 4.0, 6.0];
/// assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    const EPS: f64 = 1e-12;
    match (vx < EPS, vy < EPS) {
        (true, true) => 1.0,
        (true, false) | (false, true) => 0.0,
        (false, false) => (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0),
    }
}

/// Absolute error between a proxy metric and the original, in the same unit
/// as the inputs. For miss *rates* expressed in percent this is the
/// "percentage error" the paper's Figure 6 reports (percentage points).
pub fn abs_error(original: f64, proxy: f64) -> f64 {
    (original - proxy).abs()
}

/// Relative error `|orig - proxy| / |orig|`, as a fraction. Falls back to
/// absolute error when the original is (near) zero, so a zero-valued
/// original with a zero-valued proxy scores 0 rather than NaN.
pub fn rel_error(original: f64, proxy: f64) -> f64 {
    if original.abs() < 1e-12 {
        abs_error(original, proxy)
    } else {
        abs_error(original, proxy) / original.abs()
    }
}

/// Mean absolute error between two equal-length series.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_abs_error(original: &[f64], proxy: &[f64]) -> f64 {
    assert_eq!(original.len(), proxy.len(), "series must have equal length");
    mean(
        &original
            .iter()
            .zip(proxy)
            .map(|(o, p)| abs_error(*o, *p))
            .collect::<Vec<_>>(),
    )
}

/// Mean relative error between two equal-length series, as a fraction.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_rel_error(original: &[f64], proxy: &[f64]) -> f64 {
    assert_eq!(original.len(), proxy.len(), "series must have equal length");
    mean(
        &original
            .iter()
            .zip(proxy)
            .map(|(o, p)| rel_error(*o, *p))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_no_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).abs() < 0.5);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn error_metrics() {
        assert_eq!(abs_error(10.0, 7.0), 3.0);
        assert!((rel_error(10.0, 7.0) - 0.3).abs() < 1e-12);
        assert_eq!(rel_error(0.0, 0.0), 0.0);
        assert_eq!(rel_error(0.0, 0.5), 0.5);
    }

    #[test]
    fn mean_errors() {
        let orig = [10.0, 20.0];
        let proxy = [9.0, 22.0];
        assert!((mean_abs_error(&orig, &proxy) - 1.5).abs() < 1e-12);
        assert!((mean_rel_error(&orig, &proxy) - 0.1).abs() < 1e-12);
    }
}
