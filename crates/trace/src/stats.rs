//! Validation statistics.
//!
//! The paper validates proxies with two metrics (§5): the *percentage error*
//! between original and proxy performance numbers, and *Pearson's
//! correlation coefficient* over a sweep of configurations ("1 = perfect
//! correlation, 0 = no correlation"). This module implements both, plus the
//! usual summary helpers.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; `0.0` for slices shorter than 2.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson's correlation coefficient between two equal-length series.
///
/// Degenerate cases are resolved the way a design-space-ranking user would
/// want: if *both* series are constant the proxy tracks the original
/// perfectly (`1.0`); if only one is constant there is no linear trend to
/// speak of (`0.0`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// use gmap_trace::stats::pearson;
/// let xs = [1.0, 2.0, 3.0];
/// let ys = [2.0, 4.0, 6.0];
/// assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    const EPS: f64 = 1e-12;
    match (vx < EPS, vy < EPS) {
        (true, true) => 1.0,
        (true, false) | (false, true) => 0.0,
        (false, false) => (cov / (vx.sqrt() * vy.sqrt())).clamp(-1.0, 1.0),
    }
}

/// Absolute error between a proxy metric and the original, in the same unit
/// as the inputs. For miss *rates* expressed in percent this is the
/// "percentage error" the paper's Figure 6 reports (percentage points).
pub fn abs_error(original: f64, proxy: f64) -> f64 {
    (original - proxy).abs()
}

/// Relative error `|orig - proxy| / |orig|`, as a fraction. Falls back to
/// absolute error when the original is (near) zero, so a zero-valued
/// original with a zero-valued proxy scores 0 rather than NaN.
pub fn rel_error(original: f64, proxy: f64) -> f64 {
    if original.abs() < 1e-12 {
        abs_error(original, proxy)
    } else {
        abs_error(original, proxy) / original.abs()
    }
}

/// Mean absolute error between two equal-length series.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_abs_error(original: &[f64], proxy: &[f64]) -> f64 {
    assert_eq!(original.len(), proxy.len(), "series must have equal length");
    mean(
        &original
            .iter()
            .zip(proxy)
            .map(|(o, p)| abs_error(*o, *p))
            .collect::<Vec<_>>(),
    )
}

/// Mean relative error between two equal-length series, as a fraction.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mean_rel_error(original: &[f64], proxy: &[f64]) -> f64 {
    assert_eq!(original.len(), proxy.len(), "series must have equal length");
    mean(
        &original
            .iter()
            .zip(proxy)
            .map(|(o, p)| rel_error(*o, *p))
            .collect::<Vec<_>>(),
    )
}

/// Number of log2 buckets in a [`LatencyHistogram`] — covers the full
/// `u64` nanosecond range (bucket `i` holds values in `[2^i, 2^{i+1})`,
/// bucket 0 additionally holds 0).
const LATENCY_BUCKETS: usize = 64;

/// A log2-bucketed latency histogram with quantile queries.
///
/// Durations are recorded in nanoseconds into 64 power-of-two buckets, so
/// recording is O(1), memory is constant, and the histogram can absorb
/// anything from sub-microsecond cache probes to multi-minute sweeps.
/// Quantiles are answered from the bucket boundaries: the reported value
/// is the *upper edge* of the bucket containing the requested rank, i.e. a
/// conservative (never understated) estimate with ≤ 2× resolution error —
/// the standard trade-off of log-bucketed histograms (HdrHistogram, etc.).
///
/// Used by the `gmap serve` `/metrics` endpoint and the `perf` tracker's
/// phase timings.
///
/// ```
/// use gmap_trace::stats::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.p50() >= Duration::from_millis(2));
/// assert!(h.p99() >= Duration::from_millis(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Observation count per power-of-two nanosecond bucket.
    buckets: Vec<u64>,
    /// Total observations.
    count: u64,
    /// Sum of all recorded nanoseconds (for the mean).
    sum_ns: u64,
    /// Largest recorded value, exact.
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; LATENCY_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one raw nanosecond value.
    pub fn record_ns(&mut self, ns: u64) {
        let bucket = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros()) as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations; zero if empty.
    pub fn mean(&self) -> Duration {
        Duration::from_nanos(self.sum_ns.checked_div(self.count).unwrap_or(0))
    }

    /// Largest observation, exact; zero if empty.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper edge of the bucket
    /// holding that rank, clamped to the exact maximum. Zero if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return Duration::ZERO;
        }
        // Rank of the requested quantile, 1-based, ceil so q = 1.0 is the
        // last observation and q = 0.0 the first.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Duration::from_nanos(upper.min(self.max_ns));
            }
        }
        Duration::from_nanos(self.max_ns)
    }

    /// Median (upper bucket edge).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th percentile (upper bucket edge).
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th percentile (upper bucket edge).
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Iterates over the non-empty buckets as `(upper_edge_ns, count)`
    /// pairs in ascending order — the shape a metrics exporter wants.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                (upper, c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_no_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).abs() < 0.5);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 2.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn error_metrics() {
        assert_eq!(abs_error(10.0, 7.0), 3.0);
        assert!((rel_error(10.0, 7.0) - 0.3).abs() < 1e-12);
        assert_eq!(rel_error(0.0, 0.0), 0.0);
        assert_eq!(rel_error(0.0, 0.5), 0.5);
    }

    #[test]
    fn mean_errors() {
        let orig = [10.0, 20.0];
        let proxy = [9.0, 22.0];
        assert!((mean_abs_error(&orig, &proxy) - 1.5).abs() < 1e-12);
        assert!((mean_rel_error(&orig, &proxy) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn latency_histogram_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn latency_histogram_single_value() {
        let mut h = LatencyHistogram::new();
        h.record_ns(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Duration::from_nanos(1000));
        assert_eq!(h.mean(), Duration::from_nanos(1000));
        // The quantile is clamped to the exact max for the top bucket.
        assert_eq!(h.p50(), Duration::from_nanos(1000));
        assert_eq!(h.p99(), Duration::from_nanos(1000));
    }

    #[test]
    fn latency_quantiles_are_ordered_and_conservative() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record_ns(i * 1000); // 1µs .. 1ms
        }
        assert_eq!(h.count(), 1000);
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max());
        // Conservative: the reported quantile is >= the true one.
        assert!(p50 >= Duration::from_nanos(500_000));
        assert!(p99 >= Duration::from_nanos(990_000));
        // And within the 2x resolution bound of a log2 histogram.
        assert!(p50 <= Duration::from_nanos(2 * 500_000));
    }

    #[test]
    fn latency_zero_and_extreme_values() {
        let mut h = LatencyHistogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Duration::from_nanos(u64::MAX));
        assert_eq!(h.quantile(0.0), Duration::from_nanos(1));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn latency_merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        b.record(Duration::from_micros(2000));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Duration::from_micros(2000));
        assert!(a.p99() >= Duration::from_micros(1000));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn latency_quantile_range_checked() {
        LatencyHistogram::new().quantile(1.5);
    }
}
