//! Property-based tests for the trace substrate's core invariants.

use gmap_trace::histogram::Histogram;
use gmap_trace::io;
use gmap_trace::record::{AccessKind, ByteAddr, MemAccess, Pc, ThreadId};
use gmap_trace::reuse::{ReuseComputer, ReuseHistogram};
use gmap_trace::rng::Rng;
use gmap_trace::stats;
use proptest::prelude::*;

/// Brute-force reuse-distance oracle.
fn naive_reuse(lines: &[u64]) -> Vec<Option<u64>> {
    let mut out = Vec::with_capacity(lines.len());
    for (i, &l) in lines.iter().enumerate() {
        let prev = lines[..i].iter().rposition(|&x| x == l);
        out.push(prev.map(|p| {
            let set: std::collections::HashSet<u64> = lines[p + 1..i].iter().copied().collect();
            set.len() as u64
        }));
    }
    out
}

proptest! {
    /// The Fenwick-tree reuse computer agrees with the quadratic oracle on
    /// arbitrary streams (including ones that force several tree resizes).
    #[test]
    fn reuse_matches_oracle(lines in proptest::collection::vec(0u64..32, 0..600)) {
        let mut rc = ReuseComputer::new();
        let fast: Vec<Option<u64>> = lines.iter().map(|&l| rc.push(l)).collect();
        prop_assert_eq!(fast, naive_reuse(&lines));
    }

    /// A reuse distance can never reach the number of distinct lines seen
    /// so far, and the number of cold misses equals the distinct count.
    #[test]
    fn reuse_distance_bounded_by_distinct(lines in proptest::collection::vec(0u64..16, 1..300)) {
        let mut rc = ReuseComputer::new();
        let mut cold = 0usize;
        for &l in &lines {
            match rc.push(l) {
                None => cold += 1,
                Some(d) => prop_assert!((d as usize) < rc.distinct_lines()),
            }
        }
        prop_assert_eq!(cold, rc.distinct_lines());
    }

    /// Histogram totals and frequencies are consistent.
    #[test]
    fn histogram_total_is_sum(values in proptest::collection::vec(-100i64..100, 0..200)) {
        let h: Histogram<i64> = values.iter().copied().collect();
        prop_assert_eq!(h.total(), values.len() as u64);
        let freq_sum: f64 = h.support().map(|v| h.freq_of(v)).sum();
        if !values.is_empty() {
            prop_assert!((freq_sum - 1.0).abs() < 1e-9);
        }
    }

    /// Sampling only ever returns values in the support.
    #[test]
    fn sampling_stays_in_support(
        values in proptest::collection::vec(-50i64..50, 1..50),
        seed in any::<u64>(),
    ) {
        let h: Histogram<i64> = values.iter().copied().collect();
        let sampler = h.sampler();
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            let v = sampler.sample(&mut rng).expect("non-empty");
            prop_assert!(h.contains(v));
            let w = h.sample(&mut rng).expect("non-empty");
            prop_assert!(h.contains(w));
        }
    }

    /// Scaling preserves the support exactly.
    #[test]
    fn scaling_preserves_support(
        values in proptest::collection::vec(0i64..20, 1..100),
        factor in 0.01f64..4.0,
    ) {
        let mut h: Histogram<i64> = values.iter().copied().collect();
        let before: Vec<i64> = h.support().collect();
        h.scale_counts(factor);
        let after: Vec<i64> = h.support().collect();
        prop_assert_eq!(before, after);
    }

    /// Reuse histograms accumulate consistently under merge.
    #[test]
    fn reuse_histogram_merge_totals(
        a in proptest::collection::vec(0u64..8, 0..100),
        b in proptest::collection::vec(0u64..8, 0..100),
    ) {
        let ha = ReuseHistogram::from_lines(a.iter().copied());
        let hb = ReuseHistogram::from_lines(b.iter().copied());
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.total(), ha.total() + hb.total());
        prop_assert_eq!(merged.cold(), ha.cold() + hb.cold());
    }

    /// Pearson correlation is symmetric and bounded.
    #[test]
    fn pearson_symmetric_and_bounded(
        pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 2..60),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r1 = stats::pearson(&xs, &ys);
        let r2 = stats::pearson(&ys, &xs);
        prop_assert!((-1.0..=1.0).contains(&r1));
        prop_assert!((r1 - r2).abs() < 1e-9);
    }

    /// Correlation of a series with a positive affine image of itself is 1.
    #[test]
    fn pearson_affine_invariance(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..60),
        scale in 0.1f64..10.0,
        shift in -100.0f64..100.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let r = stats::pearson(&xs, &ys);
        // Constant xs degenerate to the both-constant convention (1.0).
        prop_assert!(r > 0.999 || stats::stddev(&xs) < 1e-9);
    }

    /// Text and binary trace formats round-trip arbitrary entries.
    #[test]
    fn trace_io_round_trips(
        raw in proptest::collection::vec((any::<u32>(), any::<u64>(), any::<u64>(), any::<bool>()), 0..100),
    ) {
        let entries: Vec<io::TraceEntry> = raw
            .iter()
            .map(|&(tid, pc, addr, w)| {
                let kind = if w { AccessKind::Write } else { AccessKind::Read };
                (ThreadId(tid), MemAccess { pc: Pc(pc), addr: ByteAddr(addr), kind })
            })
            .collect();
        let mut text = Vec::new();
        io::write_text(&mut text, &entries).expect("write text");
        prop_assert_eq!(&io::read_text(&text[..]).expect("read text"), &entries);
        let mut bin = Vec::new();
        io::write_binary(&mut bin, &entries).expect("write binary");
        prop_assert_eq!(&io::read_binary(&bin[..]).expect("read binary"), &entries);
    }

    /// Uniformity sanity for the PRNG: no value outside the bound, and both
    /// halves of the range are hit for non-trivial bounds.
    #[test]
    fn rng_range_hits_both_halves(seed in any::<u64>(), bound in 2u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let mut low = false;
        let mut high = false;
        for _ in 0..2000 {
            let v = rng.gen_range(bound);
            prop_assert!(v < bound);
            if v < bound / 2 { low = true; } else { high = true; }
        }
        prop_assert!(low && high);
    }
}
