//! Property-based tests of DRAM-model invariants.

use gmap_dram::{
    AddressMapping, DramConfig, DramGeometry, DramRequest, DramSystem, DramTiming, MemSched,
};
use gmap_trace::record::{AccessKind, ByteAddr};
use proptest::prelude::*;

fn requests(
    max_lines: u64,
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<DramRequest>> {
    proptest::collection::vec((0u64..max_lines, 0u64..50, any::<bool>()), len).prop_map(|v| {
        let mut cycle = 0;
        v.into_iter()
            .map(|(line, gap, w)| {
                cycle += gap;
                DramRequest {
                    cycle,
                    addr: ByteAddr(line * 128),
                    kind: if w {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                }
            })
            .collect()
    })
}

fn any_mapping() -> impl Strategy<Value = AddressMapping> {
    prop_oneof![
        Just(AddressMapping::RoBaRaCoCh),
        Just(AddressMapping::ChRaBaRoCo)
    ]
}

fn any_sched() -> impl Strategy<Value = MemSched> {
    prop_oneof![Just(MemSched::FrFcfs), Just(MemSched::Fcfs)]
}

proptest! {
    /// Every request is served exactly once; metric identities hold; the
    /// minimum possible latency is a row hit.
    #[test]
    fn conservation_and_bounds(
        reqs in requests(1 << 14, 1..300),
        mapping in any_mapping(),
        sched in any_sched(),
    ) {
        let cfg = DramConfig {
            geometry: DramGeometry::table2_baseline(),
            mapping,
            timing: DramTiming::gddr3_table2(),
            scheduler: sched,
        };
        let m = DramSystem::new(cfg).run(&reqs);
        prop_assert_eq!(m.requests as usize, reqs.len());
        prop_assert_eq!(m.reads + m.writes, m.requests);
        prop_assert!(m.row_hits <= m.requests);
        prop_assert!((0.0..=1.0).contains(&m.rbl));
        let min_lat = cfg.timing.row_hit_latency() as f64;
        if m.reads > 0 {
            prop_assert!(m.avg_read_latency >= min_lat);
        }
        if m.writes > 0 {
            prop_assert!(m.avg_write_latency >= min_lat);
        }
        prop_assert!(m.avg_queue_len >= 0.0);
        // Finish time can never precede the last arrival.
        let last_arrival = reqs.iter().map(|r| r.cycle).max().unwrap_or(0);
        prop_assert!(m.finish_cycle >= last_arrival);
    }

    /// FR-FCFS never yields *fewer* row hits than FCFS on the same stream
    /// (it only ever reorders toward open rows).
    #[test]
    fn frfcfs_dominates_fcfs_on_hits(reqs in requests(1 << 10, 1..200)) {
        let mut fr = DramConfig::table2_baseline();
        fr.scheduler = MemSched::FrFcfs;
        let mut fc = DramConfig::table2_baseline();
        fc.scheduler = MemSched::Fcfs;
        let m_fr = DramSystem::new(fr).run(&reqs);
        let m_fc = DramSystem::new(fc).run(&reqs);
        prop_assert!(
            m_fr.row_hits + 2 >= m_fc.row_hits,
            "FR-FCFS hits {} much lower than FCFS {}",
            m_fr.row_hits,
            m_fc.row_hits
        );
    }

    /// Determinism: identical inputs, identical metrics.
    #[test]
    fn runs_are_deterministic(reqs in requests(1 << 12, 1..150), mapping in any_mapping()) {
        let mut cfg = DramConfig::table2_baseline();
        cfg.mapping = mapping;
        let a = DramSystem::new(cfg).run(&reqs);
        let b = DramSystem::new(cfg).run(&reqs);
        prop_assert_eq!(a, b);
    }

    /// Address decomposition round-trips within field bounds for random
    /// geometries.
    #[test]
    fn decomposition_in_bounds(
        addr in any::<u64>(),
        ch_bits in 0u32..4,
        bank_bits in 0u32..4,
        mapping in any_mapping(),
    ) {
        let geom = DramGeometry {
            channels: 1 << ch_bits,
            ranks: 2,
            banks: 1 << bank_bits,
            bank_groups: 1,
            columns: 64,
            bus_width_bytes: 8,
        };
        let loc = gmap_dram::mapping::decompose(addr, &geom, mapping);
        prop_assert!(loc.channel < geom.channels);
        prop_assert!(loc.rank < geom.ranks);
        prop_assert!(loc.bank < geom.banks);
        prop_assert!(loc.column < geom.columns);
    }
}
