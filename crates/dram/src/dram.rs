//! Per-channel memory controllers with row-buffer state and FR-FCFS
//! scheduling.
//!
//! [`DramSystem::run`] consumes a timestamped request stream (as recorded
//! by the cache hierarchy) and produces the three metrics of the paper's
//! Figure 7: row-buffer locality, time-averaged controller queue length,
//! and average read/write latency.

use crate::mapping::{AddressMapping, DramGeometry, DramLoc, MappingPlan};
use crate::timing::DramTiming;
use gmap_trace::record::{AccessKind, ByteAddr};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A memory request presented to the DRAM system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramRequest {
    /// Arrival cycle at the controller.
    pub cycle: u64,
    /// Byte address (line-aligned).
    pub addr: ByteAddr,
    /// Read or write.
    pub kind: AccessKind,
}

/// Request scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MemSched {
    /// First-ready, first-come-first-served: row-buffer hits first, then
    /// oldest (Table 2 baseline).
    #[default]
    FrFcfs,
    /// Strict arrival order.
    Fcfs,
}

/// Full DRAM system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Organization.
    pub geometry: DramGeometry,
    /// Address decomposition scheme.
    pub mapping: AddressMapping,
    /// Device timings.
    pub timing: DramTiming,
    /// Scheduling discipline.
    pub scheduler: MemSched,
}

impl DramConfig {
    /// The Table 2 baseline: GDDR3 timings, 8 channels × 1 rank × 8 banks,
    /// FR-FCFS, RoBaRaCoCh mapping.
    pub fn table2_baseline() -> Self {
        DramConfig {
            geometry: DramGeometry::table2_baseline(),
            mapping: AddressMapping::RoBaRaCoCh,
            timing: DramTiming::gddr3_table2(),
            scheduler: MemSched::FrFcfs,
        }
    }

    /// A GDDR5 starting point for the Figure 7 sweep (8 channels, 32-bit
    /// bus per channel, 4 bank groups).
    pub fn gddr5_baseline() -> Self {
        DramConfig {
            geometry: DramGeometry {
                channels: 8,
                ranks: 1,
                banks: 16,
                bank_groups: 4,
                columns: 32,
                bus_width_bytes: 4,
            },
            mapping: AddressMapping::RoBaRaCoCh,
            timing: DramTiming::gddr5(4),
            scheduler: MemSched::FrFcfs,
        }
    }

    /// An HBM2-class stack: many narrow channels, short bursts.
    pub fn hbm2_baseline() -> Self {
        DramConfig {
            geometry: DramGeometry {
                channels: 16,
                ranks: 1,
                banks: 16,
                bank_groups: 4,
                columns: 32,
                bus_width_bytes: 16,
            },
            mapping: AddressMapping::RoBaRaCoCh,
            timing: DramTiming::hbm2(),
            scheduler: MemSched::FrFcfs,
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::table2_baseline()
    }
}

/// Aggregate metrics of one run (the Figure 7 triplet plus supporting
/// counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DramMetrics {
    /// Requests served.
    pub requests: u64,
    /// Read requests.
    pub reads: u64,
    /// Write requests.
    pub writes: u64,
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Row-buffer locality: `row_hits / requests` in `[0, 1]`.
    pub rbl: f64,
    /// Time-averaged controller queue length (averaged over channels,
    /// weighted by busy time).
    pub avg_queue_len: f64,
    /// Mean read latency (arrival → data) in cycles.
    pub avg_read_latency: f64,
    /// Mean write latency in cycles.
    pub avg_write_latency: f64,
    /// Cycle the last request finished.
    pub finish_cycle: u64,
}

impl DramMetrics {
    /// Mean latency over reads and writes combined.
    pub fn avg_latency(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.avg_read_latency * self.reads as f64 + self.avg_write_latency * self.writes as f64)
            / self.requests as f64
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest cycle the bank can accept a new column/activate command.
    ready_at: u64,
    /// When the open row was activated (for tRAS).
    activated_at: u64,
}

#[derive(Debug, Clone)]
struct Pending {
    arrival: u64,
    row: u64,
    flat_bank: usize,
    bank_group: u32,
    is_write: bool,
    seq: u64,
}

/// The DRAM system: a set of independent channel controllers.
#[derive(Debug, Clone)]
pub struct DramSystem {
    cfg: DramConfig,
}

impl DramSystem {
    /// Creates a system.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not power-of-two sized.
    pub fn new(cfg: DramConfig) -> Self {
        cfg.geometry.assert_valid();
        DramSystem { cfg }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Simulates a request stream to completion and returns the metrics.
    /// Requests must be in non-decreasing arrival order (the hierarchy
    /// records them that way).
    pub fn run(&mut self, requests: &[DramRequest]) -> DramMetrics {
        let geom = self.cfg.geometry;
        let mut per_channel: Vec<Vec<Pending>> = vec![Vec::new(); geom.channels as usize];
        // Front-end address decomposition runs as a batch kernel over the
        // whole request stream; queue insertion stays scalar (it is a
        // scatter keyed on the decomposed channel).
        let plan = MappingPlan::new(&geom, self.cfg.mapping);
        let addrs: Vec<u64> = requests.iter().map(|r| r.addr.0).collect();
        let mut locs: Vec<DramLoc> = Vec::new();
        plan.decompose_batch(&addrs, gmap_trace::default_mode(), &mut locs);
        for (seq, (r, loc)) in requests.iter().zip(&locs).enumerate() {
            per_channel[loc.channel as usize].push(Pending {
                arrival: r.cycle,
                row: loc.row,
                flat_bank: loc.flat_bank(&geom),
                bank_group: geom.group_of_bank(loc.bank),
                is_write: r.kind.is_write(),
                seq: seq as u64,
            });
        }
        let mut total = DramMetrics::default();
        let mut read_lat_sum = 0u64;
        let mut write_lat_sum = 0u64;
        let mut queue_area = 0f64;
        let mut busy_time = 0u64;
        for reqs in per_channel {
            let ch = self.run_channel(&reqs);
            total.requests += ch.requests;
            total.reads += ch.reads;
            total.writes += ch.writes;
            total.row_hits += ch.row_hits;
            read_lat_sum += ch.read_lat_sum;
            write_lat_sum += ch.write_lat_sum;
            queue_area += ch.queue_area;
            busy_time += ch.busy_time;
            total.finish_cycle = total.finish_cycle.max(ch.finish_cycle);
        }
        total.rbl = if total.requests == 0 {
            0.0
        } else {
            total.row_hits as f64 / total.requests as f64
        };
        total.avg_read_latency = if total.reads == 0 {
            0.0
        } else {
            read_lat_sum as f64 / total.reads as f64
        };
        total.avg_write_latency = if total.writes == 0 {
            0.0
        } else {
            write_lat_sum as f64 / total.writes as f64
        };
        total.avg_queue_len = if busy_time == 0 {
            0.0
        } else {
            queue_area / busy_time as f64
        };
        total
    }

    fn run_channel(&self, reqs: &[Pending]) -> ChannelOutcome {
        let timing = &self.cfg.timing;
        let banks_per_ch = (self.cfg.geometry.ranks * self.cfg.geometry.banks) as usize;
        let mut banks = vec![BankState::default(); banks_per_ch];
        let mut out = ChannelOutcome::default();
        if reqs.is_empty() {
            return out;
        }
        let mut queue: VecDeque<Pending> = VecDeque::new();
        let mut next = 0usize;
        let mut now = reqs[0].arrival;
        let mut bus_free_at = now;
        let start_time = now;
        // Bank-group column gating: last column command's group and time.
        let mut last_col: Option<(u32, u64)> = None;
        while next < reqs.len() || !queue.is_empty() {
            // Admit arrivals, up to the controller buffer capacity —
            // senders stall when the queue is full.
            const QUEUE_CAPACITY: usize = 4096;
            while next < reqs.len() && reqs[next].arrival <= now && queue.len() < QUEUE_CAPACITY {
                queue.push_back(reqs[next].clone());
                next += 1;
            }
            if queue.is_empty() {
                let t = reqs[next].arrival;
                out.queue_area += 0.0; // empty queue contributes nothing
                now = t;
                continue;
            }
            // Pick a request. FR-FCFS considers only the oldest
            // SCAN_WINDOW entries — real controllers arbitrate over a
            // bounded CAM, and an unbounded scan would make saturated
            // channels quadratic in trace length.
            const SCAN_WINDOW: usize = 64;
            let pick = match self.cfg.scheduler {
                MemSched::Fcfs => 0,
                MemSched::FrFcfs => {
                    let window = queue.len().min(SCAN_WINDOW);
                    queue
                        .iter()
                        .take(window)
                        .enumerate()
                        .filter(|(_, p)| banks[p.flat_bank].open_row == Some(p.row))
                        .min_by_key(|(_, p)| p.seq)
                        .map(|(i, _)| i)
                        .unwrap_or_else(|| {
                            queue
                                .iter()
                                .take(window)
                                .enumerate()
                                .min_by_key(|(_, p)| p.seq)
                                .map(|(i, _)| i)
                                .expect("queue is non-empty")
                        })
                }
            };
            let p = queue.remove(pick).expect("index in range");
            let bank = &mut banks[p.flat_bank];
            // Command issue respects the bank and the column-command gap
            // (long within a bank group); the data bus is reserved
            // separately so commands pipeline under transfers.
            let mut start = now.max(bank.ready_at);
            if let Some((group, at)) = last_col {
                let gap = if group == p.bank_group {
                    timing.t_ccd_l
                } else {
                    timing.t_ccd
                };
                start = start.max(at + gap);
            }
            let (mut data_at, hit) = match bank.open_row {
                Some(row) if row == p.row => (start + timing.t_cas, true),
                Some(_) => {
                    // Conflict: precharge (respecting tRAS) then activate.
                    let pre_at = start.max(bank.activated_at + timing.t_ras);
                    let act_at = pre_at + timing.t_rp;
                    bank.activated_at = act_at;
                    (act_at + timing.t_rcd + timing.t_cas, false)
                }
                None => {
                    bank.activated_at = start;
                    (start + timing.t_rcd + timing.t_cas, false)
                }
            };
            // One transfer at a time on the data bus.
            if data_at < bus_free_at {
                let delay = bus_free_at - data_at;
                start += delay;
                data_at += delay;
            }
            let finish = data_at + timing.burst;
            last_col = Some((p.bank_group, data_at.saturating_sub(timing.t_cas)));
            bank.open_row = Some(p.row);
            bank.ready_at = data_at + timing.t_ccd + if p.is_write { timing.t_wr } else { 0 };
            // Queue-length accounting: the queue (including the request in
            // service) occupies the interval [now, finish).
            let dt = finish.saturating_sub(now);
            out.queue_area += (queue.len() + 1) as f64 * dt as f64;
            bus_free_at = finish;
            // Advance time just past the command slot: the next command
            // can issue while this burst is still on the data bus.
            now = now.max(start + 1);
            let latency = finish - p.arrival;
            out.requests += 1;
            if hit {
                out.row_hits += 1;
            }
            if p.is_write {
                out.writes += 1;
                out.write_lat_sum += latency;
            } else {
                out.reads += 1;
                out.read_lat_sum += latency;
            }
            out.finish_cycle = out.finish_cycle.max(finish);
        }
        out.busy_time = out.finish_cycle.saturating_sub(start_time);
        out
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ChannelOutcome {
    requests: u64,
    reads: u64,
    writes: u64,
    row_hits: u64,
    read_lat_sum: u64,
    write_lat_sum: u64,
    queue_area: f64,
    busy_time: u64,
    finish_cycle: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(addrs: &[u64], gap: u64) -> Vec<DramRequest> {
        addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| DramRequest {
                cycle: i as u64 * gap,
                addr: ByteAddr(a),
                kind: AccessKind::Read,
            })
            .collect()
    }

    /// Single-channel, single-bank config for deterministic reasoning.
    fn one_bank() -> DramConfig {
        DramConfig {
            geometry: DramGeometry {
                channels: 1,
                ranks: 1,
                banks: 1,
                bank_groups: 1,
                columns: 32,
                bus_width_bytes: 8,
            },
            mapping: AddressMapping::ChRaBaRoCo,
            timing: DramTiming::gddr3_table2(),
            scheduler: MemSched::FrFcfs,
        }
    }

    #[test]
    fn empty_stream_is_all_zero() {
        let m = DramSystem::new(DramConfig::table2_baseline()).run(&[]);
        assert_eq!(m, DramMetrics::default());
    }

    #[test]
    fn sequential_same_row_stream_has_high_rbl() {
        // 32 columns x 128 B = one 4 KiB row under ChRaBaRoCo.
        let addrs: Vec<u64> = (0..32).map(|i| i * 128).collect();
        let m = DramSystem::new(one_bank()).run(&reads(&addrs, 50));
        assert_eq!(m.requests, 32);
        assert_eq!(m.row_hits, 31); // all but the first
        assert!(m.rbl > 0.9);
    }

    #[test]
    fn row_conflict_stream_has_zero_rbl() {
        // Alternate between two rows of the same bank.
        let row_bytes = 32 * 128u64;
        let addrs: Vec<u64> = (0..32).map(|i| (i % 2) * row_bytes).collect();
        let mut cfg = one_bank();
        cfg.scheduler = MemSched::Fcfs; // prevent FR-FCFS from batching rows
        let m = DramSystem::new(cfg).run(&reads(&addrs, 100));
        assert_eq!(m.row_hits, 0);
        assert!(m.avg_read_latency > DramTiming::gddr3_table2().row_hit_latency() as f64);
    }

    #[test]
    fn frfcfs_reorders_for_row_hits() {
        // Burst arrival of interleaved rows: FR-FCFS batches by row and
        // gets more hits than FCFS.
        let row_bytes = 32 * 128u64;
        let addrs: Vec<u64> = (0..32)
            .map(|i| (i % 2) * row_bytes + (i / 2) * 128)
            .collect();
        let all_at_once: Vec<DramRequest> = addrs
            .iter()
            .map(|&a| DramRequest {
                cycle: 0,
                addr: ByteAddr(a),
                kind: AccessKind::Read,
            })
            .collect();
        let mut fr = one_bank();
        fr.scheduler = MemSched::FrFcfs;
        let mut fc = one_bank();
        fc.scheduler = MemSched::Fcfs;
        let m_fr = DramSystem::new(fr).run(&all_at_once);
        let m_fc = DramSystem::new(fc).run(&all_at_once);
        assert!(
            m_fr.row_hits > m_fc.row_hits,
            "FR-FCFS hits {} <= FCFS hits {}",
            m_fr.row_hits,
            m_fc.row_hits
        );
        assert!(m_fr.rbl > 0.8);
    }

    #[test]
    fn burst_arrivals_grow_the_queue() {
        let addrs: Vec<u64> = (0..64).map(|i| i * 128).collect();
        let burst: Vec<DramRequest> = addrs
            .iter()
            .map(|&a| DramRequest {
                cycle: 0,
                addr: ByteAddr(a),
                kind: AccessKind::Read,
            })
            .collect();
        let spaced = reads(&addrs, 200);
        let m_burst = DramSystem::new(one_bank()).run(&burst);
        let m_spaced = DramSystem::new(one_bank()).run(&spaced);
        assert!(
            m_burst.avg_queue_len > m_spaced.avg_queue_len,
            "burst queue {} <= spaced queue {}",
            m_burst.avg_queue_len,
            m_spaced.avg_queue_len
        );
        assert!(m_burst.avg_read_latency > m_spaced.avg_read_latency);
    }

    #[test]
    fn more_channels_spread_load() {
        let addrs: Vec<u64> = (0..256).map(|i| i * 128).collect();
        let burst: Vec<DramRequest> = addrs
            .iter()
            .map(|&a| DramRequest {
                cycle: 0,
                addr: ByteAddr(a),
                kind: AccessKind::Read,
            })
            .collect();
        let mut narrow = DramConfig::table2_baseline();
        narrow.geometry.channels = 1;
        let mut wide = DramConfig::table2_baseline();
        wide.geometry.channels = 8;
        let m_narrow = DramSystem::new(narrow).run(&burst);
        let m_wide = DramSystem::new(wide).run(&burst);
        assert!(m_wide.finish_cycle < m_narrow.finish_cycle);
        assert!(m_wide.avg_read_latency < m_narrow.avg_read_latency);
    }

    #[test]
    fn writes_are_tracked_separately() {
        let reqs = vec![
            DramRequest {
                cycle: 0,
                addr: ByteAddr(0),
                kind: AccessKind::Read,
            },
            DramRequest {
                cycle: 10,
                addr: ByteAddr(128),
                kind: AccessKind::Write,
            },
            DramRequest {
                cycle: 20,
                addr: ByteAddr(256),
                kind: AccessKind::Write,
            },
        ];
        let m = DramSystem::new(one_bank()).run(&reqs);
        assert_eq!((m.reads, m.writes), (1, 2));
        assert!(m.avg_write_latency > 0.0);
        assert!(m.avg_latency() > 0.0);
    }

    #[test]
    fn mapping_changes_rbl() {
        // Strided stream: consecutive requests 128 B apart. Under
        // ChRaBaRoCo they share a row (high RBL); under RoBaRaCoCh they
        // alternate channels (still same row per channel, so also decent) —
        // use a stride of one channel-round to separate the schemes.
        let addrs: Vec<u64> = (0..128).map(|i| i * 128).collect();
        let mut co = DramConfig::table2_baseline();
        co.mapping = AddressMapping::ChRaBaRoCo;
        let mut ch = DramConfig::table2_baseline();
        ch.mapping = AddressMapping::RoBaRaCoCh;
        let m_co = DramSystem::new(co).run(&reads(&addrs, 8));
        let m_ch = DramSystem::new(ch).run(&reads(&addrs, 8));
        // Both decompose validly and RBL is a proper fraction.
        for m in [m_co, m_ch] {
            assert!(m.rbl >= 0.0 && m.rbl <= 1.0);
            assert_eq!(m.requests, 128);
        }
        assert_ne!(m_co.rbl, m_ch.rbl, "mappings should differ on this stream");
    }

    #[test]
    fn same_bank_group_column_gating_slows_bursts() {
        // Two banks in the same group vs two banks in different groups:
        // alternating row-hit streams finish later under the long CCD.
        let mk = |bank_groups: u32| {
            let mut cfg = DramConfig::gddr5_baseline();
            cfg.geometry.channels = 1;
            cfg.geometry.banks = 4;
            cfg.geometry.bank_groups = bank_groups;
            cfg.timing.t_ccd = 2;
            cfg.timing.t_ccd_l = 8;
            // Keep the data bus out of the way so the CCD gap is the
            // binding constraint, and preserve the bank alternation (FR-FCFS
            // would batch each bank's row hits together).
            cfg.timing.burst = 1;
            cfg.scheduler = MemSched::Fcfs;
            cfg
        };
        // Interleave two banks: with ChRaBaRoCo, banks sit above the row
        // bits; easier to alternate columns within one row per bank.
        let row_bytes = 32 * 128u64;
        let bank_stride = row_bytes << 20; // one bank apart under ChRaBaRoCo
        let reqs: Vec<DramRequest> = (0..64u64)
            .map(|i| DramRequest {
                cycle: 0,
                addr: ByteAddr((i % 2) * bank_stride + (i / 2) * 128),
                kind: AccessKind::Read,
            })
            .collect();
        let mut grouped = mk(1); // banks 0 and 1 share the single group
        grouped.mapping = AddressMapping::ChRaBaRoCo;
        let mut split = mk(2); // banks 0 and 1 land in different groups
        split.mapping = AddressMapping::ChRaBaRoCo;
        let slow = DramSystem::new(grouped).run(&reqs);
        let fast = DramSystem::new(split).run(&reqs);
        assert!(
            slow.finish_cycle > fast.finish_cycle,
            "same-group gating should cost cycles: {} vs {}",
            slow.finish_cycle,
            fast.finish_cycle
        );
    }

    #[test]
    fn hbm_baseline_runs() {
        let addrs: Vec<u64> = (0..128).map(|i| i * 128).collect();
        let m = DramSystem::new(DramConfig::hbm2_baseline()).run(&reads(&addrs, 4));
        assert_eq!(m.requests, 128);
        assert!(m.avg_read_latency > 0.0);
    }

    #[test]
    fn determinism() {
        let addrs: Vec<u64> = (0..200).map(|i| (i * 37) % 64 * 128).collect();
        let reqs = reads(&addrs, 13);
        let a = DramSystem::new(DramConfig::table2_baseline()).run(&reqs);
        let b = DramSystem::new(DramConfig::table2_baseline()).run(&reqs);
        assert_eq!(a, b);
    }
}
