//! DRAM timing parameter sets.
//!
//! All values are in memory-controller cycles. Only the parameters that
//! shape the experiments' metrics are modeled: row activate/precharge
//! latencies (which separate row hits from row misses and drive RBL
//! sensitivity), column access latency, burst occupancy of the data bus
//! (which creates queuing), and write recovery.

use serde::{Deserialize, Serialize};

/// A DRAM device timing set, in controller cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramTiming {
    /// Clock, for reporting only (latencies stay in cycles).
    pub freq_mhz: u32,
    /// Row-to-column delay (activate → column command).
    pub t_rcd: u64,
    /// Column access strobe latency (column command → data).
    pub t_cas: u64,
    /// Precharge latency.
    pub t_rp: u64,
    /// Minimum row-active time (activate → precharge).
    pub t_ras: u64,
    /// Column-to-column gap within an open row (short: different bank
    /// group, or devices without bank groups).
    pub t_ccd: u64,
    /// Column-to-column gap for back-to-back accesses to the *same* bank
    /// group (GDDR5X/HBM-class devices; equal to `t_ccd` when the device
    /// has no bank groups).
    pub t_ccd_l: u64,
    /// Write recovery (end of write burst → precharge).
    pub t_wr: u64,
    /// Data-bus occupancy of one request's burst.
    pub burst: u64,
}

impl DramTiming {
    /// The Table 2 baseline: GDDR3 at 924 MHz,
    /// `tRCD-tCAS-tRP-tRAS = 11-11-11-28`.
    pub fn gddr3_table2() -> Self {
        DramTiming {
            freq_mhz: 924,
            t_rcd: 11,
            t_cas: 11,
            t_rp: 11,
            t_ras: 28,
            t_ccd: 2,
            t_ccd_l: 2,
            t_wr: 12,
            burst: 4,
        }
    }

    /// GDDR5-class timings for the Figure 7 sweep. A wider bus moves the
    /// same 128-byte request in fewer beats, shortening the burst.
    ///
    /// # Panics
    ///
    /// Panics if `bus_width_bytes` is zero.
    pub fn gddr5(bus_width_bytes: u32) -> Self {
        assert!(bus_width_bytes > 0, "bus width must be positive");
        // 128-byte request; double data rate moves 2 x width per cycle.
        let burst = (128 / (2 * bus_width_bytes as u64)).max(1);
        DramTiming {
            freq_mhz: 1250,
            t_rcd: 12,
            t_cas: 12,
            t_rp: 12,
            t_ras: 32,
            t_ccd: 2,
            t_ccd_l: 3,
            t_wr: 14,
            burst,
        }
    }

    /// GDDR5X-class timings: quad-data-rate moves the burst in half the
    /// cycles, but the same-bank-group column gap widens.
    ///
    /// # Panics
    ///
    /// Panics if `bus_width_bytes` is zero.
    pub fn gddr5x(bus_width_bytes: u32) -> Self {
        assert!(bus_width_bytes > 0, "bus width must be positive");
        let burst = (128 / (4 * bus_width_bytes as u64)).max(1);
        DramTiming {
            freq_mhz: 1375,
            t_rcd: 14,
            t_cas: 14,
            t_rp: 14,
            t_ras: 34,
            t_ccd: 2,
            t_ccd_l: 4,
            t_wr: 16,
            burst,
        }
    }

    /// HBM2-class timings: modest clock, very wide bus (the whole 128-byte
    /// request moves in a couple of beats), pseudo-channel style short
    /// bursts.
    pub fn hbm2() -> Self {
        DramTiming {
            freq_mhz: 1000,
            t_rcd: 14,
            t_cas: 14,
            t_rp: 14,
            t_ras: 33,
            t_ccd: 2,
            t_ccd_l: 3,
            t_wr: 15,
            burst: 2,
        }
    }

    /// Latency of a row-buffer hit (column access + burst).
    pub fn row_hit_latency(&self) -> u64 {
        self.t_cas + self.burst
    }

    /// Latency of a row conflict (precharge + activate + column + burst).
    pub fn row_conflict_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cas + self.burst
    }

    /// Latency of an access to a closed (never opened) bank.
    pub fn row_closed_latency(&self) -> u64 {
        self.t_rcd + self.t_cas + self.burst
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming::gddr3_table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let t = DramTiming::gddr3_table2();
        assert_eq!((t.t_rcd, t.t_cas, t.t_rp, t.t_ras), (11, 11, 11, 28));
        assert_eq!(t.freq_mhz, 924);
    }

    #[test]
    fn latency_ordering() {
        let t = DramTiming::default();
        assert!(t.row_hit_latency() < t.row_closed_latency());
        assert!(t.row_closed_latency() < t.row_conflict_latency());
    }

    #[test]
    fn gddr5_burst_scales_with_bus_width() {
        assert_eq!(DramTiming::gddr5(16).burst, 4);
        assert_eq!(DramTiming::gddr5(32).burst, 2);
        assert_eq!(DramTiming::gddr5(64).burst, 1);
        // Never zero, even for absurdly wide buses.
        assert_eq!(DramTiming::gddr5(256).burst, 1);
    }

    #[test]
    fn faster_generations_have_shorter_bursts() {
        let g5 = DramTiming::gddr5(8);
        let g5x = DramTiming::gddr5x(8);
        assert!(g5x.burst < g5.burst, "QDR halves the burst");
        assert!(g5x.t_ccd_l >= g5x.t_ccd, "same-group gap is never shorter");
        let hbm = DramTiming::hbm2();
        assert!(hbm.burst <= 2);
        assert!(hbm.t_ccd_l >= hbm.t_ccd);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gddr5_rejects_zero_width() {
        DramTiming::gddr5(0);
    }

    #[test]
    fn serde_round_trip() {
        let t = DramTiming::gddr5(32);
        let json = serde_json::to_string(&t).expect("serialize");
        assert_eq!(
            serde_json::from_str::<DramTiming>(&json).expect("deserialize"),
            t
        );
    }
}
