//! Cycle-level DRAM model for G-MAP's memory-system experiments.
//!
//! The paper uses Ramulator to sweep GDDR5 configurations (Fig. 7),
//! comparing three metrics between original applications and their G-MAP
//! clones: DRAM row-buffer locality (RBL), average memory-controller queue
//! length, and average read/write latency. This crate is the from-scratch
//! substitute:
//!
//! - [`timing`] — GDDR-style timing parameter sets (tRCD/tCAS/tRP/tRAS...),
//!   with the Table 2 baseline (`11-11-11-28` at 924 MHz) and GDDR5
//!   presets.
//! - [`mapping`] — the two address-decomposition schemes the paper sweeps:
//!   `RoBaRaCoCh` and `ChRaBaRoCo`.
//! - [`dram`] — per-channel controllers with open-page row-buffer state
//!   machines and FR-FCFS (or FCFS) request scheduling, consuming the
//!   timestamped request stream recorded by `gmap-memsim` and producing
//!   [`dram::DramMetrics`].
//!
//! # Example
//!
//! ```
//! use gmap_dram::{DramConfig, DramSystem, DramRequest};
//! use gmap_trace::record::{AccessKind, ByteAddr};
//!
//! let mut sys = DramSystem::new(DramConfig::gddr5_baseline());
//! let reqs: Vec<DramRequest> = (0..64)
//!     .map(|i| DramRequest { cycle: i * 4, addr: ByteAddr(i * 128), kind: AccessKind::Read })
//!     .collect();
//! let metrics = sys.run(&reqs);
//! assert_eq!(metrics.requests, 64);
//! assert!(metrics.rbl > 0.0); // sequential stream has row locality
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dram;
pub mod mapping;
pub mod timing;

pub use dram::{DramConfig, DramMetrics, DramRequest, DramSystem, MemSched};
pub use mapping::{AddressMapping, DramGeometry, DramLoc};
pub use timing::DramTiming;
