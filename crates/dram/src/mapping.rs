//! Physical address decomposition.
//!
//! The Figure 7 sweep varies the "DRAM addressing scheme — RoBaRaCoCh or
//! ChRaBaRoCo" (Ramulator's two stock mappings, named most-significant
//! field first). The mapping decides which bits select the channel, rank,
//! bank, row and column — and therefore how much row-buffer locality and
//! channel parallelism a given access stream exhibits.

use gmap_trace::batch::{KernelMode, LANES};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bit-field mapping scheme, named most-significant-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressMapping {
    /// Row : Bank : Rank : Column : Channel (channel in the lowest bits —
    /// consecutive lines alternate channels; rows span all channels).
    RoBaRaCoCh,
    /// Channel : Rank : Bank : Row : Column (column in the lowest bits —
    /// consecutive lines share a row; channels split the address space).
    ChRaBaRoCo,
}

impl fmt::Display for AddressMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressMapping::RoBaRaCoCh => f.write_str("RoBaRaCoCh"),
            AddressMapping::ChRaBaRoCo => f.write_str("ChRaBaRoCo"),
        }
    }
}

/// DRAM organization (all counts are powers of two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Independent channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Bank groups per rank (1 = no bank-group timing; GDDR5X/HBM-class
    /// devices pair this with [`crate::DramTiming::t_ccd_l`]).
    pub bank_groups: u32,
    /// Columns per row, where one column is one 128-byte request.
    pub columns: u32,
    /// Data bus width in bytes (feeds the timing model).
    pub bus_width_bytes: u32,
}

impl DramGeometry {
    /// The Table 2 baseline: 8 channels, 1 rank, 8 banks, 32 columns
    /// (4 KiB rows), 32-bit... bus width 8 B.
    pub fn table2_baseline() -> Self {
        DramGeometry {
            channels: 8,
            ranks: 1,
            banks: 8,
            bank_groups: 1,
            columns: 32,
            bus_width_bytes: 8,
        }
    }

    /// Validates that every count is a non-zero power of two.
    ///
    /// # Panics
    ///
    /// Panics on an invalid geometry (construction sites are static
    /// experiment tables, so this is a programming error).
    pub fn assert_valid(&self) {
        for (name, v) in [
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("banks", self.banks),
            ("bank_groups", self.bank_groups),
            ("columns", self.columns),
            ("bus_width_bytes", self.bus_width_bytes),
        ] {
            assert!(
                v != 0 && v.is_power_of_two(),
                "{name} = {v} must be a non-zero power of two"
            );
        }
        assert!(
            self.bank_groups <= self.banks,
            "bank_groups {} cannot exceed banks {}",
            self.bank_groups,
            self.banks
        );
    }

    /// The bank group of a flat (rank-local) bank index.
    pub fn group_of_bank(&self, bank: u32) -> u32 {
        bank % self.bank_groups
    }

    /// Total banks across the whole system.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks * self.banks
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        DramGeometry::table2_baseline()
    }
}

/// A decomposed DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramLoc {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u64,
    /// Column index within the row.
    pub column: u32,
}

impl DramLoc {
    /// Flat bank index within the channel (`rank * banks + bank`).
    pub fn flat_bank(&self, geom: &DramGeometry) -> usize {
        (self.rank * geom.banks + self.bank) as usize
    }
}

/// Decomposes a byte address into DRAM coordinates.
///
/// The low 7 bits (the 128-byte request payload) are dropped first; the
/// remaining bits are consumed least-significant-field-first according to
/// the mapping name read right-to-left.
pub fn decompose(addr: u64, geom: &DramGeometry, mapping: AddressMapping) -> DramLoc {
    fn take(bits: &mut u64, count: u32) -> u64 {
        let width = count.trailing_zeros();
        let v = *bits & ((1 << width) - 1);
        *bits >>= width;
        v
    }
    let mut bits = addr >> 7; // 128 B request granularity
    match mapping {
        AddressMapping::RoBaRaCoCh => {
            let channel = take(&mut bits, geom.channels) as u32;
            let column = take(&mut bits, geom.columns) as u32;
            let rank = take(&mut bits, geom.ranks) as u32;
            let bank = take(&mut bits, geom.banks) as u32;
            let row = bits;
            DramLoc {
                channel,
                rank,
                bank,
                row,
                column,
            }
        }
        AddressMapping::ChRaBaRoCo => {
            let column = take(&mut bits, geom.columns) as u32;
            // Rows get the middle bits; cap to keep channel bits meaningful
            // for any realistic trace (20 row bits = 4 GiB per bank stack).
            let row = bits & ((1 << 20) - 1);
            bits >>= 20;
            let bank = take(&mut bits, geom.banks) as u32;
            let rank = take(&mut bits, geom.ranks) as u32;
            let channel = take(&mut bits, geom.channels) as u32;
            DramLoc {
                channel,
                rank,
                bank,
                row,
                column,
            }
        }
    }
}

/// Precompiled address-decomposition plan: one `(shift, mask)` pair per
/// coordinate.
///
/// [`decompose`] re-derives field widths (`trailing_zeros` per field) and
/// branches on the mapping for every call; on the DRAM front-end that is
/// five data-independent recomputations per request. A plan folds the
/// geometry and mapping into constants once, so [`MappingPlan::decompose`]
/// is five shift-and-mask pairs with no branches — and
/// [`MappingPlan::decompose_batch`] runs them 8 lanes at a time.
///
/// A plan always agrees bit-for-bit with [`decompose`] for the geometry
/// and mapping it was built from (see the differential proptests in the
/// tier-1 suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingPlan {
    ch_shift: u32,
    ch_mask: u64,
    col_shift: u32,
    col_mask: u64,
    rank_shift: u32,
    rank_mask: u64,
    bank_shift: u32,
    bank_mask: u64,
    row_shift: u32,
    row_mask: u64,
}

impl MappingPlan {
    /// Compiles the `(geometry, mapping)` pair into shift/mask constants.
    pub fn new(geom: &DramGeometry, mapping: AddressMapping) -> Self {
        let cw = geom.channels.trailing_zeros();
        let colw = geom.columns.trailing_zeros();
        let rw = geom.ranks.trailing_zeros();
        let bw = geom.banks.trailing_zeros();
        let ch_mask = u64::from(geom.channels - 1);
        let col_mask = u64::from(geom.columns - 1);
        let rank_mask = u64::from(geom.ranks - 1);
        let bank_mask = u64::from(geom.banks - 1);
        match mapping {
            AddressMapping::RoBaRaCoCh => {
                let ch_shift = 7;
                let col_shift = ch_shift + cw;
                let rank_shift = col_shift + colw;
                let bank_shift = rank_shift + rw;
                let row_shift = bank_shift + bw;
                MappingPlan {
                    ch_shift,
                    ch_mask,
                    col_shift,
                    col_mask,
                    rank_shift,
                    rank_mask,
                    bank_shift,
                    bank_mask,
                    row_shift,
                    // The row takes every remaining bit, exactly as the
                    // field-consuming reference leaves them.
                    row_mask: u64::MAX,
                }
            }
            AddressMapping::ChRaBaRoCo => {
                let col_shift = 7;
                let row_shift = col_shift + colw;
                let bank_shift = row_shift + 20;
                let rank_shift = bank_shift + bw;
                let ch_shift = rank_shift + rw;
                MappingPlan {
                    ch_shift,
                    ch_mask,
                    col_shift,
                    col_mask,
                    rank_shift,
                    rank_mask,
                    bank_shift,
                    bank_mask,
                    row_shift,
                    // Rows are capped at 20 bits under ChRaBaRoCo (see
                    // `decompose`).
                    row_mask: (1 << 20) - 1,
                }
            }
        }
    }

    /// Decomposes one byte address: five shift-and-mask pairs, no
    /// branches, no per-call width derivation.
    #[inline]
    pub fn decompose(&self, addr: u64) -> DramLoc {
        DramLoc {
            channel: ((addr >> self.ch_shift) & self.ch_mask) as u32,
            rank: ((addr >> self.rank_shift) & self.rank_mask) as u32,
            bank: ((addr >> self.bank_shift) & self.bank_mask) as u32,
            row: (addr >> self.row_shift) & self.row_mask,
            column: ((addr >> self.col_shift) & self.col_mask) as u32,
        }
    }

    /// Decomposes a batch of byte addresses into `out` (cleared first),
    /// dispatching on `mode`. Both paths produce identical coordinates.
    pub fn decompose_batch(&self, addrs: &[u64], mode: KernelMode, out: &mut Vec<DramLoc>) {
        out.clear();
        out.reserve(addrs.len());
        match mode {
            KernelMode::Scalar => {
                for &a in addrs {
                    out.push(self.decompose(a));
                }
            }
            KernelMode::Batched => {
                // 8 lanes per chunk; each lane is an independent
                // shift/mask gather, so the chunk body has no
                // cross-lane dependency and no branch.
                let mut chunks = addrs.chunks_exact(LANES);
                for c in &mut chunks {
                    out.extend_from_slice(&[
                        self.decompose(c[0]),
                        self.decompose(c[1]),
                        self.decompose(c[2]),
                        self.decompose(c[3]),
                        self.decompose(c[4]),
                        self.decompose(c[5]),
                        self.decompose(c[6]),
                        self.decompose(c[7]),
                    ]);
                }
                for &a in chunks.remainder() {
                    out.push(self.decompose(a));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validates() {
        DramGeometry::table2_baseline().assert_valid();
        assert_eq!(DramGeometry::table2_baseline().total_banks(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        DramGeometry {
            channels: 3,
            ranks: 1,
            banks: 8,
            bank_groups: 1,
            columns: 32,
            bus_width_bytes: 8,
        }
        .assert_valid();
    }

    #[test]
    fn robaracoch_interleaves_channels_on_consecutive_lines() {
        let g = DramGeometry::table2_baseline();
        let a = decompose(0, &g, AddressMapping::RoBaRaCoCh);
        let b = decompose(128, &g, AddressMapping::RoBaRaCoCh);
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
        assert_eq!(a.row, b.row);
    }

    #[test]
    fn chrabaroco_keeps_consecutive_lines_in_one_row() {
        let g = DramGeometry::table2_baseline();
        let a = decompose(0, &g, AddressMapping::ChRaBaRoCo);
        let b = decompose(128, &g, AddressMapping::ChRaBaRoCo);
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.row, b.row);
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn decomposition_stays_in_bounds() {
        let g = DramGeometry {
            channels: 4,
            ranks: 2,
            banks: 8,
            bank_groups: 2,
            columns: 64,
            bus_width_bytes: 8,
        };
        for mapping in [AddressMapping::RoBaRaCoCh, AddressMapping::ChRaBaRoCo] {
            for i in 0..10_000u64 {
                let loc = decompose(i * 333 * 128, &g, mapping);
                assert!(loc.channel < g.channels);
                assert!(loc.rank < g.ranks);
                assert!(loc.bank < g.banks);
                assert!(loc.column < g.columns);
                assert!(loc.flat_bank(&g) < (g.ranks * g.banks) as usize);
            }
        }
    }

    #[test]
    fn row_crossing_in_robaracoch() {
        let g = DramGeometry::table2_baseline();
        // One row spans channels*columns*128 bytes under RoBaRaCoCh...
        // crossing that many bytes with same bank/rank bits increments row.
        let row_span = (g.channels * g.columns * g.ranks * g.banks) as u64 * 128;
        let a = decompose(0, &g, AddressMapping::RoBaRaCoCh);
        let b = decompose(row_span, &g, AddressMapping::RoBaRaCoCh);
        assert_eq!(b.row, a.row + 1);
    }

    #[test]
    fn plan_matches_reference_decompose() {
        let geoms = [
            DramGeometry::table2_baseline(),
            DramGeometry {
                channels: 4,
                ranks: 2,
                banks: 16,
                bank_groups: 4,
                columns: 64,
                bus_width_bytes: 8,
            },
            DramGeometry {
                channels: 1,
                ranks: 1,
                banks: 1,
                bank_groups: 1,
                columns: 1,
                bus_width_bytes: 4,
            },
        ];
        for g in &geoms {
            for mapping in [AddressMapping::RoBaRaCoCh, AddressMapping::ChRaBaRoCo] {
                let plan = MappingPlan::new(g, mapping);
                for i in 0..4096u64 {
                    let addr = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16;
                    assert_eq!(
                        plan.decompose(addr),
                        decompose(addr, g, mapping),
                        "addr={addr:#x} geom={g:?} mapping={mapping}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_decompose_kernels_agree_for_all_tail_lengths() {
        let g = DramGeometry::table2_baseline();
        let plan = MappingPlan::new(&g, AddressMapping::RoBaRaCoCh);
        for n in 0..(2 * LANES + 1) {
            let addrs: Vec<u64> = (0..n as u64).map(|i| i * 333 * 128).collect();
            let mut scalar = Vec::new();
            let mut batched = Vec::new();
            plan.decompose_batch(&addrs, KernelMode::Scalar, &mut scalar);
            plan.decompose_batch(&addrs, KernelMode::Batched, &mut batched);
            assert_eq!(scalar, batched, "n={n}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(AddressMapping::RoBaRaCoCh.to_string(), "RoBaRaCoCh");
        assert_eq!(AddressMapping::ChRaBaRoCo.to_string(), "ChRaBaRoCo");
    }
}
