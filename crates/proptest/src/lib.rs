//! Minimal, deterministic, offline subset of the `proptest` API.
//!
//! The build environment has no registry access, so this crate vendors just
//! the surface the workspace's property tests use: `proptest!`, `any`,
//! integer/float range strategies, `Just`, tuples, `prop_map`,
//! `prop_oneof!`, `collection::vec`, `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. Inputs are drawn from a deterministic per-test RNG (seeded
//! from the test's module path and case index), so failures reproduce
//! exactly across runs and machines.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestRng};

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a regular test that draws `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$m:meta])*
      fn $name:ident($($p:pat_param in $s:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$m])*
        fn $name() {
            let __cfg = $cfg;
            let __cases = __cfg.resolved_cases();
            for __case in 0..__cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Choose between several strategies producing the same value type.
/// Supports both `prop_oneof![a, b, c]` and weighted
/// `prop_oneof![2 => a, 1 => b]` forms.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Union::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Union::boxed($strat)) ),+
        ])
    };
}

/// Assert inside a `proptest!` body (no shrinking, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}
