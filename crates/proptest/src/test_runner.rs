//! Deterministic RNG and run configuration for the vendored proptest subset.

/// Per-test configuration. Only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 32 }
    }
}

impl Config {
    /// Build a config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// xorshift64* generator, seeded deterministically per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, perturbed by the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        if h == 0 {
            h = 0x853c_49e6_748f_ea9b;
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
