//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min + 1) as u128;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
