//! Value-generation strategies for the vendored proptest subset.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------------
// Integer and float ranges
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                ((self.start as i128) + rng.below(span as u128) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let start = *self.start() as i128;
                let span = (*self.end() as i128) - start + 1;
                assert!(span > 0, "empty range strategy");
                (start + rng.below(span as u128) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let start = self.start as f64;
                let end = self.end as f64;
                (start + rng.unit_f64() * (end - start)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let start = *self.start() as f64;
                let end = *self.end() as f64;
                (start + rng.unit_f64() * (end - start)) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+));+ $(;)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

// ---------------------------------------------------------------------------
// any::<T>() via Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(129) as i32) - 64;
        mantissa * (2f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy for any value of `T` (see [`any`]).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Union (prop_oneof!)
// ---------------------------------------------------------------------------

/// Weighted choice among boxed strategies of a common value type.
pub struct Union<V> {
    options: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total_weight: u64,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<V> Union<V> {
    /// Build a union from `(weight, strategy)` pairs.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union {
            options,
            total_weight,
        }
    }

    /// Box a strategy for storage in a union (helper for `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight as u128) as u64;
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}
