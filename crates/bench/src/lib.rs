//! Experiment harness for the G-MAP reproduction.
//!
//! One binary per table/figure of the paper (see `src/bin/`); this library
//! holds what they share: the configuration sweeps of §5, benchmark
//! preparation (execute → profile → clone, each done once per benchmark),
//! multi-threaded sweep execution, and result formatting.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table 1 — per-application access signatures |
//! | `fig5`   | Figure 5 — reuse distance worked example |
//! | `fig6a`  | Figure 6a — L1 cache sweep (30 configs/benchmark) |
//! | `fig6b`  | Figure 6b — L2 cache sweep (30 configs/benchmark) |
//! | `fig6c`  | Figure 6c — L1 + stride prefetcher (72 configs/benchmark) |
//! | `fig6d`  | Figure 6d — L2 + stream prefetcher (96 configs/benchmark) |
//! | `fig6e`  | Figure 6e — LRR vs GTO scheduling policies |
//! | `fig7`   | Figure 7 — DRAM metrics across 11 GDDR5 configs |
//! | `fig8`   | Figure 8 — miniaturization accuracy/speedup sweep |
//! | `ablation` | DESIGN.md §4 — design-choice ablations |

#![warn(missing_docs)]

use gmap_core::{
    compare_series, generate::generate_streams, profile_kernel, simulate_streams, summarize,
    BenchmarkComparison, GmapProfile, ProfilerConfig, SimtConfig, SweepSummary,
};
use gmap_gpu::kernel::KernelDesc;
use gmap_gpu::schedule::WarpStream;
use gmap_gpu::workloads::{self, Scale};
use std::sync::Arc;
use std::time::Instant;

pub mod engine;
pub mod sweeps;

/// Options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Workload scale.
    pub scale: Scale,
    /// Clone-generation / scheduling seed.
    pub seed: u64,
    /// Worker threads (one benchmark per thread).
    pub threads: usize,
    /// Optional CSV output path for the raw per-config series.
    pub csv: Option<String>,
}

impl ExperimentOpts {
    /// Usage text printed for `--help`/`-h`.
    pub const HELP: &'static str = "\
G-MAP experiment options:
  --scale tiny|small|default   workload scale (default: default)
  --seed N                     clone-generation / scheduling seed (default: 42)
  --threads N                  worker threads (default: available parallelism)
  --csv PATH                   write the raw per-config series as CSV
  -h, --help                   print this help and exit
";

    /// Parses the experiment flags from the command line; `--help`/`-h`
    /// prints [`Self::HELP`] and exits.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            print!("{}", Self::HELP);
            std::process::exit(0);
        }
        Self::parse(&args)
    }

    /// Parses an argument list (without the program name). Each flag
    /// consumes the following token as its value — but never another
    /// `--flag`, so `--csv --seed 7` leaves `csv` unset (with a warning)
    /// instead of silently recording `csv = "--seed"`. Unknown tokens are
    /// ignored.
    pub fn parse(args: &[String]) -> Self {
        let mut opts = ExperimentOpts {
            scale: Scale::Default,
            seed: 42,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            csv: None,
        };
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if !matches!(flag, "--scale" | "--seed" | "--threads" | "--csv") {
                i += 1;
                continue;
            }
            let value = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v,
                _ => {
                    eprintln!("warning: {flag} requires a value; ignored");
                    i += 1;
                    continue;
                }
            };
            match flag {
                "--scale" => {
                    opts.scale = match value.as_str() {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        _ => Scale::Default,
                    }
                }
                "--seed" => {
                    if let Ok(s) = value.parse() {
                        opts.seed = s;
                    }
                }
                "--threads" => {
                    if let Ok(t) = value.parse() {
                        opts.threads = t;
                    }
                }
                "--csv" => opts.csv = Some(value.clone()),
                _ => unreachable!("matched above"),
            }
            i += 2;
        }
        opts
    }
}

/// Everything derived once per benchmark: the executed original stream,
/// the statistical profile, and the clone stream.
#[derive(Debug)]
pub struct BenchData {
    /// The kernel description.
    pub kernel: KernelDesc,
    /// Original coalesced per-warp streams.
    pub orig_streams: Vec<WarpStream>,
    /// The statistical profile.
    pub profile: GmapProfile,
    /// Clone streams generated from the profile.
    pub proxy_streams: Vec<WarpStream>,
    /// Workload scale the bundle was prepared at.
    pub scale: Scale,
    /// Clone-generation seed the bundle was prepared with.
    pub seed: u64,
}

impl BenchData {
    /// Stable identity of one of this bundle's streams for the engine's
    /// cross-figure capture cache: `(name, scale, seed)` pin the stream
    /// content exactly — original streams depend on (name, scale), proxy
    /// streams additionally on the seed.
    pub fn capture_source(&self, proxy: bool) -> String {
        format!(
            "bench:{}:{:?}:{}:{}",
            self.kernel.name,
            self.scale,
            self.seed,
            if proxy { "proxy" } else { "orig" }
        )
    }
}

/// Prepares one benchmark: execute, profile, clone.
pub fn prepare(name: &str, scale: Scale, seed: u64) -> BenchData {
    let kernel = workloads::by_name(name, scale).expect("known benchmark name");
    let orig_streams = gmap_core::model::original_streams(&kernel);
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let proxy_streams = generate_streams(&profile, seed);
    BenchData {
        kernel,
        orig_streams,
        profile,
        proxy_streams,
        scale,
        seed,
    }
}

/// Metric extracted from a simulation for figure comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// L1 miss rate, percent.
    L1MissPct,
    /// L2 miss rate, percent.
    L2MissPct,
}

impl Metric {
    fn extract(self, out: &gmap_core::SimOutcome) -> f64 {
        match self {
            Metric::L1MissPct => out.l1_miss_pct(),
            Metric::L2MissPct => out.l2_miss_pct(),
        }
    }
}

/// Runs one benchmark through every configuration, original and proxy,
/// and compares the chosen metric.
pub fn sweep_benchmark(
    data: &BenchData,
    configs: &[SimtConfig],
    metric: Metric,
) -> BenchmarkComparison {
    let mut orig = Vec::with_capacity(configs.len());
    let mut proxy = Vec::with_capacity(configs.len());
    for cfg in configs {
        let o = simulate_streams(&data.orig_streams, &data.kernel.launch, cfg)
            .expect("sweep configurations are valid");
        let p = simulate_streams(&data.proxy_streams, &data.profile.launch, cfg)
            .expect("sweep configurations are valid");
        orig.push(metric.extract(&o));
        proxy.push(metric.extract(&p));
    }
    compare_series(&data.kernel.name, orig, proxy)
}

/// Outcome of evaluating one profile's clone across a configuration grid
/// (see [`evaluate_profile`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEvaluation {
    /// Metric value in percent per configuration, aligned with the input
    /// config slice.
    pub values: Vec<f64>,
    /// Whether the single-pass stack-distance engine evaluated the grid
    /// (`false` = one full simulation per configuration).
    pub single_pass: bool,
}

/// Evaluates a profile's clone across a configuration grid — the reusable
/// library entry point behind `gmap serve`'s `/v1/evaluate` endpoint and
/// any other caller that has a [`GmapProfile`] rather than a named
/// benchmark.
///
/// The clone stream is generated once from `profile` with `seed`; the
/// grid is then evaluated by the single-pass stack-distance engine when
/// [`engine::plan_single_pass`] proves the sweep eligible, and by direct
/// per-config simulation otherwise.
///
/// `cancel` is a cooperative cancellation token: it is checked between
/// coarse units of work (stream generation, capture, each direct-path
/// configuration), and once observed `true` the function returns `None`
/// without completing the grid.
pub fn evaluate_profile(
    profile: &GmapProfile,
    configs: &[SimtConfig],
    metric: Metric,
    seed: u64,
    cancel: Option<&std::sync::atomic::AtomicBool>,
) -> Option<ProfileEvaluation> {
    let cancelled = || cancel.is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed));
    if cancelled() {
        return None;
    }
    let streams = generate_streams(profile, seed);
    if cancelled() {
        return None;
    }
    if let Some(plan) = engine::plan_single_pass(configs, metric) {
        // Keyed by profile content + seed: repeated evaluations of the
        // same model (the common service pattern — one clone, many
        // grids) capture once per process.
        let source = format!("profile:{}:{}", gmap_core::cachekey::key_of(profile), seed);
        let capture =
            engine::capture_stream_cached(&source, &streams, &profile.launch, &plan.capture_cfg);
        if cancelled() {
            return None;
        }
        let series = engine::eval_captured(&plan, &capture, configs);
        return Some(ProfileEvaluation {
            values: series.values,
            single_pass: true,
        });
    }
    let mut values = Vec::with_capacity(configs.len());
    for cfg in configs {
        if cancelled() {
            return None;
        }
        let out = simulate_streams(&streams, &profile.launch, cfg)
            .expect("evaluation configurations are valid");
        values.push(metric.extract(&out));
    }
    Some(ProfileEvaluation {
        values,
        single_pass: false,
    })
}

/// One unit of sweep work: a benchmark and a contiguous config range.
struct SweepJob {
    data: Arc<BenchData>,
    bench: usize,
    lo: usize,
    hi: usize,
}

/// Runs a whole figure: all 18 benchmarks across the sweep.
///
/// Preparation (execute → profile → clone) runs once per benchmark in
/// parallel; the sweep itself is a flat work queue of (benchmark,
/// config-chunk) jobs over shared [`Arc<BenchData>`], so thread
/// utilization no longer collapses to one-thread-per-benchmark when a
/// few benchmarks dominate. Pure-LRU no-prefetcher sweeps are detected
/// by [`engine::plan_single_pass`] and evaluated in one stack-distance
/// pass per (benchmark, line size) instead of one full simulation per
/// config.
pub fn run_figure(
    title: &str,
    configs: &[SimtConfig],
    metric: Metric,
    opts: ExperimentOpts,
) -> SweepSummary {
    print_header(title, configs.len(), &opts);

    let t0 = Instant::now();
    let names: Vec<&str> = workloads::NAMES.to_vec();
    let data: Vec<Arc<BenchData>> = parallel_map(&names, opts.threads, |name| {
        Arc::new(prepare(name, opts.scale, opts.seed))
    });
    let prepare_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let plan = engine::plan_single_pass(configs, metric);
    let jobs: Vec<SweepJob> = match &plan {
        // Single-pass: the whole series per benchmark is one cheap job.
        Some(_) => data
            .iter()
            .enumerate()
            .map(|(b, d)| SweepJob {
                data: Arc::clone(d),
                bench: b,
                lo: 0,
                hi: configs.len(),
            })
            .collect(),
        // Direct: chunk the config grid so the queue stays deeper than
        // the thread pool even with few benchmarks in flight.
        None => {
            let chunk = configs.len().div_ceil(4).max(1);
            let mut jobs = Vec::new();
            for (b, d) in data.iter().enumerate() {
                let mut lo = 0;
                while lo < configs.len() {
                    let hi = (lo + chunk).min(configs.len());
                    jobs.push(SweepJob {
                        data: Arc::clone(d),
                        bench: b,
                        lo,
                        hi,
                    });
                    lo = hi;
                }
            }
            jobs
        }
    };
    let results: Vec<Vec<(f64, f64)>> = parallel_map(&jobs, opts.threads, |job| match &plan {
        Some(plan) => {
            let orig = engine::capture_stream_cached(
                &job.data.capture_source(false),
                &job.data.orig_streams,
                &job.data.kernel.launch,
                &plan.capture_cfg,
            );
            let proxy = engine::capture_stream_cached(
                &job.data.capture_source(true),
                &job.data.proxy_streams,
                &job.data.profile.launch,
                &plan.capture_cfg,
            );
            let o = engine::eval_captured(plan, &orig, configs);
            let p = engine::eval_captured(plan, &proxy, configs);
            o.values.into_iter().zip(p.values).collect()
        }
        None => configs[job.lo..job.hi]
            .iter()
            .map(|cfg| {
                let o = simulate_streams(&job.data.orig_streams, &job.data.kernel.launch, cfg)
                    .expect("sweep configurations are valid");
                let p = simulate_streams(&job.data.proxy_streams, &job.data.profile.launch, cfg)
                    .expect("sweep configurations are valid");
                (metric.extract(&o), metric.extract(&p))
            })
            .collect(),
    });
    // Stitch the chunks back into aligned per-benchmark series.
    let mut orig = vec![vec![0.0f64; configs.len()]; names.len()];
    let mut proxy = vec![vec![0.0f64; configs.len()]; names.len()];
    for (job, values) in jobs.iter().zip(results) {
        for (k, (o, p)) in values.into_iter().enumerate() {
            orig[job.bench][job.lo + k] = o;
            proxy[job.bench][job.lo + k] = p;
        }
    }
    let comparisons: Vec<BenchmarkComparison> = names
        .iter()
        .enumerate()
        .map(|(b, name)| {
            compare_series(
                name,
                std::mem::take(&mut orig[b]),
                std::mem::take(&mut proxy[b]),
            )
        })
        .collect();
    let sweep_secs = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let summary = summarize(comparisons);
    println!("{summary}");
    if let Some(path) = &opts.csv {
        match write_summary_csv(&summary, path) {
            Ok(()) => println!("raw series written to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    let summarize_secs = t2.elapsed().as_secs_f64();

    let points = names.len() * configs.len();
    println!(
        "phase timings: prepare {prepare_secs:.2}s  sweep {sweep_secs:.2}s  summarize {summarize_secs:.2}s"
    );
    println!(
        "throughput: {:.0} configs/s over {points} validation points ({})",
        points as f64 / sweep_secs.max(1e-9),
        if plan.is_some() {
            "single-pass engine"
        } else {
            "direct simulation"
        }
    );
    summary
}

/// Writes the raw per-config original/proxy series of a sweep as CSV
/// (`benchmark,config,original,proxy`), ready for external plotting.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn write_summary_csv(summary: &SweepSummary, path: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "benchmark,config,original,proxy")?;
    for b in &summary.per_benchmark {
        for (i, (o, p)) in b.original.iter().zip(&b.proxy).enumerate() {
            writeln!(f, "{},{},{},{}", b.name, i, o, p)?;
        }
    }
    Ok(())
}

/// Prints the experiment banner with the Table 2 baseline reminder.
pub fn print_header(title: &str, num_configs: usize, opts: &ExperimentOpts) {
    println!("=== {title} ===");
    println!(
        "benchmarks: {}  configs/benchmark: {num_configs}  validation points: {}",
        workloads::NAMES.len(),
        workloads::NAMES.len() * num_configs
    );
    println!(
        "scale: {:?}  seed: {}  baseline: 15 SMs, L1 16KB/4-way/128B, L2 1MB/8-way/8-bank (Table 2)\n",
        opts.scale, opts.seed
    );
}

/// Maps `f` over `items` using up to `threads` worker threads, preserving
/// input order in the output.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    // One cell per output slot: the atomic counter hands each index to
    // exactly one worker, so writes land in disjoint slots and there is
    // no shared result funnel to contend on.
    let cells: Vec<std::sync::Mutex<Option<R>>> = (0..items.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *cells[i].lock().expect("no poisoned workers") = Some(r);
            });
        }
    });
    cells
        .into_iter()
        .map(|c| {
            c.into_inner()
                .expect("no poisoned workers")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmap_core::compare_series;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        for threads in [1, 2, 8] {
            let out = parallel_map(&items, threads, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
        let empty: Vec<u64> = vec![];
        assert!(parallel_map(&empty, 4, |&x: &u64| x).is_empty());
    }

    #[test]
    fn arg_parsing_does_not_eat_flags_as_values() {
        let args: Vec<String> = ["--csv", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = ExperimentOpts::parse(&args);
        // `--csv` has no value (the next token is a flag): left unset.
        assert_eq!(opts.csv, None);
        assert_eq!(opts.seed, 7);
    }

    #[test]
    fn arg_parsing_accepts_the_documented_flags() {
        let args: Vec<String> = [
            "--scale",
            "tiny",
            "--seed",
            "9",
            "--threads",
            "3",
            "--csv",
            "out.csv",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let opts = ExperimentOpts::parse(&args);
        assert_eq!(opts.scale, Scale::Tiny);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.csv.as_deref(), Some("out.csv"));
        for flag in ["--scale", "--seed", "--threads", "--csv"] {
            assert!(ExperimentOpts::HELP.contains(flag), "help must list {flag}");
        }
    }

    #[test]
    fn prepare_produces_consistent_bundle() {
        let data = prepare("kmeans", Scale::Tiny, 7);
        assert_eq!(data.kernel.name, "kmeans");
        assert_eq!(data.orig_streams.len(), data.proxy_streams.len());
        assert_eq!(
            data.profile.launch.total_warps(data.profile.warp_size) as usize,
            data.proxy_streams.len()
        );
    }

    #[test]
    fn sweep_benchmark_runs_every_config() {
        let data = prepare("scalarprod", Scale::Tiny, 7);
        let configs = vec![SimtConfig::default(); 3];
        let cmp = sweep_benchmark(&data, &configs, Metric::L1MissPct);
        assert_eq!(cmp.original.len(), 3);
        assert_eq!(cmp.proxy.len(), 3);
        // Identical configs: identical values.
        assert_eq!(cmp.original[0], cmp.original[2]);
    }

    #[test]
    fn csv_output_has_expected_shape() {
        let summary = gmap_core::summarize(vec![
            compare_series("a", vec![1.0, 2.0], vec![1.5, 2.5]),
            compare_series("b", vec![3.0], vec![3.0]),
        ]);
        let path = std::env::temp_dir().join(format!("gmap-csv-{}.csv", std::process::id()));
        let path_str = path.to_string_lossy().into_owned();
        write_summary_csv(&summary, &path_str).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines[0], "benchmark,config,original,proxy");
        assert_eq!(lines.len(), 1 + 3);
        assert!(lines[1].starts_with("a,0,1,1.5"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evaluate_profile_matches_direct_simulation() {
        let data = prepare("kmeans", Scale::Tiny, 7);
        // A grid the single-pass planner accepts...
        let grid = sweeps::l1_sweep();
        let single = evaluate_profile(&data.profile, &grid, Metric::L1MissPct, 7, None)
            .expect("not cancelled");
        assert!(single.single_pass);
        assert_eq!(single.values.len(), grid.len());
        // ...must agree with the direct path on a spot-checked subset.
        let subset = &grid[..3];
        let direct = evaluate_profile(
            &data.profile,
            subset,
            Metric::L2MissPct, // metric/grid mismatch forces the direct path
            7,
            None,
        )
        .expect("not cancelled");
        assert!(!direct.single_pass);
        for (i, v) in direct.values.iter().enumerate() {
            let out = simulate_streams(&data.proxy_streams, &data.profile.launch, &subset[i])
                .expect("valid config");
            assert!((v - Metric::L2MissPct.extract(&out)).abs() < 1e-12);
        }
        // Single-pass values are exact vs direct simulation of the same
        // proxy stream at the captured reference interleaving; here we
        // only assert both series are sane percentages.
        assert!(single.values.iter().all(|v| (0.0..=100.0).contains(v)));
    }

    #[test]
    fn evaluate_profile_honors_cancellation() {
        use std::sync::atomic::AtomicBool;
        let data = prepare("scalarprod", Scale::Tiny, 7);
        let cancelled = AtomicBool::new(true);
        assert_eq!(
            evaluate_profile(
                &data.profile,
                &sweeps::l1_sweep(),
                Metric::L1MissPct,
                7,
                Some(&cancelled)
            ),
            None
        );
    }

    #[test]
    fn metric_extraction_matches_outcome() {
        let data = prepare("aes", Scale::Tiny, 7);
        let cfg = SimtConfig::default();
        let out = simulate_streams(&data.orig_streams, &data.kernel.launch, &cfg)
            .expect("baseline is valid");
        assert_eq!(Metric::L1MissPct.extract(&out), out.l1_miss_pct());
        assert_eq!(Metric::L2MissPct.extract(&out), out.l2_miss_pct());
    }
}
