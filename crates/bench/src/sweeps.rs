//! Configuration sweeps of §5 of the paper.
//!
//! Each function reproduces the sweep the corresponding figure reports:
//! the paper's text specifies the parameter ranges and the number of
//! configurations per benchmark; the cross products below realize them.

use gmap_core::SimtConfig;
use gmap_dram::{AddressMapping, DramConfig, DramGeometry, DramTiming};
use gmap_memsim::cache::{CacheConfig, ReplacementPolicy};
use gmap_memsim::prefetch::{StreamPrefetcherConfig, StridePrefetcherConfig};

fn cache(size_kb: u64, assoc: u32, line: u64) -> CacheConfig {
    CacheConfig::new(size_kb * 1024, assoc, line, ReplacementPolicy::Lru)
        .expect("sweep geometry is valid")
}

/// Figure 6a: 30 L1 configurations — size 8–128 KB, associativity 1–16,
/// line size 32–128 B, L2 fixed at 1 MB 8-way.
pub fn l1_sweep() -> Vec<SimtConfig> {
    let mut out = Vec::with_capacity(30);
    for size_kb in [8u64, 16, 32, 64, 128] {
        for assoc in [1u32, 4, 16] {
            for line in [32u64, 128] {
                let mut cfg = SimtConfig::default();
                cfg.hierarchy.l1 = cache(size_kb, assoc, line);
                out.push(cfg);
            }
        }
    }
    out
}

/// Figure 6b: 30 L2 configurations — size 128 KB–4 MB, associativity
/// 1–16, line size 64–128 B, L1 fixed at 16 KB 4-way.
pub fn l2_sweep() -> Vec<SimtConfig> {
    let mut out = Vec::with_capacity(30);
    for size_kb in [128u64, 256, 1024, 2048, 4096] {
        for assoc in [1u32, 4, 16] {
            for line in [64u64, 128] {
                let mut cfg = SimtConfig::default();
                cfg.hierarchy.l2 = cache(size_kb, assoc, line);
                out.push(cfg);
            }
        }
    }
    out
}

/// Figure 6c: 72 L1 + stride-prefetcher configurations — prefetch degree,
/// distance and table size across three L1 geometries.
pub fn l1_prefetch_sweep() -> Vec<SimtConfig> {
    let mut out = Vec::with_capacity(72);
    for size_kb in [8u64, 16, 64] {
        for degree in [1u32, 2, 4, 8] {
            for distance in [1u32, 2, 4] {
                for table_size in [64u32, 256] {
                    let mut cfg = SimtConfig::default();
                    cfg.hierarchy.l1 = cache(size_kb, 4, 128);
                    cfg.hierarchy.l1_prefetch = Some(StridePrefetcherConfig {
                        table_size,
                        degree,
                        distance,
                        min_confidence: 2,
                    });
                    out.push(cfg);
                }
            }
        }
    }
    out
}

/// Figure 6d: 96 L2 + stream-prefetcher configurations — stream window
/// 8/16/32, prefetch degree 1/2/4/8, across four L2 geometries.
pub fn l2_prefetch_sweep() -> Vec<SimtConfig> {
    let mut out = Vec::with_capacity(96);
    for size_kb in [256u64, 512, 1024, 2048] {
        for line in [64u64, 128] {
            for window in [8u32, 16, 32] {
                for degree in [1u32, 2, 4, 8] {
                    let mut cfg = SimtConfig::default();
                    cfg.hierarchy.l2 = cache(size_kb, 8, line);
                    cfg.hierarchy.l2_prefetch = Some(StreamPrefetcherConfig {
                        num_streams: 16,
                        window,
                        degree,
                    });
                    out.push(cfg);
                }
            }
        }
    }
    out
}

/// Figure 6e companion: a reduced L1 sweep (line fixed at 128 B) used to
/// compare scheduling policies without exploding the cross product.
pub fn policy_l1_sweep() -> Vec<SimtConfig> {
    let mut out = Vec::with_capacity(15);
    for size_kb in [8u64, 16, 32, 64, 128] {
        for assoc in [1u32, 4, 16] {
            let mut cfg = SimtConfig::default();
            cfg.hierarchy.l1 = cache(size_kb, assoc, 128);
            out.push(cfg);
        }
    }
    out
}

/// Figure 6e's replacement-policy grid: the reduced L1 geometry sweep
/// crossed with LRU and FIFO replacement — 30 configurations.
pub fn replacement_policy_sweep() -> Vec<SimtConfig> {
    let mut out = Vec::with_capacity(30);
    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo] {
        for size_kb in [8u64, 16, 32, 64, 128] {
            for assoc in [1u32, 4, 16] {
                let mut cfg = SimtConfig::default();
                cfg.hierarchy.l1 = cache(size_kb, assoc, 128);
                cfg.hierarchy.l1.policy = policy;
                out.push(cfg);
            }
        }
    }
    out
}

/// Figure 7: 11 GDDR5 configurations — bus width, channel parallelism and
/// addressing scheme (RoBaRaCoCh / ChRaBaRoCo), as in the paper.
pub fn dram_sweep() -> Vec<(String, DramConfig)> {
    let mut out = Vec::with_capacity(11);
    for &channels in &[2u32, 4, 8] {
        for &bus in &[4u32, 8] {
            for &mapping in &[AddressMapping::RoBaRaCoCh, AddressMapping::ChRaBaRoCo] {
                if out.len() == 11 {
                    break;
                }
                let cfg = DramConfig {
                    geometry: DramGeometry {
                        channels,
                        ranks: 1,
                        banks: 16,
                        bank_groups: 4,
                        columns: 32,
                        bus_width_bytes: bus,
                    },
                    mapping,
                    timing: DramTiming::gddr5(bus),
                    scheduler: gmap_dram::MemSched::FrFcfs,
                };
                out.push((format!("{channels}ch/{bus}B/{mapping}"), cfg));
            }
        }
    }
    out
}

/// Figure 8: miniaturization factors.
pub fn miniaturization_factors() -> Vec<f64> {
    vec![1.0, 2.0, 4.0, 8.0, 16.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_sizes_match_the_paper() {
        assert_eq!(l1_sweep().len(), 30);
        assert_eq!(l2_sweep().len(), 30);
        assert_eq!(l1_prefetch_sweep().len(), 72);
        assert_eq!(l2_prefetch_sweep().len(), 96);
        assert_eq!(dram_sweep().len(), 11);
        assert_eq!(policy_l1_sweep().len(), 15);
        assert_eq!(replacement_policy_sweep().len(), 30);
    }

    #[test]
    fn replacement_sweep_covers_both_policies() {
        let grid = replacement_policy_sweep();
        let fifo = grid
            .iter()
            .filter(|c| c.hierarchy.l1.policy == ReplacementPolicy::Fifo)
            .count();
        assert_eq!(fifo, grid.len() / 2);
    }

    #[test]
    fn all_configs_are_constructible() {
        use gmap_memsim::hierarchy::GpuHierarchy;
        for cfg in l1_sweep()
            .into_iter()
            .chain(l2_sweep())
            .chain(l1_prefetch_sweep())
            .chain(l2_prefetch_sweep())
            .chain(policy_l1_sweep())
            .chain(replacement_policy_sweep())
        {
            GpuHierarchy::new(cfg.hierarchy).expect("valid hierarchy");
        }
        for (_, d) in dram_sweep() {
            gmap_dram::DramSystem::new(d);
        }
    }

    #[test]
    fn validation_point_totals() {
        // Paper: over 540 + 540 + 1296 + 1728 + 198 ≈ 5000 points.
        let n = 18;
        let total = n
            * (l1_sweep().len()
                + l2_sweep().len()
                + l1_prefetch_sweep().len()
                + l2_prefetch_sweep().len())
            + n * dram_sweep().len();
        assert!(total > 4000, "validation points {total}");
    }
}
