//! Single-pass multi-configuration sweep engine.
//!
//! `sweep_benchmark` evaluates a figure's configuration grid with `2 × N`
//! independent full simulations per benchmark — each one re-running the
//! warp scheduler and the entire hierarchy. But the pure-LRU,
//! no-prefetcher sweeps (fig6a, fig6b, fig6e) only vary the geometry of
//! *one* cache level, and for those the Mattson stack-distance result
//! ([`gmap_memsim::stackdist`]) yields exact hit/miss counts for every
//! geometry sharing a line size from **one** pass over the access stream.
//!
//! The engine therefore works trace-driven, the same methodology as the
//! CMP$im-based simulator the paper validates against:
//!
//! 1. **Capture** — run the full scheduler + hierarchy *once* per
//!    benchmark at the reference configuration (Table 2 baseline for the
//!    swept level, the sweep's shared values for everything else) and
//!    record the per-core L1 demand stream in issue order
//!    ([`capture_stream`]).
//! 2. **Plan** — check that every config in the sweep differs from the
//!    reference only in the swept cache's geometry, is LRU, and has no
//!    prefetcher in the path; group configs by line size
//!    ([`plan_single_pass`]).
//! 3. **Evaluate** — per line-size group, convert the byte-address stream
//!    to line indices and run the stack-distance evaluator: per-core
//!    streams against per-core private L1s, or a derived L2 stream
//!    (replay the fixed L1 once, forward its misses and write-throughs)
//!    against the banked shared L2 ([`eval_captured`]).
//!
//! Anything the plan can't prove sweepable — prefetchers, non-LRU
//! replacement, configs that vary more than one level — falls back to
//! the direct path (`sweep_benchmark`), unchanged.
//!
//! Capturing at one reference configuration means the warp interleaving
//! is that of the reference run: the scheduler's feedback loop (latency →
//! readiness → issue order) is evaluated once, not per config. Within
//! that captured stream the per-config miss rates are *exact* — equal to
//! replaying the stream through each configuration's caches — which is
//! what the engine's tests assert to 1e-9 against an independent
//! hierarchy-mirroring replay.

use crate::{BenchData, Metric};
use gmap_core::{compare_series, BenchmarkComparison, SimtConfig};
use gmap_gpu::hierarchy::LaunchConfig;
use gmap_gpu::schedule::{run_schedule, MemoryModel, ScheduleOutcome, WarpStream};
use gmap_memsim::cache::{AccessRequest, Cache, CacheConfig, ReplacementPolicy};
use gmap_memsim::hierarchy::{GpuHierarchy, HierarchyConfig, L1WritePolicy, TraceCapture};
use gmap_memsim::stackdist::{evaluate_lru_multi, GeomCounts, LineAccess, WriteMode};
use gmap_trace::record::{AccessKind, ByteAddr, CoreId, Pc};

/// One captured L1-level demand transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapturedAccess {
    /// Issuing core, folded onto the hierarchy's core count the same way
    /// [`GpuHierarchy`] folds it.
    pub core: u16,
    /// Byte address of the coalesced transaction.
    pub addr: u64,
    /// Store (`true`) or load (`false`).
    pub is_write: bool,
}

/// The L1 demand stream of one scheduled run, in global issue order.
#[derive(Debug, Clone)]
pub struct CapturedStream {
    /// Every coalesced transaction the scheduler issued, in order.
    pub accesses: Vec<CapturedAccess>,
    /// Number of cores (= number of private L1s).
    pub cores: usize,
    /// Scheduling statistics of the capture run (`SchedP_self` feeds the
    /// fig6e policy replay).
    pub schedule: ScheduleOutcome,
}

/// A [`MemoryModel`] that records every transaction while delegating to
/// the real hierarchy, so the capture run sees exactly the latencies (and
/// thus the interleaving) of a normal reference simulation.
struct Recorder {
    hier: GpuHierarchy,
    cores: usize,
    log: Vec<CapturedAccess>,
}

impl MemoryModel for Recorder {
    fn access(
        &mut self,
        core: CoreId,
        pc: Pc,
        addr: ByteAddr,
        kind: AccessKind,
        cycle: u64,
    ) -> u64 {
        self.log.push(CapturedAccess {
            core: ((core.0 as usize) % self.cores) as u16,
            addr: addr.0,
            is_write: matches!(kind, AccessKind::Write),
        });
        self.hier.access(core, pc, addr, kind, cycle)
    }
}

/// Runs the scheduler + hierarchy once at `cfg` and captures the L1
/// demand stream. Trace capture is forced off — the engine records at the
/// L1 boundary itself and needs no DRAM-level trace.
pub fn capture_stream(
    streams: &[WarpStream],
    launch: &LaunchConfig,
    cfg: &SimtConfig,
) -> CapturedStream {
    let cfg = cfg.with_trace_capture(TraceCapture::Off);
    let cores = cfg.hierarchy.num_cores as usize;
    let hier = GpuHierarchy::new(cfg.hierarchy).expect("capture configuration is valid");
    let mut rec = Recorder {
        hier,
        cores,
        log: Vec::new(),
    };
    let schedule = run_schedule(streams, launch, &cfg.gpu, cfg.policy, &mut rec, cfg.seed);
    CapturedStream {
        accesses: rec.log,
        cores,
        schedule,
    }
}

/// Which cache level a planned sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweptLevel {
    /// Per-core private L1s vary; everything else is fixed.
    L1,
    /// The shared banked L2 varies; everything else is fixed.
    L2,
}

/// Configs sharing one line size, evaluated together in one pass.
#[derive(Debug, Clone)]
pub struct SweepGroup {
    /// The group's shared line size in bytes.
    pub line_size: u64,
    /// Indices into the planned config slice, in input order.
    pub config_indices: Vec<usize>,
}

/// A proven-sweepable configuration grid.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// The varied cache level.
    pub level: SweptLevel,
    /// The reference configuration for the capture run: the sweep's
    /// shared fields with the swept level pinned to the Table 2 baseline.
    pub capture_cfg: SimtConfig,
    /// Line-size groups covering every config index exactly once.
    pub groups: Vec<SweepGroup>,
}

impl SweepPlan {
    /// Total number of planned configurations.
    pub fn num_configs(&self) -> usize {
        self.groups.iter().map(|g| g.config_indices.len()).sum()
    }
}

/// Decides whether `configs` can be evaluated by the single-pass engine
/// for `metric`, and if so how. Returns `None` — meaning "use the direct
/// per-config path" — unless all of the following hold:
///
/// - every config is identical except for the metric's cache level
///   (`hierarchy.l1` for [`Metric::L1MissPct`], `hierarchy.l2` for
///   [`Metric::L2MissPct`]);
/// - every swept geometry uses LRU replacement;
/// - no prefetcher sits in the evaluated path (L1 sweeps: no L1
///   prefetcher; L2 sweeps: neither, since L1 prefetch fills generate L2
///   traffic);
/// - for L2 sweeps, the banked array folds into an equivalent single
///   cache of the per-bank geometry (power-of-two banks, at least as
///   many sets per bank as banks — true for every stock sweep).
pub fn plan_single_pass(configs: &[SimtConfig], metric: Metric) -> Option<SweepPlan> {
    let first = *configs.first()?;
    let level = match metric {
        Metric::L1MissPct => SweptLevel::L1,
        Metric::L2MissPct => SweptLevel::L2,
    };
    let baseline = HierarchyConfig::fermi_baseline();
    // Mask out the swept level (and the trace knob, which never affects
    // miss rates): what remains must be bit-identical across the sweep.
    let mask = |mut c: SimtConfig| -> SimtConfig {
        c.hierarchy.trace_capture = TraceCapture::Off;
        match level {
            SweptLevel::L1 => c.hierarchy.l1 = baseline.l1,
            SweptLevel::L2 => c.hierarchy.l2 = baseline.l2,
        }
        c
    };
    let reference = mask(first);
    if configs.iter().any(|c| mask(*c) != reference) {
        return None;
    }
    match level {
        SweptLevel::L1 => {
            if reference.hierarchy.l1_prefetch.is_some() {
                return None;
            }
            if configs
                .iter()
                .any(|c| c.hierarchy.l1.policy != ReplacementPolicy::Lru)
            {
                return None;
            }
        }
        SweptLevel::L2 => {
            if reference.hierarchy.l1_prefetch.is_some()
                || reference.hierarchy.l2_prefetch.is_some()
            {
                return None;
            }
            let banks = reference.hierarchy.l2_banks as u64;
            if !banks.is_power_of_two() {
                return None;
            }
            for c in configs {
                if c.hierarchy.l2.policy != ReplacementPolicy::Lru {
                    return None;
                }
                let Ok(bank) = c.hierarchy.l2_bank_config() else {
                    return None;
                };
                if bank.num_sets() < banks {
                    return None;
                }
            }
        }
    }
    let mut groups: Vec<SweepGroup> = Vec::new();
    for (i, c) in configs.iter().enumerate() {
        let line = match level {
            SweptLevel::L1 => c.hierarchy.l1.line_size,
            SweptLevel::L2 => c.hierarchy.l2.line_size,
        };
        match groups.iter_mut().find(|g| g.line_size == line) {
            Some(g) => g.config_indices.push(i),
            None => groups.push(SweepGroup {
                line_size: line,
                config_indices: vec![i],
            }),
        }
    }
    Some(SweepPlan {
        level,
        capture_cfg: reference,
        groups,
    })
}

/// Result of evaluating a planned sweep over one captured stream.
#[derive(Debug, Clone)]
pub struct EvalSeries {
    /// Metric value in percent per configuration, aligned with the config
    /// slice the plan was built from.
    pub values: Vec<f64>,
    /// Whether any group hit the stack-distance evaluator's internal
    /// exact per-config replay (divergent no-allocate store). Counts stay
    /// exact either way; this only marks the slower path.
    pub fell_back: bool,
}

/// Evaluates every planned configuration against one captured stream.
pub fn eval_captured(
    plan: &SweepPlan,
    capture: &CapturedStream,
    configs: &[SimtConfig],
) -> EvalSeries {
    match plan.level {
        SweptLevel::L1 => eval_l1(plan, capture, configs),
        SweptLevel::L2 => eval_l2(plan, capture, configs),
    }
}

fn eval_l1(plan: &SweepPlan, capture: &CapturedStream, configs: &[SimtConfig]) -> EvalSeries {
    let mode = match plan.capture_cfg.hierarchy.l1_write_policy {
        L1WritePolicy::WriteThroughNoAllocate => WriteMode::NoAllocate,
        L1WritePolicy::WriteBackAllocate => WriteMode::Allocate,
    };
    let mut values = vec![0.0; configs.len()];
    let mut fell_back = false;
    for group in &plan.groups {
        let shift = group.line_size.trailing_zeros();
        let geoms: Vec<CacheConfig> = group
            .config_indices
            .iter()
            .map(|&i| configs[i].hierarchy.l1)
            .collect();
        // Private per-core L1s: evaluate each core's stream separately
        // and sum the counters, exactly as the hierarchy merges per-core
        // stats.
        let mut per_core: Vec<Vec<LineAccess>> = vec![Vec::new(); capture.cores];
        for a in &capture.accesses {
            per_core[a.core as usize].push(LineAccess::new(a.addr >> shift, a.is_write));
        }
        let mut totals = vec![GeomCounts::default(); geoms.len()];
        for stream in per_core.iter().filter(|s| !s.is_empty()) {
            let r = evaluate_lru_multi(&geoms, stream, mode)
                .expect("plan guarantees a uniform LRU line-size group");
            fell_back |= r.fell_back;
            for (t, c) in totals.iter_mut().zip(&r.counts) {
                t.merge(c);
            }
        }
        for (k, &i) in group.config_indices.iter().enumerate() {
            values[i] = totals[k].miss_rate() * 100.0;
        }
    }
    EvalSeries { values, fell_back }
}

/// Replays the captured stream through the sweep's *fixed* L1s once and
/// returns the byte-address stream that reaches the shared L2, in issue
/// order — demand-read misses, write-throughs (or write-back victims and
/// write-allocate fetches), exactly mirroring `GpuHierarchy`'s L2 demand
/// path.
fn derive_l2_stream(capture: &CapturedStream, hier: &HierarchyConfig) -> Vec<(u64, bool)> {
    let l1_cfg = hier.l1;
    let shift = l1_cfg.line_size.trailing_zeros();
    let mut l1s: Vec<Cache> = (0..capture.cores).map(|_| Cache::new(l1_cfg)).collect();
    let mut out = Vec::new();
    for a in &capture.accesses {
        let line = a.addr >> shift;
        let l1 = &mut l1s[a.core as usize];
        if a.is_write {
            match hier.l1_write_policy {
                L1WritePolicy::WriteThroughNoAllocate => {
                    let _ = l1.request(AccessRequest {
                        line,
                        is_write: true,
                        allocate_on_miss: false,
                        mark_dirty: false,
                    });
                    out.push((a.addr, true));
                }
                L1WritePolicy::WriteBackAllocate => {
                    let r = l1.request(AccessRequest {
                        line,
                        is_write: true,
                        allocate_on_miss: true,
                        mark_dirty: true,
                    });
                    if let Some(victim) = r.writeback {
                        out.push((victim << shift, true));
                    }
                    if !r.hit {
                        out.push((a.addr, false));
                    }
                }
            }
        } else {
            let r = l1.request(AccessRequest {
                line,
                is_write: false,
                allocate_on_miss: false,
                mark_dirty: false,
            });
            if !r.hit {
                out.push((a.addr, false));
                if let Some(victim) = l1.demand_fill(line) {
                    out.push((victim << shift, true));
                }
            }
        }
    }
    out
}

fn eval_l2(plan: &SweepPlan, capture: &CapturedStream, configs: &[SimtConfig]) -> EvalSeries {
    // The L1 is fixed across an L2 sweep, so the stream feeding the L2 is
    // derived once and shared by every group.
    let l2_stream = derive_l2_stream(capture, &plan.capture_cfg.hierarchy);
    let mut values = vec![0.0; configs.len()];
    let mut fell_back = false;
    for group in &plan.groups {
        let shift = group.line_size.trailing_zeros();
        // Low-bit banking with bank bits inside the set-index bits makes
        // the banked array behave exactly like one cache of the per-bank
        // geometry (the plan verified the preconditions).
        let geoms: Vec<CacheConfig> = group
            .config_indices
            .iter()
            .map(|&i| {
                configs[i]
                    .hierarchy
                    .l2_bank_config()
                    .expect("plan verified the bank split")
            })
            .collect();
        let stream: Vec<LineAccess> = l2_stream
            .iter()
            .map(|&(addr, is_write)| LineAccess::new(addr >> shift, is_write))
            .collect();
        // The L2 is write-back write-allocate: stores allocate like loads.
        let r = evaluate_lru_multi(&geoms, &stream, WriteMode::Allocate)
            .expect("plan guarantees a uniform LRU line-size group");
        fell_back |= r.fell_back;
        for (k, &i) in group.config_indices.iter().enumerate() {
            values[i] = r.counts[k].miss_rate() * 100.0;
        }
    }
    EvalSeries { values, fell_back }
}

/// Sweeps one benchmark through the engine: two capture runs (original
/// and proxy) plus one stack-distance pass per line-size group, instead
/// of `2 × N` full simulations.
pub fn sweep_benchmark_single_pass(
    data: &BenchData,
    plan: &SweepPlan,
    configs: &[SimtConfig],
) -> BenchmarkComparison {
    let orig = capture_stream(&data.orig_streams, &data.kernel.launch, &plan.capture_cfg);
    let proxy = capture_stream(&data.proxy_streams, &data.profile.launch, &plan.capture_cfg);
    let o = eval_captured(plan, &orig, configs);
    let p = eval_captured(plan, &proxy, configs);
    compare_series(&data.kernel.name, o.values, p.values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, sweeps};
    use gmap_gpu::workloads::Scale;
    use gmap_memsim::prefetch::StridePrefetcherConfig;

    /// Independent per-config trace replay of the captured stream through
    /// per-core L1 caches, mirroring `GpuHierarchy`'s L1 demand path
    /// structurally (separate `request` + `demand_fill`, hierarchy write
    /// flags) rather than going through the stack-distance code.
    fn direct_l1_series(capture: &CapturedStream, configs: &[SimtConfig]) -> Vec<f64> {
        configs
            .iter()
            .map(|cfg| {
                let shift = cfg.hierarchy.l1.line_size.trailing_zeros();
                let mut l1s: Vec<Cache> = (0..capture.cores)
                    .map(|_| Cache::new(cfg.hierarchy.l1))
                    .collect();
                for a in &capture.accesses {
                    let line = a.addr >> shift;
                    let c = &mut l1s[a.core as usize];
                    if a.is_write {
                        match cfg.hierarchy.l1_write_policy {
                            L1WritePolicy::WriteThroughNoAllocate => {
                                let _ = c.request(AccessRequest {
                                    line,
                                    is_write: true,
                                    allocate_on_miss: false,
                                    mark_dirty: false,
                                });
                            }
                            L1WritePolicy::WriteBackAllocate => {
                                let _ = c.request(AccessRequest {
                                    line,
                                    is_write: true,
                                    allocate_on_miss: true,
                                    mark_dirty: true,
                                });
                            }
                        }
                    } else {
                        let r = c.request(AccessRequest {
                            line,
                            is_write: false,
                            allocate_on_miss: false,
                            mark_dirty: false,
                        });
                        if !r.hit {
                            c.demand_fill(line);
                        }
                    }
                }
                let (acc, miss) = l1s.iter().fold((0u64, 0u64), |(a, m), c| {
                    (a + c.stats().accesses, m + c.stats().misses)
                });
                if acc == 0 {
                    0.0
                } else {
                    miss as f64 / acc as f64 * 100.0
                }
            })
            .collect()
    }

    /// Independent per-config trace replay through a fixed L1 feeding a
    /// *banked* L2 array (bank = line mod banks), mirroring
    /// `GpuHierarchy::l2_demand` — deliberately not using the bank-folding
    /// equivalence the engine relies on.
    fn direct_l2_series(capture: &CapturedStream, configs: &[SimtConfig]) -> Vec<f64> {
        configs
            .iter()
            .map(|cfg| {
                let stream = derive_l2_stream(capture, &cfg.hierarchy);
                let banks = cfg.hierarchy.l2_banks as u64;
                let bank_cfg = cfg.hierarchy.l2_bank_config().expect("valid sweep config");
                let shift = cfg.hierarchy.l2.line_size.trailing_zeros();
                let mut l2: Vec<Cache> = (0..banks).map(|_| Cache::new(bank_cfg)).collect();
                for &(addr, is_write) in &stream {
                    let line = addr >> shift;
                    let bank = (line % banks) as usize;
                    let _ = l2[bank].request(AccessRequest {
                        line,
                        is_write,
                        allocate_on_miss: true,
                        mark_dirty: is_write,
                    });
                }
                let (acc, miss) = l2.iter().fold((0u64, 0u64), |(a, m), c| {
                    (a + c.stats().accesses, m + c.stats().misses)
                });
                if acc == 0 {
                    0.0
                } else {
                    miss as f64 / acc as f64 * 100.0
                }
            })
            .collect()
    }

    #[test]
    fn plan_accepts_the_stock_lru_sweeps() {
        let l1 = plan_single_pass(&sweeps::l1_sweep(), Metric::L1MissPct).expect("fig6a plans");
        assert_eq!(l1.level, SweptLevel::L1);
        assert_eq!(l1.num_configs(), 30);
        assert_eq!(l1.groups.len(), 2, "two line sizes (32/128)");

        let l2 = plan_single_pass(&sweeps::l2_sweep(), Metric::L2MissPct).expect("fig6b plans");
        assert_eq!(l2.level, SweptLevel::L2);
        assert_eq!(l2.num_configs(), 30);
        assert_eq!(l2.groups.len(), 2, "two line sizes (64/128)");

        let pol =
            plan_single_pass(&sweeps::policy_l1_sweep(), Metric::L1MissPct).expect("fig6e plans");
        assert_eq!(pol.groups.len(), 1, "single 128 B line size");
    }

    #[test]
    fn plan_rejects_unsweepable_grids() {
        // Metric on the non-varied level: configs differ outside the mask.
        assert!(plan_single_pass(&sweeps::l1_sweep(), Metric::L2MissPct).is_none());
        // Prefetchers in the evaluated path.
        assert!(plan_single_pass(&sweeps::l1_prefetch_sweep(), Metric::L1MissPct).is_none());
        assert!(plan_single_pass(&sweeps::l2_prefetch_sweep(), Metric::L2MissPct).is_none());
        // A prefetcher shared by every config still disqualifies.
        let mut with_pf = sweeps::l1_sweep();
        for c in &mut with_pf {
            c.hierarchy.l1_prefetch = Some(StridePrefetcherConfig::default());
        }
        assert!(plan_single_pass(&with_pf, Metric::L1MissPct).is_none());
        // Non-LRU replacement in the swept level.
        let mut non_lru = sweeps::l1_sweep();
        non_lru[3].hierarchy.l1.policy = ReplacementPolicy::Fifo;
        assert!(plan_single_pass(&non_lru, Metric::L1MissPct).is_none());
        // Empty grid.
        assert!(plan_single_pass(&[], Metric::L1MissPct).is_none());
    }

    #[test]
    fn capture_is_deterministic_and_nonempty() {
        let data = prepare("scalarprod", Scale::Tiny, 7);
        let cfg = SimtConfig::default();
        let a = capture_stream(&data.orig_streams, &data.kernel.launch, &cfg);
        let b = capture_stream(&data.orig_streams, &data.kernel.launch, &cfg);
        assert!(!a.accesses.is_empty());
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(
            a.accesses.len() as u64,
            a.schedule.issued_transactions,
            "every issued transaction is captured exactly once"
        );
    }

    #[test]
    fn fig6a_engine_matches_direct_replay_within_1e9() {
        let configs = sweeps::l1_sweep();
        let plan = plan_single_pass(&configs, Metric::L1MissPct).expect("fig6a plans");
        for name in ["kmeans", "bfs"] {
            let data = prepare(name, Scale::Tiny, 42);
            for streams in [
                (&data.orig_streams, &data.kernel.launch),
                (&data.proxy_streams, &data.profile.launch),
            ] {
                let cap = capture_stream(streams.0, streams.1, &plan.capture_cfg);
                let engine = eval_captured(&plan, &cap, &configs);
                let direct = direct_l1_series(&cap, &configs);
                for (i, (e, d)) in engine.values.iter().zip(&direct).enumerate() {
                    assert!(
                        (e - d).abs() < 1e-9,
                        "{name} config {i}: engine {e} vs direct {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn fig6b_engine_matches_direct_replay_within_1e9() {
        let configs = sweeps::l2_sweep();
        let plan = plan_single_pass(&configs, Metric::L2MissPct).expect("fig6b plans");
        for name in ["backprop", "srad"] {
            let data = prepare(name, Scale::Tiny, 42);
            let cap = capture_stream(&data.orig_streams, &data.kernel.launch, &plan.capture_cfg);
            let engine = eval_captured(&plan, &cap, &configs);
            let direct = direct_l2_series(&cap, &configs);
            for (i, (e, d)) in engine.values.iter().zip(&direct).enumerate() {
                assert!(
                    (e - d).abs() < 1e-9,
                    "{name} config {i}: engine {e} vs direct {d}"
                );
            }
        }
    }

    #[test]
    fn write_back_l1_sweep_is_also_exact() {
        let mut configs = sweeps::l1_sweep();
        for c in &mut configs {
            c.hierarchy.l1_write_policy = L1WritePolicy::WriteBackAllocate;
        }
        let plan = plan_single_pass(&configs, Metric::L1MissPct).expect("WB sweep plans");
        let data = prepare("pathfinder", Scale::Tiny, 42);
        let cap = capture_stream(&data.orig_streams, &data.kernel.launch, &plan.capture_cfg);
        let engine = eval_captured(&plan, &cap, &configs);
        assert!(!engine.fell_back, "write-allocate stores never diverge");
        let direct = direct_l1_series(&cap, &configs);
        for (e, d) in engine.values.iter().zip(&direct) {
            assert!((e - d).abs() < 1e-9);
        }
    }

    #[test]
    fn single_pass_comparison_has_sane_shape() {
        let configs = sweeps::l1_sweep();
        let plan = plan_single_pass(&configs, Metric::L1MissPct).expect("fig6a plans");
        let data = prepare("scalarprod", Scale::Tiny, 42);
        let cmp = sweep_benchmark_single_pass(&data, &plan, &configs);
        assert_eq!(cmp.original.len(), configs.len());
        assert_eq!(cmp.proxy.len(), configs.len());
        assert!(cmp.original.iter().all(|v| (0.0..=100.0).contains(v)));
        // Identical geometries at different grid points would be equal;
        // at minimum the series must not be all-zero for a real workload.
        assert!(cmp.original.iter().any(|&v| v > 0.0));
    }
}
