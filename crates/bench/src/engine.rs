//! Single-pass multi-configuration sweep engine.
//!
//! `sweep_benchmark` evaluates a figure's configuration grid with `2 × N`
//! independent full simulations per benchmark — each one re-running the
//! warp scheduler and the entire hierarchy. But the pure-LRU,
//! no-prefetcher sweeps (fig6a, fig6b, fig6e) only vary the geometry of
//! *one* cache level, and for those the Mattson stack-distance result
//! ([`gmap_memsim::stackdist`]) yields exact hit/miss counts for every
//! geometry sharing a line size from **one** pass over the access stream.
//!
//! The engine therefore works trace-driven, the same methodology as the
//! CMP$im-based simulator the paper validates against:
//!
//! 1. **Capture** — run the full scheduler + hierarchy *once* per
//!    benchmark at the reference configuration (Table 2 baseline for the
//!    swept level, the sweep's shared values for everything else) and
//!    record the per-core L1 demand stream in issue order
//!    ([`capture_stream`]).
//! 2. **Plan** — check that every config in the sweep differs from the
//!    reference only in the swept cache's geometry, replacement policy
//!    (LRU or FIFO), and that level's prefetcher; group configs by
//!    (line size, policy, prefetcher) ([`plan_single_pass`]).
//! 3. **Evaluate** — per group, convert the byte-address stream to line
//!    indices and run the matching evaluator ([`eval_captured`]):
//!    * pure-LRU groups (fig6a/6b/6e-LRU): the Mattson stack-distance
//!      pass, per-core for private L1s or over a derived L2 stream
//!      (replay the fixed L1 once, forward its misses and
//!      write-throughs) for the banked shared L2;
//!    * FIFO groups (fig6e's FIFO column): the insertion-order variant
//!      ([`gmap_memsim::stackdist::evaluate_fifo_multi`]);
//!    * L1 stride-prefetcher groups (fig6c): one
//!      [`StridePrefetcher`] replay per (core, prefetcher config)
//!      produces a geometry-independent [`PrefetchSchedule`] — the
//!      hierarchy trains it on every demand load, hit or miss — which
//!      the prefetch-composed stack-distance pass merges with the
//!      demand stream;
//!    * L2 stream-prefetcher groups (fig6d): the stream prefetcher
//!      trains on demand *misses*, which are geometry-dependent, so no
//!      shared schedule exists; each config replays the once-derived L2
//!      stream through a folded bank cache + [`StreamPrefetcher`] —
//!      still eliding the scheduler, the L1s and the MSHRs, which
//!      dominate the direct path's cost.
//!
//! Anything the plan can't prove sweepable — replacement policies other
//! than LRU/FIFO, prefetcher parameters outside the supported envelope,
//! configs that vary more than one level — falls back to the direct
//! path (`sweep_benchmark`), unchanged.
//!
//! Figure binaries that share a reference configuration (all stock
//! sweeps mask to the Table 2 baseline) also share the *capture*:
//! [`capture_stream_cached`] keys captures by
//! `gmap_core::cachekey` over (stream source, reference config) in a
//! bounded process-wide cache, so e.g. fig6a and fig6c capture each
//! benchmark once between them.
//!
//! Capturing at one reference configuration means the warp interleaving
//! is that of the reference run: the scheduler's feedback loop (latency →
//! readiness → issue order) is evaluated once, not per config. Within
//! that captured stream the per-config miss rates are *exact* — equal to
//! replaying the stream through each configuration's caches — which is
//! what the engine's tests assert to 1e-9 against an independent
//! hierarchy-mirroring replay.

use crate::{BenchData, Metric};
use gmap_core::{cachekey, compare_series, BenchmarkComparison, SimtConfig};
use gmap_gpu::hierarchy::LaunchConfig;
use gmap_gpu::schedule::{run_schedule, MemoryModel, ScheduleOutcome, WarpStream};
use gmap_memsim::cache::{AccessRequest, Cache, CacheConfig, ReplacementPolicy};
use gmap_memsim::hierarchy::{GpuHierarchy, HierarchyConfig, L1WritePolicy, TraceCapture};
use gmap_memsim::prefetch::{
    StreamPrefetcher, StreamPrefetcherConfig, StridePrefetcher, StridePrefetcherConfig,
};
use gmap_memsim::stackdist::{
    evaluate_fifo_multi, evaluate_lru_multi, evaluate_lru_prefetch_multi, GeomCounts, LineAccess,
    PrefetchSchedule, WriteMode,
};
use gmap_trace::record::{AccessKind, ByteAddr, CoreId, Pc};
use gmap_trace::soa::AccessColumns;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// One captured L1-level demand transaction, viewed row-wise.
///
/// The capture itself lives in a structure-of-arrays
/// [`AccessColumns`]; this view (an alias of
/// [`gmap_trace::soa::AccessRecord`]) preserves the old per-record API —
/// `core` is the issuing core folded onto the hierarchy's core count,
/// `addr` the coalesced byte address, `pc` the issuing static
/// instruction (the stride prefetcher trains per PC), `is_write` the
/// store flag.
pub use gmap_trace::soa::AccessRecord as CapturedAccess;

/// The L1 demand stream of one scheduled run, in global issue order.
#[derive(Debug, Clone)]
pub struct CapturedStream {
    /// Every coalesced transaction the scheduler issued, in order,
    /// stored column-wise ([`AccessColumns`]). Iterating `&accesses`
    /// yields [`CapturedAccess`] views, so record-oriented call sites
    /// keep working; the hot passes read individual columns.
    pub accesses: AccessColumns,
    /// Number of cores (= number of private L1s).
    pub cores: usize,
    /// Scheduling statistics of the capture run (`SchedP_self` feeds the
    /// fig6e policy replay).
    pub schedule: ScheduleOutcome,
}

/// A [`MemoryModel`] that records every transaction while delegating to
/// the real hierarchy, so the capture run sees exactly the latencies (and
/// thus the interleaving) of a normal reference simulation.
struct Recorder {
    hier: GpuHierarchy,
    cores: usize,
    log: AccessColumns,
}

impl MemoryModel for Recorder {
    fn access(
        &mut self,
        core: CoreId,
        pc: Pc,
        addr: ByteAddr,
        kind: AccessKind,
        cycle: u64,
    ) -> u64 {
        self.log.push(CapturedAccess {
            core: ((core.0 as usize) % self.cores) as u16,
            addr: addr.0,
            pc: pc.0,
            is_write: matches!(kind, AccessKind::Write),
        });
        self.hier.access(core, pc, addr, kind, cycle)
    }
}

/// Runs the scheduler + hierarchy once at `cfg` and captures the L1
/// demand stream. Trace capture is forced off — the engine records at the
/// L1 boundary itself and needs no DRAM-level trace.
pub fn capture_stream(
    streams: &[WarpStream],
    launch: &LaunchConfig,
    cfg: &SimtConfig,
) -> CapturedStream {
    let cfg = cfg.with_trace_capture(TraceCapture::Off);
    let cores = cfg.hierarchy.num_cores as usize;
    let hier = GpuHierarchy::new(cfg.hierarchy).expect("capture configuration is valid");
    let mut rec = Recorder {
        hier,
        cores,
        log: AccessColumns::new(),
    };
    let schedule = run_schedule(streams, launch, &cfg.gpu, cfg.policy, &mut rec, cfg.seed);
    CapturedStream {
        accesses: rec.log,
        cores,
        schedule,
    }
}

/// Which cache level a planned sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweptLevel {
    /// Per-core private L1s vary; everything else is fixed.
    L1,
    /// The shared banked L2 varies; everything else is fixed.
    L2,
}

/// Configs sharing one (line size, replacement policy, prefetcher)
/// tuple, evaluated together from the shared capture.
#[derive(Debug, Clone)]
pub struct SweepGroup {
    /// The group's shared line size in bytes.
    pub line_size: u64,
    /// The group's shared replacement policy at the swept level.
    pub policy: ReplacementPolicy,
    /// Shared L1 stride-prefetcher config (L1 sweeps only).
    pub l1_prefetch: Option<StridePrefetcherConfig>,
    /// Shared L2 stream-prefetcher config (L2 sweeps only).
    pub l2_prefetch: Option<StreamPrefetcherConfig>,
    /// Indices into the planned config slice, in input order.
    pub config_indices: Vec<usize>,
}

/// A proven-sweepable configuration grid.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// The varied cache level.
    pub level: SweptLevel,
    /// The reference configuration for the capture run: the sweep's
    /// shared fields with the swept level pinned to the Table 2 baseline.
    pub capture_cfg: SimtConfig,
    /// Line-size groups covering every config index exactly once.
    pub groups: Vec<SweepGroup>,
}

impl SweepPlan {
    /// Total number of planned configurations.
    pub fn num_configs(&self) -> usize {
        self.groups.iter().map(|g| g.config_indices.len()).sum()
    }
}

/// Decides whether `configs` can be evaluated by the single-pass engine
/// for `metric`, and if so how. Returns `None` — meaning "use the direct
/// per-config path" — unless all of the following hold:
///
/// - every config is identical except for the metric's cache level
///   (`hierarchy.l1` for [`Metric::L1MissPct`], `hierarchy.l2` for
///   [`Metric::L2MissPct`]) and that level's prefetcher (`l1_prefetch`
///   for L1 sweeps, `l2_prefetch` for L2 sweeps);
/// - every swept geometry uses LRU or FIFO replacement, and geometries
///   with a prefetcher attached use LRU (the stock prefetcher sweeps
///   are pure-LRU; FIFO + prefetch takes the direct path);
/// - every swept prefetcher config is inside the supported envelope
///   (`is_supported`), so prefetcher construction cannot panic on
///   user-supplied grids;
/// - for L2 sweeps, the L1 has no prefetcher (its fills generate
///   geometry-independent L2 traffic only when absent) and the banked
///   array folds into an equivalent single cache of the per-bank
///   geometry (power-of-two banks, at least as many sets per bank as
///   banks — true for every stock sweep).
pub fn plan_single_pass(configs: &[SimtConfig], metric: Metric) -> Option<SweepPlan> {
    let first = *configs.first()?;
    let level = match metric {
        Metric::L1MissPct => SweptLevel::L1,
        Metric::L2MissPct => SweptLevel::L2,
    };
    let baseline = HierarchyConfig::fermi_baseline();
    // Mask out the swept level and its prefetcher (and the trace knob,
    // which never affects miss rates): what remains must be
    // bit-identical across the sweep.
    let mask = |mut c: SimtConfig| -> SimtConfig {
        c.hierarchy.trace_capture = TraceCapture::Off;
        match level {
            SweptLevel::L1 => {
                c.hierarchy.l1 = baseline.l1;
                c.hierarchy.l1_prefetch = None;
            }
            SweptLevel::L2 => {
                c.hierarchy.l2 = baseline.l2;
                c.hierarchy.l2_prefetch = None;
            }
        }
        c
    };
    let reference = mask(first);
    if configs.iter().any(|c| mask(*c) != reference) {
        return None;
    }
    let sweepable_policy =
        |p: ReplacementPolicy| matches!(p, ReplacementPolicy::Lru | ReplacementPolicy::Fifo);
    match level {
        SweptLevel::L1 => {
            for c in configs {
                if !sweepable_policy(c.hierarchy.l1.policy) {
                    return None;
                }
                if let Some(pf) = c.hierarchy.l1_prefetch {
                    if !pf.is_supported() || c.hierarchy.l1.policy != ReplacementPolicy::Lru {
                        return None;
                    }
                }
            }
        }
        SweptLevel::L2 => {
            if reference.hierarchy.l1_prefetch.is_some() {
                return None;
            }
            let banks = reference.hierarchy.l2_banks as u64;
            if !banks.is_power_of_two() {
                return None;
            }
            for c in configs {
                if !sweepable_policy(c.hierarchy.l2.policy) {
                    return None;
                }
                if let Some(pf) = c.hierarchy.l2_prefetch {
                    if !pf.is_supported() || c.hierarchy.l2.policy != ReplacementPolicy::Lru {
                        return None;
                    }
                }
                let Ok(bank) = c.hierarchy.l2_bank_config() else {
                    return None;
                };
                if bank.num_sets() < banks {
                    return None;
                }
            }
        }
    }
    let mut groups: Vec<SweepGroup> = Vec::new();
    for (i, c) in configs.iter().enumerate() {
        let (line, policy, l1_pf, l2_pf) = match level {
            SweptLevel::L1 => (
                c.hierarchy.l1.line_size,
                c.hierarchy.l1.policy,
                c.hierarchy.l1_prefetch,
                None,
            ),
            SweptLevel::L2 => (
                c.hierarchy.l2.line_size,
                c.hierarchy.l2.policy,
                None,
                c.hierarchy.l2_prefetch,
            ),
        };
        match groups.iter_mut().find(|g| {
            g.line_size == line
                && g.policy == policy
                && g.l1_prefetch == l1_pf
                && g.l2_prefetch == l2_pf
        }) {
            Some(g) => g.config_indices.push(i),
            None => groups.push(SweepGroup {
                line_size: line,
                policy,
                l1_prefetch: l1_pf,
                l2_prefetch: l2_pf,
                config_indices: vec![i],
            }),
        }
    }
    Some(SweepPlan {
        level,
        capture_cfg: reference,
        groups,
    })
}

/// Result of evaluating a planned sweep over one captured stream.
#[derive(Debug, Clone)]
pub struct EvalSeries {
    /// Metric value in percent per configuration, aligned with the config
    /// slice the plan was built from.
    pub values: Vec<f64>,
    /// Whether any group hit the stack-distance evaluator's internal
    /// exact per-config replay (divergent no-allocate store). Counts stay
    /// exact either way; this only marks the slower path.
    pub fell_back: bool,
}

/// Evaluates every planned configuration against one captured stream.
pub fn eval_captured(
    plan: &SweepPlan,
    capture: &CapturedStream,
    configs: &[SimtConfig],
) -> EvalSeries {
    match plan.level {
        SweptLevel::L1 => eval_l1(plan, capture, configs),
        SweptLevel::L2 => eval_l2(plan, capture, configs),
    }
}

/// Replays one core's demand stream through a fresh stride-prefetcher
/// *table* and records, per access, the confident `(line, stride)` pair
/// candidates would be expanded from — `observe(pc, line)` on every
/// demand load (hit or miss), nothing on stores. Training depends only
/// on `table_size` and `min_confidence`, so one trace serves every
/// config in that class regardless of `degree`/`distance` (fig6c's 24
/// prefetcher groups share two trajectories).
fn stride_trace(
    table_size: u32,
    min_confidence: u32,
    stream: &[LineAccess],
    pcs: &[u64],
) -> Vec<Option<(u64, i64)>> {
    let mut pf = StridePrefetcher::new(StridePrefetcherConfig {
        table_size,
        degree: 1,
        distance: 1,
        min_confidence,
    });
    stream
        .iter()
        .zip(pcs)
        .map(|(acc, &pc)| {
            if acc.is_write {
                None
            } else {
                pf.observe_stride(pc, acc.line)
            }
        })
        .collect()
}

/// Expands a recorded training trace into the candidate schedule one
/// concrete prefetcher config would issue, via the same
/// [`StridePrefetcherConfig::expand_into`] the live prefetcher uses.
/// Fills `sched` in place so one buffer serves every config in a class.
fn schedule_from_trace(
    cfg: StridePrefetcherConfig,
    trace: &[Option<(u64, i64)>],
    sched: &mut PrefetchSchedule,
) {
    sched.clear();
    let mut cands = Vec::new();
    for t in trace {
        cands.clear();
        if let Some((line, stride)) = *t {
            cfg.expand_into(line, stride, &mut cands);
        }
        sched.push(&cands);
    }
}

/// Splits the captured stream into per-core line streams at one line
/// size. Private per-core L1s are evaluated core by core and the
/// counters summed, exactly as the hierarchy merges per-core stats.
///
/// Columnar: the line addresses come out of the batched shift kernel over
/// the address column, and the scatter touches only the core and write
/// columns — the PC column never enters the cache.
fn split_per_core(capture: &CapturedStream, shift: u32) -> Vec<Vec<LineAccess>> {
    let mut per_core: Vec<Vec<LineAccess>> = vec![Vec::new(); capture.cores];
    let mut lines: Vec<u64> = Vec::new();
    capture
        .accesses
        .lines_into(shift, gmap_trace::default_mode(), &mut lines);
    let cores = capture.accesses.cores();
    let writes = capture.accesses.writes();
    for i in 0..lines.len() {
        per_core[cores[i] as usize].push(LineAccess::new(lines[i], writes[i]));
    }
    per_core
}

fn eval_l1(plan: &SweepPlan, capture: &CapturedStream, configs: &[SimtConfig]) -> EvalSeries {
    let mode = match plan.capture_cfg.hierarchy.l1_write_policy {
        L1WritePolicy::WriteThroughNoAllocate => WriteMode::NoAllocate,
        L1WritePolicy::WriteBackAllocate => WriteMode::Allocate,
    };
    let mut values = vec![0.0; configs.len()];
    let mut fell_back = false;
    // Hoisted across groups: prefetcher sweeps put many groups on one
    // line size (fig6c has 24), and the per-core split only depends on
    // it. PCs do not depend on the line size at all.
    let mut splits: HashMap<u32, Vec<Vec<LineAccess>>> = HashMap::new();
    let mut pcs_split: Option<Vec<Vec<u64>>> = None;
    let group_geoms = |group: &SweepGroup| -> Vec<CacheConfig> {
        group
            .config_indices
            .iter()
            .map(|&i| configs[i].hierarchy.l1)
            .collect()
    };

    // Plain groups: one multi-geometry stack-distance pass per core.
    for group in plan.groups.iter().filter(|g| g.l1_prefetch.is_none()) {
        let shift = group.line_size.trailing_zeros();
        let geoms = group_geoms(group);
        let per_core = splits
            .entry(shift)
            .or_insert_with(|| split_per_core(capture, shift));
        let mut totals = vec![GeomCounts::default(); geoms.len()];
        for stream in per_core.iter().filter(|s| !s.is_empty()) {
            let r = match group.policy {
                ReplacementPolicy::Fifo => evaluate_fifo_multi(&geoms, stream, mode),
                _ => evaluate_lru_multi(&geoms, stream, mode),
            }
            .expect("plan guarantees a uniform line-size/policy group");
            fell_back |= r.fell_back;
            for (t, c) in totals.iter_mut().zip(&r.counts) {
                t.merge(c);
            }
        }
        for (k, &i) in group.config_indices.iter().enumerate() {
            values[i] = totals[k].miss_rate() * 100.0;
        }
    }

    // Prefetch groups: the stride prefetcher is per core, like the L1 it
    // feeds, and its training trajectory depends only on the line size,
    // table size, and confidence threshold. Groups differing only in
    // degree/distance therefore share one training replay per core and
    // expand their own candidate schedules from the recorded trace.
    type TrainingClass = (u32, u32, u32);
    let mut classes: Vec<(TrainingClass, Vec<&SweepGroup>)> = Vec::new();
    for group in plan.groups.iter().filter(|g| g.l1_prefetch.is_some()) {
        let pf = group.l1_prefetch.expect("filtered on l1_prefetch");
        let key = (
            group.line_size.trailing_zeros(),
            pf.table_size,
            pf.min_confidence,
        );
        match classes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(group),
            None => classes.push((key, vec![group])),
        }
    }
    for ((shift, table_size, min_confidence), groups) in classes {
        let per_core = splits
            .entry(shift)
            .or_insert_with(|| split_per_core(capture, shift));
        let per_core_pcs = pcs_split.get_or_insert_with(|| {
            let mut pcs: Vec<Vec<u64>> = vec![Vec::new(); capture.cores];
            let cores = capture.accesses.cores();
            for (&core, &pc) in cores.iter().zip(capture.accesses.pcs()) {
                pcs[core as usize].push(pc);
            }
            pcs
        });
        let geoms: Vec<Vec<CacheConfig>> = groups.iter().map(|g| group_geoms(g)).collect();
        let mut totals: Vec<Vec<GeomCounts>> = geoms
            .iter()
            .map(|g| vec![GeomCounts::default(); g.len()])
            .collect();
        let mut sched = PrefetchSchedule::new();
        for (core, stream) in per_core.iter().enumerate().filter(|(_, s)| !s.is_empty()) {
            let trace = stride_trace(table_size, min_confidence, stream, &per_core_pcs[core]);
            for (gi, group) in groups.iter().enumerate() {
                let pf = group.l1_prefetch.expect("prefetch class");
                schedule_from_trace(pf, &trace, &mut sched);
                let r = evaluate_lru_prefetch_multi(&geoms[gi], stream, &sched, mode)
                    .expect("plan guarantees a uniform line-size/policy group");
                fell_back |= r.fell_back;
                for (t, c) in totals[gi].iter_mut().zip(&r.counts) {
                    t.merge(c);
                }
            }
        }
        for (gi, group) in groups.iter().enumerate() {
            for (k, &i) in group.config_indices.iter().enumerate() {
                values[i] = totals[gi][k].miss_rate() * 100.0;
            }
        }
    }
    EvalSeries { values, fell_back }
}

/// Replays the captured stream through the sweep's *fixed* L1s once and
/// returns the byte-address stream that reaches the shared L2, in issue
/// order — demand-read misses, write-throughs (or write-back victims and
/// write-allocate fetches), exactly mirroring `GpuHierarchy`'s L2 demand
/// path.
fn derive_l2_stream(capture: &CapturedStream, hier: &HierarchyConfig) -> Vec<(u64, bool)> {
    let l1_cfg = hier.l1;
    let shift = l1_cfg.line_size.trailing_zeros();
    let mut l1s: Vec<Cache> = (0..capture.cores).map(|_| Cache::new(l1_cfg)).collect();
    let mut out = Vec::new();
    for a in &capture.accesses {
        let line = a.addr >> shift;
        let l1 = &mut l1s[a.core as usize];
        if a.is_write {
            match hier.l1_write_policy {
                L1WritePolicy::WriteThroughNoAllocate => {
                    let _ = l1.request(AccessRequest {
                        line,
                        is_write: true,
                        allocate_on_miss: false,
                        mark_dirty: false,
                    });
                    out.push((a.addr, true));
                }
                L1WritePolicy::WriteBackAllocate => {
                    let r = l1.request(AccessRequest {
                        line,
                        is_write: true,
                        allocate_on_miss: true,
                        mark_dirty: true,
                    });
                    if let Some(victim) = r.writeback {
                        out.push((victim << shift, true));
                    }
                    if !r.hit {
                        out.push((a.addr, false));
                    }
                }
            }
        } else {
            let r = l1.request(AccessRequest {
                line,
                is_write: false,
                allocate_on_miss: false,
                mark_dirty: false,
            });
            if !r.hit {
                out.push((a.addr, false));
                if let Some(victim) = l1.demand_fill(line) {
                    out.push((victim << shift, true));
                }
            }
        }
    }
    out
}

/// Replays the derived L2 stream through one folded bank cache plus a
/// [`StreamPrefetcher`], mirroring `GpuHierarchy::l2_demand`: the
/// prefetcher trains on demand misses (loads *and* stores), and each
/// candidate is probed and conditionally prefetch-filled. Exact by the
/// same bank-folding bijection as the demand-only path — a folded probe
/// answers exactly what the candidate's home bank would.
fn replay_l2_prefetch(
    bank_cfg: CacheConfig,
    pf_cfg: StreamPrefetcherConfig,
    stream: &[LineAccess],
) -> f64 {
    let mut cache = Cache::new(bank_cfg);
    let mut pf = StreamPrefetcher::new(pf_cfg);
    for acc in stream {
        let out = cache.request(AccessRequest {
            line: acc.line,
            is_write: acc.is_write,
            allocate_on_miss: true,
            mark_dirty: acc.is_write,
        });
        if !out.hit {
            for cand in pf.observe(acc.line) {
                if !cache.probe(cand) {
                    cache.prefetch_fill(cand);
                }
            }
        }
    }
    let s = cache.stats();
    if s.accesses == 0 {
        0.0
    } else {
        s.misses as f64 / s.accesses as f64 * 100.0
    }
}

fn eval_l2(plan: &SweepPlan, capture: &CapturedStream, configs: &[SimtConfig]) -> EvalSeries {
    // The L1 is fixed across an L2 sweep (and has no prefetcher — the
    // plan checked), so the stream feeding the L2 is derived once and
    // shared by every group, with or without an L2 prefetcher.
    let l2_stream = derive_l2_stream(capture, &plan.capture_cfg.hierarchy);
    let mut values = vec![0.0; configs.len()];
    let mut fell_back = false;
    // Hoisted across groups: prefetcher sweeps put many groups on one
    // line size (fig6d has 12 per line size).
    let mut shifted: HashMap<u32, Vec<LineAccess>> = HashMap::new();
    for group in &plan.groups {
        let shift = group.line_size.trailing_zeros();
        let stream = shifted.entry(shift).or_insert_with(|| {
            l2_stream
                .iter()
                .map(|&(addr, is_write)| LineAccess::new(addr >> shift, is_write))
                .collect()
        });
        if let Some(pf_cfg) = group.l2_prefetch {
            // The stream prefetcher trains on geometry-dependent demand
            // misses, so no shared candidate schedule exists; replay the
            // derived stream per config (still one capture, no
            // scheduler/L1/MSHR work per config).
            for &i in &group.config_indices {
                let bank_cfg = configs[i]
                    .hierarchy
                    .l2_bank_config()
                    .expect("plan verified the bank split");
                values[i] = replay_l2_prefetch(bank_cfg, pf_cfg, stream);
            }
            continue;
        }
        // Low-bit banking with bank bits inside the set-index bits makes
        // the banked array behave exactly like one cache of the per-bank
        // geometry (the plan verified the preconditions).
        let geoms: Vec<CacheConfig> = group
            .config_indices
            .iter()
            .map(|&i| {
                configs[i]
                    .hierarchy
                    .l2_bank_config()
                    .expect("plan verified the bank split")
            })
            .collect();
        // The L2 is write-back write-allocate: stores allocate like loads.
        let r = match group.policy {
            ReplacementPolicy::Fifo => evaluate_fifo_multi(&geoms, stream, WriteMode::Allocate),
            _ => evaluate_lru_multi(&geoms, stream, WriteMode::Allocate),
        }
        .expect("plan guarantees a uniform line-size/policy group");
        fell_back |= r.fell_back;
        for (k, &i) in group.config_indices.iter().enumerate() {
            values[i] = r.counts[k].miss_rate() * 100.0;
        }
    }
    EvalSeries { values, fell_back }
}

/// Bounded process-wide capture cache: figure binaries (and service
/// requests) whose sweeps mask to the same reference configuration share
/// one capture per stream source instead of re-running the scheduler.
struct CaptureCacheInner {
    map: HashMap<String, Arc<CapturedStream>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

/// Maximum number of cached captures; every stock sweep produces two per
/// benchmark (original + proxy), so this holds a full 18-benchmark
/// figure run.
const CAPTURE_CACHE_CAP: usize = 48;

fn capture_cache() -> &'static Mutex<CaptureCacheInner> {
    static CACHE: OnceLock<Mutex<CaptureCacheInner>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(CaptureCacheInner {
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        })
    })
}

/// Counters of the process-wide capture cache (see
/// [`capture_stream_cached`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran a fresh capture.
    pub misses: u64,
    /// Captures currently cached.
    pub entries: usize,
}

/// Current capture-cache counters.
pub fn capture_cache_stats() -> CaptureCacheStats {
    let c = capture_cache().lock().expect("capture cache lock");
    CaptureCacheStats {
        hits: c.hits,
        misses: c.misses,
        entries: c.map.len(),
    }
}

/// Drops every cached capture and resets the counters. The perf tracker
/// clears between timed sections so cross-figure reuse cannot inflate a
/// measured speedup.
pub fn capture_cache_clear() {
    let mut c = capture_cache().lock().expect("capture cache lock");
    c.map.clear();
    c.order.clear();
    c.hits = 0;
    c.misses = 0;
}

/// [`capture_stream`] with cross-figure memoization. `source` must
/// uniquely identify the *stream content* (e.g. benchmark name + scale +
/// seed + original/proxy, or a profile content key); the reference
/// configuration is folded into the cache key via its canonical JSON, so
/// any sweep masking to the same reference reuses the capture. Capture
/// runs happen outside the lock — two threads racing on the same key may
/// both compute (the result is deterministic and identical), but nobody
/// blocks behind a multi-second capture.
pub fn capture_stream_cached(
    source: &str,
    streams: &[WarpStream],
    launch: &LaunchConfig,
    cfg: &SimtConfig,
) -> Arc<CapturedStream> {
    let normalized = cfg.with_trace_capture(TraceCapture::Off);
    let key = format!("{source}|{}", cachekey::key_of(&normalized));
    {
        let mut c = capture_cache().lock().expect("capture cache lock");
        if let Some(hit) = c.map.get(&key).cloned() {
            c.hits += 1;
            return hit;
        }
    }
    let fresh = Arc::new(capture_stream(streams, launch, cfg));
    let mut c = capture_cache().lock().expect("capture cache lock");
    c.misses += 1;
    if let Some(existing) = c.map.get(&key).cloned() {
        // A racing thread computed the same (deterministic) capture.
        return existing;
    }
    c.map.insert(key.clone(), Arc::clone(&fresh));
    c.order.push_back(key);
    while c.map.len() > CAPTURE_CACHE_CAP {
        if let Some(old) = c.order.pop_front() {
            c.map.remove(&old);
        }
    }
    fresh
}

/// Sweeps one benchmark through the engine: two capture runs (original
/// and proxy, memoized process-wide via [`capture_stream_cached`]) plus
/// one evaluator pass per plan group, instead of `2 × N` full
/// simulations.
pub fn sweep_benchmark_single_pass(
    data: &BenchData,
    plan: &SweepPlan,
    configs: &[SimtConfig],
) -> BenchmarkComparison {
    let orig = capture_stream_cached(
        &data.capture_source(false),
        &data.orig_streams,
        &data.kernel.launch,
        &plan.capture_cfg,
    );
    let proxy = capture_stream_cached(
        &data.capture_source(true),
        &data.proxy_streams,
        &data.profile.launch,
        &plan.capture_cfg,
    );
    let o = eval_captured(plan, &orig, configs);
    let p = eval_captured(plan, &proxy, configs);
    compare_series(&data.kernel.name, o.values, p.values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prepare, sweeps};
    use gmap_gpu::workloads::Scale;
    use gmap_memsim::prefetch::StridePrefetcherConfig;

    /// Independent per-config trace replay of the captured stream through
    /// per-core L1 caches, mirroring `GpuHierarchy`'s L1 demand path
    /// structurally (separate `request` + `demand_fill`, hierarchy write
    /// flags, per-core stride prefetchers with probe-then-fill candidate
    /// installation in issue order) rather than going through the
    /// stack-distance code.
    fn direct_l1_prefetch_series(capture: &CapturedStream, configs: &[SimtConfig]) -> Vec<f64> {
        configs
            .iter()
            .map(|cfg| {
                let shift = cfg.hierarchy.l1.line_size.trailing_zeros();
                let mut l1s: Vec<Cache> = (0..capture.cores)
                    .map(|_| Cache::new(cfg.hierarchy.l1))
                    .collect();
                let mut pfs: Vec<Option<StridePrefetcher>> = (0..capture.cores)
                    .map(|_| cfg.hierarchy.l1_prefetch.map(StridePrefetcher::new))
                    .collect();
                for a in &capture.accesses {
                    let line = a.addr >> shift;
                    let core = a.core as usize;
                    if a.is_write {
                        let c = &mut l1s[core];
                        match cfg.hierarchy.l1_write_policy {
                            L1WritePolicy::WriteThroughNoAllocate => {
                                let _ = c.request(AccessRequest {
                                    line,
                                    is_write: true,
                                    allocate_on_miss: false,
                                    mark_dirty: false,
                                });
                            }
                            L1WritePolicy::WriteBackAllocate => {
                                let _ = c.request(AccessRequest {
                                    line,
                                    is_write: true,
                                    allocate_on_miss: true,
                                    mark_dirty: true,
                                });
                            }
                        }
                    } else {
                        let hit = l1s[core]
                            .request(AccessRequest {
                                line,
                                is_write: false,
                                allocate_on_miss: false,
                                mark_dirty: false,
                            })
                            .hit;
                        // `l1_prefetch` runs after every demand-load
                        // lookup, before the demand fill.
                        if let Some(pf) = pfs[core].as_mut() {
                            for cand in pf.observe(a.pc, line) {
                                if !l1s[core].probe(cand) {
                                    l1s[core].prefetch_fill(cand);
                                }
                            }
                        }
                        if !hit {
                            l1s[core].demand_fill(line);
                        }
                    }
                }
                let (acc, miss) = l1s.iter().fold((0u64, 0u64), |(a, m), c| {
                    (a + c.stats().accesses, m + c.stats().misses)
                });
                if acc == 0 {
                    0.0
                } else {
                    miss as f64 / acc as f64 * 100.0
                }
            })
            .collect()
    }

    /// Independent per-config trace replay of the captured stream through
    /// per-core L1 caches, mirroring `GpuHierarchy`'s L1 demand path
    /// structurally (separate `request` + `demand_fill`, hierarchy write
    /// flags) rather than going through the stack-distance code.
    fn direct_l1_series(capture: &CapturedStream, configs: &[SimtConfig]) -> Vec<f64> {
        configs
            .iter()
            .map(|cfg| {
                let shift = cfg.hierarchy.l1.line_size.trailing_zeros();
                let mut l1s: Vec<Cache> = (0..capture.cores)
                    .map(|_| Cache::new(cfg.hierarchy.l1))
                    .collect();
                for a in &capture.accesses {
                    let line = a.addr >> shift;
                    let c = &mut l1s[a.core as usize];
                    if a.is_write {
                        match cfg.hierarchy.l1_write_policy {
                            L1WritePolicy::WriteThroughNoAllocate => {
                                let _ = c.request(AccessRequest {
                                    line,
                                    is_write: true,
                                    allocate_on_miss: false,
                                    mark_dirty: false,
                                });
                            }
                            L1WritePolicy::WriteBackAllocate => {
                                let _ = c.request(AccessRequest {
                                    line,
                                    is_write: true,
                                    allocate_on_miss: true,
                                    mark_dirty: true,
                                });
                            }
                        }
                    } else {
                        let r = c.request(AccessRequest {
                            line,
                            is_write: false,
                            allocate_on_miss: false,
                            mark_dirty: false,
                        });
                        if !r.hit {
                            c.demand_fill(line);
                        }
                    }
                }
                let (acc, miss) = l1s.iter().fold((0u64, 0u64), |(a, m), c| {
                    (a + c.stats().accesses, m + c.stats().misses)
                });
                if acc == 0 {
                    0.0
                } else {
                    miss as f64 / acc as f64 * 100.0
                }
            })
            .collect()
    }

    /// Independent per-config trace replay through a fixed L1 feeding a
    /// *banked* L2 array (bank = line mod banks) with an optional shared
    /// stream prefetcher, mirroring `GpuHierarchy::l2_demand` —
    /// deliberately not using the bank-folding equivalence the engine
    /// relies on.
    fn direct_l2_series(capture: &CapturedStream, configs: &[SimtConfig]) -> Vec<f64> {
        configs
            .iter()
            .map(|cfg| {
                let stream = derive_l2_stream(capture, &cfg.hierarchy);
                let banks = cfg.hierarchy.l2_banks as u64;
                let bank_cfg = cfg.hierarchy.l2_bank_config().expect("valid sweep config");
                let shift = cfg.hierarchy.l2.line_size.trailing_zeros();
                let mut l2: Vec<Cache> = (0..banks).map(|_| Cache::new(bank_cfg)).collect();
                let mut pf = cfg.hierarchy.l2_prefetch.map(StreamPrefetcher::new);
                for &(addr, is_write) in &stream {
                    let line = addr >> shift;
                    let bank = (line % banks) as usize;
                    let out = l2[bank].request(AccessRequest {
                        line,
                        is_write,
                        allocate_on_miss: true,
                        mark_dirty: is_write,
                    });
                    if !out.hit {
                        if let Some(pf) = pf.as_mut() {
                            for cand in pf.observe(line) {
                                let b = (cand % banks) as usize;
                                if !l2[b].probe(cand) {
                                    l2[b].prefetch_fill(cand);
                                }
                            }
                        }
                    }
                }
                let (acc, miss) = l2.iter().fold((0u64, 0u64), |(a, m), c| {
                    (a + c.stats().accesses, m + c.stats().misses)
                });
                if acc == 0 {
                    0.0
                } else {
                    miss as f64 / acc as f64 * 100.0
                }
            })
            .collect()
    }

    #[test]
    fn plan_accepts_the_stock_lru_sweeps() {
        let l1 = plan_single_pass(&sweeps::l1_sweep(), Metric::L1MissPct).expect("fig6a plans");
        assert_eq!(l1.level, SweptLevel::L1);
        assert_eq!(l1.num_configs(), 30);
        assert_eq!(l1.groups.len(), 2, "two line sizes (32/128)");

        let l2 = plan_single_pass(&sweeps::l2_sweep(), Metric::L2MissPct).expect("fig6b plans");
        assert_eq!(l2.level, SweptLevel::L2);
        assert_eq!(l2.num_configs(), 30);
        assert_eq!(l2.groups.len(), 2, "two line sizes (64/128)");

        let pol =
            plan_single_pass(&sweeps::policy_l1_sweep(), Metric::L1MissPct).expect("fig6e plans");
        assert_eq!(pol.groups.len(), 1, "single 128 B line size");
    }

    #[test]
    fn plan_accepts_the_prefetcher_and_policy_sweeps() {
        // fig6c: every distinct stride-prefetcher config is its own group.
        let c =
            plan_single_pass(&sweeps::l1_prefetch_sweep(), Metric::L1MissPct).expect("fig6c plans");
        assert_eq!(c.level, SweptLevel::L1);
        assert_eq!(c.num_configs(), sweeps::l1_prefetch_sweep().len());
        assert!(c.groups.iter().all(|g| g.l1_prefetch.is_some()));
        assert_eq!(c.groups.len(), 24, "24 (degree, distance, table) combos");
        assert!(
            c.capture_cfg.hierarchy.l1_prefetch.is_none(),
            "the capture runs without the swept prefetcher"
        );

        // fig6d: stream-prefetcher groups keyed by (line size, pf).
        let d =
            plan_single_pass(&sweeps::l2_prefetch_sweep(), Metric::L2MissPct).expect("fig6d plans");
        assert_eq!(d.level, SweptLevel::L2);
        assert_eq!(d.num_configs(), sweeps::l2_prefetch_sweep().len());
        assert!(d.groups.iter().all(|g| g.l2_prefetch.is_some()));
        assert!(d.capture_cfg.hierarchy.l2_prefetch.is_none());

        // fig6e's full replacement grid: LRU and FIFO rows both plan.
        let e = plan_single_pass(&sweeps::replacement_policy_sweep(), Metric::L1MissPct)
            .expect("fig6e replacement grid plans");
        assert_eq!(e.num_configs(), sweeps::replacement_policy_sweep().len());
        assert_eq!(e.groups.len(), 2, "one LRU group, one FIFO group");
        assert!(e.groups.iter().any(|g| g.policy == ReplacementPolicy::Fifo));
    }

    #[test]
    fn plan_rejects_unsweepable_grids() {
        // Metric on the non-varied level: configs differ outside the mask.
        assert!(plan_single_pass(&sweeps::l1_sweep(), Metric::L2MissPct).is_none());
        assert!(plan_single_pass(&sweeps::l1_prefetch_sweep(), Metric::L2MissPct).is_none());
        // Mixed policy *and* other-level variation in one grid.
        let mut mixed = sweeps::l1_sweep();
        mixed[0].hierarchy.l1.policy = ReplacementPolicy::Fifo;
        mixed[1].hierarchy.l2.size_bytes *= 2;
        assert!(plan_single_pass(&mixed, Metric::L1MissPct).is_none());
        // Unsupported replacement policies in the swept level.
        for policy in [ReplacementPolicy::PseudoLru, ReplacementPolicy::Random] {
            let mut grid = sweeps::l1_sweep();
            grid[3].hierarchy.l1.policy = policy;
            assert!(plan_single_pass(&grid, Metric::L1MissPct).is_none());
        }
        // Prefetcher configs outside the supported envelope.
        let mut bad_table = sweeps::l1_prefetch_sweep();
        bad_table[0].hierarchy.l1_prefetch = Some(StridePrefetcherConfig {
            table_size: 3, // not a power of two: ::new would panic
            ..Default::default()
        });
        assert!(plan_single_pass(&bad_table, Metric::L1MissPct).is_none());
        let mut oversized = sweeps::l1_prefetch_sweep();
        oversized[0].hierarchy.l1_prefetch = Some(StridePrefetcherConfig {
            table_size: 1 << 20,
            ..Default::default()
        });
        assert!(plan_single_pass(&oversized, Metric::L1MissPct).is_none());
        let mut zero_stream = sweeps::l2_prefetch_sweep();
        zero_stream[0].hierarchy.l2_prefetch = Some(StreamPrefetcherConfig {
            num_streams: 0,
            ..Default::default()
        });
        assert!(plan_single_pass(&zero_stream, Metric::L2MissPct).is_none());
        // FIFO combined with a prefetcher takes the direct path.
        let mut fifo_pf = sweeps::l1_prefetch_sweep();
        for c in &mut fifo_pf {
            c.hierarchy.l1.policy = ReplacementPolicy::Fifo;
        }
        assert!(plan_single_pass(&fifo_pf, Metric::L1MissPct).is_none());
        // An L1 prefetcher under an L2 sweep feeds geometry-independent
        // prefetch traffic into the L2: still rejected.
        let mut l1pf_l2sweep = sweeps::l2_sweep();
        for c in &mut l1pf_l2sweep {
            c.hierarchy.l1_prefetch = Some(StridePrefetcherConfig::default());
        }
        assert!(plan_single_pass(&l1pf_l2sweep, Metric::L2MissPct).is_none());
        // Empty grid.
        assert!(plan_single_pass(&[], Metric::L1MissPct).is_none());
    }

    #[test]
    fn capture_is_deterministic_and_nonempty() {
        let data = prepare("scalarprod", Scale::Tiny, 7);
        let cfg = SimtConfig::default();
        let a = capture_stream(&data.orig_streams, &data.kernel.launch, &cfg);
        let b = capture_stream(&data.orig_streams, &data.kernel.launch, &cfg);
        assert!(!a.accesses.is_empty());
        assert_eq!(a.accesses, b.accesses);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(
            a.accesses.len() as u64,
            a.schedule.issued_transactions,
            "every issued transaction is captured exactly once"
        );
    }

    #[test]
    fn fig6a_engine_matches_direct_replay_within_1e9() {
        let configs = sweeps::l1_sweep();
        let plan = plan_single_pass(&configs, Metric::L1MissPct).expect("fig6a plans");
        for name in ["kmeans", "bfs"] {
            let data = prepare(name, Scale::Tiny, 42);
            for streams in [
                (&data.orig_streams, &data.kernel.launch),
                (&data.proxy_streams, &data.profile.launch),
            ] {
                let cap = capture_stream(streams.0, streams.1, &plan.capture_cfg);
                let engine = eval_captured(&plan, &cap, &configs);
                let direct = direct_l1_series(&cap, &configs);
                for (i, (e, d)) in engine.values.iter().zip(&direct).enumerate() {
                    assert!(
                        (e - d).abs() < 1e-9,
                        "{name} config {i}: engine {e} vs direct {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn fig6b_engine_matches_direct_replay_within_1e9() {
        let configs = sweeps::l2_sweep();
        let plan = plan_single_pass(&configs, Metric::L2MissPct).expect("fig6b plans");
        for name in ["backprop", "srad"] {
            let data = prepare(name, Scale::Tiny, 42);
            let cap = capture_stream(&data.orig_streams, &data.kernel.launch, &plan.capture_cfg);
            let engine = eval_captured(&plan, &cap, &configs);
            let direct = direct_l2_series(&cap, &configs);
            for (i, (e, d)) in engine.values.iter().zip(&direct).enumerate() {
                assert!(
                    (e - d).abs() < 1e-9,
                    "{name} config {i}: engine {e} vs direct {d}"
                );
            }
        }
    }

    #[test]
    fn fig6c_prefetch_engine_matches_direct_replay_within_1e9() {
        let configs = sweeps::l1_prefetch_sweep();
        let plan = plan_single_pass(&configs, Metric::L1MissPct).expect("fig6c plans");
        for name in ["kmeans", "scalarprod"] {
            let data = prepare(name, Scale::Tiny, 42);
            let cap = capture_stream(&data.orig_streams, &data.kernel.launch, &plan.capture_cfg);
            let engine = eval_captured(&plan, &cap, &configs);
            let direct = direct_l1_prefetch_series(&cap, &configs);
            for (i, (e, d)) in engine.values.iter().zip(&direct).enumerate() {
                assert!(
                    (e - d).abs() < 1e-9,
                    "{name} config {i}: engine {e} vs direct {d}"
                );
            }
        }
    }

    #[test]
    fn fig6d_stream_prefetch_engine_matches_direct_replay_within_1e9() {
        let configs = sweeps::l2_prefetch_sweep();
        let plan = plan_single_pass(&configs, Metric::L2MissPct).expect("fig6d plans");
        for name in ["backprop", "bfs"] {
            let data = prepare(name, Scale::Tiny, 42);
            let cap = capture_stream(&data.orig_streams, &data.kernel.launch, &plan.capture_cfg);
            let engine = eval_captured(&plan, &cap, &configs);
            let direct = direct_l2_series(&cap, &configs);
            for (i, (e, d)) in engine.values.iter().zip(&direct).enumerate() {
                assert!(
                    (e - d).abs() < 1e-9,
                    "{name} config {i}: engine {e} vs direct {d}"
                );
            }
        }
    }

    #[test]
    fn fifo_policy_engine_matches_direct_replay_within_1e9() {
        let configs = sweeps::replacement_policy_sweep();
        let plan = plan_single_pass(&configs, Metric::L1MissPct).expect("policy grid plans");
        for name in ["srad", "pathfinder"] {
            let data = prepare(name, Scale::Tiny, 42);
            let cap = capture_stream(&data.orig_streams, &data.kernel.launch, &plan.capture_cfg);
            let engine = eval_captured(&plan, &cap, &configs);
            let direct = direct_l1_series(&cap, &configs);
            for (i, (e, d)) in engine.values.iter().zip(&direct).enumerate() {
                assert!(
                    (e - d).abs() < 1e-9,
                    "{name} config {i}: engine {e} vs direct {d}"
                );
            }
        }
    }

    #[test]
    fn capture_cache_shares_captures_across_plans() {
        capture_cache_clear();
        let data = prepare("aes", Scale::Tiny, 42);
        // fig6a and fig6c mask to the same reference configuration…
        let a = plan_single_pass(&sweeps::l1_sweep(), Metric::L1MissPct).expect("plans");
        let c = plan_single_pass(&sweeps::l1_prefetch_sweep(), Metric::L1MissPct).expect("plans");
        assert_eq!(
            a.capture_cfg, c.capture_cfg,
            "stock sweeps share the reference"
        );
        let source = data.capture_source(false);
        let first = capture_stream_cached(
            &source,
            &data.orig_streams,
            &data.kernel.launch,
            &a.capture_cfg,
        );
        let second = capture_stream_cached(
            &source,
            &data.orig_streams,
            &data.kernel.launch,
            &c.capture_cfg,
        );
        assert!(Arc::ptr_eq(&first, &second), "second lookup is a cache hit");
        let stats = capture_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // …while a different stream source captures fresh.
        let other = capture_stream_cached(
            &data.capture_source(true),
            &data.proxy_streams,
            &data.profile.launch,
            &a.capture_cfg,
        );
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(capture_cache_stats().misses, 2);
        capture_cache_clear();
        assert_eq!(capture_cache_stats(), CaptureCacheStats::default());
    }

    #[test]
    fn write_back_l1_sweep_is_also_exact() {
        let mut configs = sweeps::l1_sweep();
        for c in &mut configs {
            c.hierarchy.l1_write_policy = L1WritePolicy::WriteBackAllocate;
        }
        let plan = plan_single_pass(&configs, Metric::L1MissPct).expect("WB sweep plans");
        let data = prepare("pathfinder", Scale::Tiny, 42);
        let cap = capture_stream(&data.orig_streams, &data.kernel.launch, &plan.capture_cfg);
        let engine = eval_captured(&plan, &cap, &configs);
        assert!(!engine.fell_back, "write-allocate stores never diverge");
        let direct = direct_l1_series(&cap, &configs);
        for (e, d) in engine.values.iter().zip(&direct) {
            assert!((e - d).abs() < 1e-9);
        }
    }

    #[test]
    fn single_pass_comparison_has_sane_shape() {
        let configs = sweeps::l1_sweep();
        let plan = plan_single_pass(&configs, Metric::L1MissPct).expect("fig6a plans");
        let data = prepare("scalarprod", Scale::Tiny, 42);
        let cmp = sweep_benchmark_single_pass(&data, &plan, &configs);
        assert_eq!(cmp.original.len(), configs.len());
        assert_eq!(cmp.proxy.len(), configs.len());
        assert!(cmp.original.iter().all(|v| (0.0..=100.0).contains(v)));
        // Identical geometries at different grid points would be equal;
        // at minimum the series must not be all-zero for a real workload.
        assert!(cmp.original.iter().any(|&v| v > 0.0));
    }
}
