//! Regenerates Figure 7: DRAM performance of clones vs originals across
//! 11 GDDR5 configurations per benchmark — row-buffer locality (RBL),
//! average memory-controller queue length, and average read/write latency,
//! each normalized to original AES's value as in the paper.
//!
//! Paper result: average error 9.95 % (RBL), 8.64 % (queue length),
//! 12.6 % (read-write latency); average correlation 0.85.

use gmap_bench::{parallel_map, prepare, sweeps, ExperimentOpts};
use gmap_core::SimtConfig;
use gmap_dram::{DramMetrics, DramRequest, DramSystem};
use gmap_gpu::workloads;
use gmap_memsim::hierarchy::{MemRequest, TraceCapture};
use gmap_trace::stats;

fn replay(trace: &[MemRequest], cfg: &gmap_dram::DramConfig) -> DramMetrics {
    let reqs: Vec<DramRequest> = trace
        .iter()
        .map(|m| DramRequest {
            cycle: m.cycle,
            addr: m.addr,
            kind: m.kind,
        })
        .collect();
    DramSystem::new(*cfg).run(&reqs)
}

fn main() {
    let opts = ExperimentOpts::from_args();
    let dram_cfgs = sweeps::dram_sweep();
    println!(
        "=== Figure 7: DRAM metrics across {} GDDR5 configs ===",
        dram_cfgs.len()
    );
    println!("(paper: avg err RBL 9.95%, queue 8.64%, latency 12.6%; corr 0.85)\n");

    // Capture memory traces on the Table 2 baseline hierarchy.
    let mut sim_cfg = SimtConfig::default();
    sim_cfg.hierarchy.trace_capture = TraceCapture::Full;
    sim_cfg.seed = opts.seed;

    let names: Vec<&str> = workloads::NAMES.to_vec();
    // Per benchmark, per config: (orig metrics, proxy metrics).
    let results = parallel_map(&names, opts.threads.min(4), |name| {
        let data = prepare(name, opts.scale, opts.seed);
        let orig = gmap_core::simulate_streams(&data.orig_streams, &data.kernel.launch, &sim_cfg)
            .expect("baseline config is valid");
        let proxy =
            gmap_core::simulate_streams(&data.proxy_streams, &data.profile.launch, &sim_cfg)
                .expect("baseline config is valid");
        let per_cfg: Vec<(DramMetrics, DramMetrics)> = dram_cfgs
            .iter()
            .map(|(_, d)| (replay(&orig.mem_trace, d), replay(&proxy.mem_trace, d)))
            .collect();
        per_cfg
    });

    // Normalize by ORIGINAL AES per configuration, as the paper does.
    let aes_idx = names
        .iter()
        .position(|&n| n == "aes")
        .expect("aes is a benchmark");
    let aes_norm: Vec<DramMetrics> = results[aes_idx].iter().map(|(o, _)| *o).collect();
    let norm = |m: &DramMetrics, cfg_i: usize| -> [f64; 3] {
        let a = &aes_norm[cfg_i];
        let safe = |x: f64, base: f64| if base.abs() < 1e-9 { x } else { x / base };
        [
            safe(m.rbl, a.rbl),
            safe(m.avg_queue_len, a.avg_queue_len),
            safe(m.avg_latency(), a.avg_latency()),
        ]
    };

    println!(
        "{:<14} {:>10} {:>10} {:>10}   (mean rel. error per metric)",
        "Application", "RBL", "queue", "latency"
    );
    let metric_names = ["RBL", "queue length", "read-write latency"];
    let mut all_orig: [Vec<f64>; 3] = [vec![], vec![], vec![]];
    let mut all_proxy: [Vec<f64>; 3] = [vec![], vec![], vec![]];
    for (b, name) in names.iter().enumerate() {
        let mut errs = [0.0f64; 3];
        for (ci, (o, p)) in results[b].iter().enumerate() {
            let no = norm(o, ci);
            let np = norm(p, ci);
            for k in 0..3 {
                errs[k] += stats::rel_error(no[k], np[k]);
                all_orig[k].push(no[k]);
                all_proxy[k].push(np[k]);
            }
        }
        let n = results[b].len() as f64;
        println!(
            "{:<14} {:>9.2}% {:>9.2}% {:>9.2}%",
            name,
            100.0 * errs[0] / n,
            100.0 * errs[1] / n,
            100.0 * errs[2] / n
        );
    }
    println!();
    let mut corr_sum = 0.0;
    for k in 0..3 {
        let err = 100.0 * stats::mean_rel_error(&all_orig[k], &all_proxy[k]);
        let corr = stats::pearson(&all_orig[k], &all_proxy[k]);
        corr_sum += corr;
        println!(
            "average {:<20}: err {err:6.2}%  corr {corr:5.2}",
            metric_names[k]
        );
    }
    println!("average correlation over metrics: {:.2}", corr_sum / 3.0);
}
