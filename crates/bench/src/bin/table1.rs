//! Regenerates Table 1: per-application memory access signatures —
//! dominant memory PCs with their execution frequency, the dominant
//! PC-localized inter-warp stride (after coalescing) with its frequency,
//! the dominant intra-warp stride, and the reuse class.

use gmap_bench::{prepare, ExperimentOpts};
use gmap_core::profile::PiEntry;

fn main() {
    let opts = ExperimentOpts::from_args();
    println!("=== Table 1: application memory patterns (measured from the synthetic models) ===\n");
    println!(
        "{:<14} {:>8} {:>10} | {:>12} {:>8} | {:>12} {:>6}",
        "Application", "Mem PC", "%Mem Freq", "InterW Dom.", "%Stride", "IntraW Dom.", "Reuse"
    );
    println!("{}", "-".repeat(86));
    let apps = [
        "heartwall",
        "backprop",
        "kmeans",
        "srad",
        "scalarprod",
        "cp",
        "blackscholes",
        "lu",
        "lib",
        "fwt",
    ];
    for name in apps {
        let data = prepare(name, opts.scale, opts.seed);
        let p = &data.profile;
        let freqs = p.slot_frequencies();
        // Dominant reuse class: of the heaviest π profile.
        let dom_profile = p.profile_weights.dominant().map(|(i, _)| i).unwrap_or(0);
        let reuse = p.reuse[dom_profile].class();
        // Top 3 PCs by frequency.
        let mut order: Vec<usize> = (0..p.num_slots()).collect();
        order.sort_by(|&a, &b| freqs[b].partial_cmp(&freqs[a]).expect("finite"));
        for (row, &slot) in order.iter().take(3).enumerate() {
            let inter = p.inter_stride[slot].dominant();
            let intra = p.intra_stride[slot].dominant();
            // Skip slots that never repeat (no stride information).
            let (inter_s, inter_f) = inter.map_or(("-".into(), "-".into()), |(s, f)| {
                (s.to_string(), format!("{:.1}%", f * 100.0))
            });
            let intra_s = intra.map_or("-".into(), |(s, _)| s.to_string());
            println!(
                "{:<14} {:>8} {:>9.1}% | {:>12} {:>8} | {:>12} {:>6}",
                if row == 0 { name } else { "" },
                p.pcs[slot].to_string(),
                freqs[slot] * 100.0,
                inter_s,
                inter_f,
                intra_s,
                if row == 0 {
                    reuse.to_string()
                } else {
                    String::new()
                },
            );
        }
        // π-profile diversity note (§4.4).
        let paths = p.profiles.len();
        let accesses: usize = p.profiles[dom_profile]
            .entries
            .iter()
            .filter(|e| matches!(e, PiEntry::Mem(_)))
            .count();
        println!(
            "{:<14} ({} pi profile(s), dominant path has {} accesses)",
            "", paths, accesses
        );
    }
}
