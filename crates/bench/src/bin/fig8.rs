//! Regenerates Figure 8: impact of trace miniaturization — performance
//! cloning accuracy (left axis) and memory-simulation speedup over the
//! full clone (right axis) as the reduction factor grows 1×–16×.
//!
//! Paper result: speedup grows almost linearly while accuracy stays high
//! until ~8× (where it drops to ~90 %).

use gmap_bench::{parallel_map, prepare, sweeps, ExperimentOpts};
use gmap_core::{
    generate::{expected_accesses, generate_streams},
    miniaturize, simulate_streams, SimtConfig,
};
use gmap_gpu::workloads;
use gmap_trace::stats;
use std::time::Instant;

fn main() {
    let opts = ExperimentOpts::from_args();
    let factors = sweeps::miniaturization_factors();
    println!(
        "=== Figure 8: trace miniaturization (paper: ~90% accuracy and ~8x speedup at 8x) ===\n"
    );
    let cfg = SimtConfig {
        seed: opts.seed,
        ..SimtConfig::default()
    };

    let names: Vec<&str> = workloads::NAMES.to_vec();
    // Per benchmark: (orig miss%, full clone sim time, per-factor results).
    struct Row {
        orig_miss: f64,
        per_factor: Vec<(f64, f64, u64)>, // (proxy miss%, sim seconds, accesses)
    }
    let rows = parallel_map(&names, opts.threads, |name| {
        let data = prepare(name, opts.scale, opts.seed);
        let orig = simulate_streams(&data.orig_streams, &data.kernel.launch, &cfg)
            .expect("baseline config is valid");
        let per_factor = factors
            .iter()
            .map(|&f| {
                let mini = miniaturize(&data.profile, f).expect("factor is valid");
                let streams = generate_streams(&mini, opts.seed);
                let t0 = Instant::now();
                let out = simulate_streams(&streams, &mini.launch, &cfg)
                    .expect("baseline config is valid");
                (
                    out.l1_miss_pct(),
                    t0.elapsed().as_secs_f64(),
                    expected_accesses(&mini),
                )
            })
            .collect();
        Row {
            orig_miss: orig.l1_miss_pct(),
            per_factor,
        }
    });

    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12}",
        "factor", "accuracy %", "avg err pp", "speedup", "reduction"
    );
    for (fi, &factor) in factors.iter().enumerate() {
        let mut errs = Vec::new();
        let mut rels = Vec::new();
        let mut speedups = Vec::new();
        let mut reductions = Vec::new();
        for r in &rows {
            let (miss, secs, accesses) = r.per_factor[fi];
            errs.push((r.orig_miss - miss).abs());
            rels.push(stats::rel_error(r.orig_miss.max(1.0), miss.max(0.0)));
            let (_, full_secs, full_accesses) = r.per_factor[0];
            speedups.push(full_secs.max(1e-9) / secs.max(1e-9));
            reductions.push(full_accesses as f64 / accesses.max(1) as f64);
        }
        let accuracy = 100.0 * (1.0 - stats::mean(&rels));
        println!(
            "{factor:>7.0} {accuracy:>12.1} {:>12.2} {:>11.1}x {:>11.1}x",
            stats::mean(&errs),
            stats::mean(&speedups),
            stats::mean(&reductions)
        );
    }
    println!("\naccuracy = 100% - mean relative L1 miss-rate error vs the original");
    println!("speedup  = full-clone simulation time / miniaturized-clone simulation time");
}
