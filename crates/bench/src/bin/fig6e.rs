//! Regenerates Figure 6e: replicating cache performance across warp
//! scheduling policies — loose round-robin (LRR) and greedy-then-oldest
//! (GTO).
//!
//! G-MAP does not model the core, so the proxy replays GTO through the
//! `SchedP_self` statistic (§4.5): the measured probability of scheduling
//! the same warp consecutively, replayed by the parametric `SelfProb`
//! policy. LRR is replayed directly.
//!
//! Paper result: average L1 miss-rate error 8 % (5.1 % for LRR, 10.9 %
//! for GTO).

use gmap_bench::{parallel_map, prepare, print_header, sweeps, ExperimentOpts};
use gmap_core::{compare_series, simulate_streams, summarize};
use gmap_gpu::schedule::Policy;
use gmap_gpu::workloads;

fn main() {
    let opts = ExperimentOpts::from_args();
    let configs = sweeps::policy_l1_sweep();
    print_header(
        "Figure 6e: scheduling policies (paper: avg err 8%; LRR 5.1%, GTO 10.9%)",
        configs.len() * 2,
        &opts,
    );

    for policy in [Policy::Lrr, Policy::Gto] {
        let names: Vec<&str> = workloads::NAMES.to_vec();
        let comparisons = parallel_map(&names, opts.threads, |name| {
            let data = prepare(name, opts.scale, opts.seed);
            let mut orig_series = Vec::with_capacity(configs.len());
            let mut proxy_series = Vec::with_capacity(configs.len());
            for base in &configs {
                // Original runs under the true policy; measure SchedP_self.
                let mut ocfg = *base;
                ocfg.policy = policy;
                let orig = simulate_streams(&data.orig_streams, &data.kernel.launch, &ocfg)
                    .expect("valid sweep config");
                // The proxy replays: LRR directly, GTO via SchedP_self.
                let mut pcfg = *base;
                pcfg.policy = match policy {
                    Policy::Lrr => Policy::Lrr,
                    _ => Policy::SelfProb(orig.schedule.sched_p_self),
                };
                let proxy = simulate_streams(&data.proxy_streams, &data.profile.launch, &pcfg)
                    .expect("valid sweep config");
                orig_series.push(orig.l1_miss_pct());
                proxy_series.push(proxy.l1_miss_pct());
            }
            compare_series(name, orig_series, proxy_series)
        });
        let summary = summarize(comparisons);
        println!("--- policy {policy} ---");
        println!("{summary}\n");
    }
}
