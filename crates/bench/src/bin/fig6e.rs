//! Regenerates Figure 6e: replicating cache performance across warp
//! scheduling policies — loose round-robin (LRR) and greedy-then-oldest
//! (GTO) — and across L1 replacement policies (LRU and FIFO).
//!
//! G-MAP does not model the core, so the proxy replays GTO through the
//! `SchedP_self` statistic (§4.5): the measured probability of scheduling
//! the same warp consecutively, replayed by the parametric `SelfProb`
//! policy. LRR is replayed directly.
//!
//! The 15-config L1 grid is pure LRU with one line size, so each
//! (benchmark, policy) pair is evaluated by the single-pass sweep engine:
//! one capture run of the original under the true policy (which also
//! measures `SchedP_self`), one of the proxy under the replay policy, and
//! a stack-distance pass over each — instead of `2 × 15` full
//! simulations. The replacement grid doubles that L1 grid across
//! LRU/FIFO and is likewise single-pass (the FIFO rows via the
//! insertion-order evaluator); its captures are shared with the LRR
//! section through the engine's process-wide capture cache.
//!
//! Paper result: average L1 miss-rate error 8 % (5.1 % for LRR, 10.9 %
//! for GTO).

use gmap_bench::{engine, parallel_map, prepare, print_header, sweeps, ExperimentOpts, Metric};
use gmap_core::{compare_series, summarize};
use gmap_gpu::schedule::Policy;
use gmap_gpu::workloads;
use std::sync::Arc;

fn main() {
    let opts = ExperimentOpts::from_args();
    let configs = sweeps::policy_l1_sweep();
    let plan = engine::plan_single_pass(&configs, Metric::L1MissPct)
        .expect("the policy sweep is pure-LRU and single-pass");
    print_header(
        "Figure 6e: scheduling policies (paper: avg err 8%; LRR 5.1%, GTO 10.9%)",
        configs.len() * 2,
        &opts,
    );

    let names: Vec<&str> = workloads::NAMES.to_vec();
    let data = parallel_map(&names, opts.threads, |name| {
        Arc::new(prepare(name, opts.scale, opts.seed))
    });

    for policy in [Policy::Lrr, Policy::Gto] {
        let comparisons = parallel_map(&data, opts.threads, |data| {
            // Original runs under the true policy; the capture measures
            // SchedP_self at the reference configuration. The policy is
            // part of the capture-cache key, so the LRR captures are
            // shared with the replacement grid below.
            let mut ocfg = plan.capture_cfg;
            ocfg.policy = policy;
            let orig = engine::capture_stream_cached(
                &data.capture_source(false),
                &data.orig_streams,
                &data.kernel.launch,
                &ocfg,
            );
            // The proxy replays: LRR directly, GTO via SchedP_self.
            let mut pcfg = plan.capture_cfg;
            pcfg.policy = match policy {
                Policy::Lrr => Policy::Lrr,
                _ => Policy::SelfProb(orig.schedule.sched_p_self),
            };
            let proxy = engine::capture_stream_cached(
                &data.capture_source(true),
                &data.proxy_streams,
                &data.profile.launch,
                &pcfg,
            );
            let o = engine::eval_captured(&plan, &orig, &configs);
            let p = engine::eval_captured(&plan, &proxy, &configs);
            compare_series(&data.kernel.name, o.values, p.values)
        });
        let summary = summarize(comparisons);
        println!("--- policy {policy} ---");
        println!("{summary}\n");
    }

    // Replacement-policy grid: the same L1 geometries crossed with LRU
    // and FIFO, evaluated under the default (LRR) scheduler. Captures
    // are cache hits from the LRR section above.
    let rp_configs = sweeps::replacement_policy_sweep();
    let rp_plan = engine::plan_single_pass(&rp_configs, Metric::L1MissPct)
        .expect("the replacement grid is LRU/FIFO and single-pass");
    let comparisons = parallel_map(&data, opts.threads, |data| {
        engine::sweep_benchmark_single_pass(data, &rp_plan, &rp_configs)
    });
    let summary = summarize(comparisons);
    println!("--- replacement policies (LRU + FIFO, LRR scheduler) ---");
    println!("{summary}");
    let cache = engine::capture_cache_stats();
    println!(
        "capture cache: {} hits / {} misses across sections",
        cache.hits, cache.misses
    );
}
