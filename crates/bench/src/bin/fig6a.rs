//! Regenerates Figure 6a: error in L1 miss rates between original
//! applications and G-MAP proxies across 30 L1 cache configurations per
//! benchmark (size 8–128 KB, associativity 1–16, line size 32–128 B).
//!
//! Paper result: average error 5.1 %, average correlation 0.91.

use gmap_bench::{run_figure, sweeps, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    run_figure(
        "Figure 6a: L1 cache configurations (paper: avg err 5.1%, corr 0.91)",
        &sweeps::l1_sweep(),
        Metric::L1MissPct,
        opts,
    );
}
