//! Regenerates Figure 6c: error in L1 miss rates with a many-thread-aware
//! per-PC stride prefetcher, across 72 prefetcher/L1 configurations per
//! benchmark (prefetch degree, distance, table size, L1 geometry).
//!
//! Paper result: average error 6.3 %, average correlation 0.90. The paper
//! notes scalarProd and srad stay insensitive to prefetching (large
//! footprints, low temporal locality) while kmeans and nw benefit.

//!
//! The grid varies only the L1 geometry and the stride-prefetcher
//! parameters, so the single-pass sweep engine covers it: one capture
//! per benchmark stream, one prefetcher replay + stack-distance pass per
//! (prefetcher config) group, instead of 72 full simulations.

use gmap_bench::{run_figure, sweeps, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    run_figure(
        "Figure 6c: L1 cache + stride prefetcher (paper: avg err 6.3%, corr 0.90)",
        &sweeps::l1_prefetch_sweep(),
        Metric::L1MissPct,
        opts,
    );
}
