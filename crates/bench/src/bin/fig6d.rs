//! Regenerates Figure 6d: error in L2 miss rates with an L2 stream
//! prefetcher, across 96 configurations per benchmark (stream window
//! 8/16/32, prefetch degree 1/2/4/8, L2 geometry).
//!
//! Paper result: average error 8.9 %, average correlation 0.88.

//!
//! The grid varies only the L2 geometry and the stream-prefetcher
//! parameters, so the single-pass sweep engine covers it: one capture
//! and one derived L2 stream per benchmark, then a folded-bank
//! prefetcher replay per config — eliding the scheduler, L1s and MSHRs
//! that dominate the direct path.

use gmap_bench::{run_figure, sweeps, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    run_figure(
        "Figure 6d: L2 cache + stream prefetcher (paper: avg err 8.9%, corr 0.88)",
        &sweeps::l2_prefetch_sweep(),
        Metric::L2MissPct,
        opts,
    );
}
