//! Ablations of G-MAP's design choices (DESIGN.md §4):
//!
//! 1. **Reuse-aware generation** (Algorithm 1 lines 11–13) vs stride-only
//!    generation — the paper credits reuse replay for kmeans/heartwall
//!    accuracy.
//! 2. **π-profile clustering threshold** Th — cluster count and accuracy
//!    on the divergent benchmark (bfs).
//! 3. **SchedP_self replay** vs plain LRR replay when the original ran
//!    GTO.
//! 4. **L1 write policy**: the Fermi write-through/no-allocate baseline
//!    vs a write-back/write-allocate L1 — and whether the clone tracks
//!    the original under both.

use gmap_bench::{prepare, ExperimentOpts};
use gmap_core::profiler::profile_kernel;
use gmap_core::{generate::generate_streams, simulate_streams, ProfilerConfig, SimtConfig};
use gmap_gpu::schedule::Policy;
use gmap_gpu::workloads::{self};

fn main() {
    let opts = ExperimentOpts::from_args();
    let cfg = SimtConfig {
        seed: opts.seed,
        ..SimtConfig::default()
    };

    // ---- 1. Reuse-aware vs stride-only generation. -----------------------
    // "full" = this reproduction (paper mechanisms + the PC-localized
    // reuse extension); "paper" = Algorithm 1 exactly as published
    // (global reuse check only); "stride" = no temporal replay at all.
    println!("=== Ablation 1: temporal-reuse replay in Algorithm 1 ===\n");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "benchmark", "orig L1%", "full err", "paper err", "stride err"
    );
    for name in ["kmeans", "heartwall", "lib", "backprop", "scalarprod"] {
        let data = prepare(name, opts.scale, opts.seed);
        let orig = simulate_streams(&data.orig_streams, &data.kernel.launch, &cfg)
            .expect("baseline is valid");
        let err_of = |profile: &gmap_core::GmapProfile| {
            let streams = generate_streams(profile, opts.seed);
            let out = simulate_streams(&streams, &profile.launch, &cfg).expect("baseline is valid");
            (orig.l1_miss_pct() - out.l1_miss_pct()).abs()
        };
        let full = err_of(&data.profile);
        // Paper-exact: drop the PC-localized extension entirely.
        let mut paper = data.profile.clone();
        for h in &mut paper.pc_reuse {
            *h = gmap_trace::Histogram::new();
        }
        for s in &mut paper.pc_reuse_schedule {
            s.clear();
        }
        for s in &mut paper.intra_stride_schedule {
            s.clear();
        }
        for s in &mut paper.inter_stride_phase {
            s.clear();
        }
        let paper_err = err_of(&paper);
        // Stride-only: no temporal replay at all.
        let mut stride = paper.clone();
        for r in &mut stride.reuse {
            *r = gmap_trace::ReuseHistogram::new();
        }
        let stride_err = err_of(&stride);
        println!(
            "{:<14} {:>9.2}% {:>10.2}pp {:>10.2}pp {:>10.2}pp",
            name,
            orig.l1_miss_pct(),
            full,
            paper_err,
            stride_err
        );
    }

    // ---- 2. Clustering threshold sweep. ----------------------------------
    println!("\n=== Ablation 2: pi-profile clustering threshold Th (paper uses 0.9) ===\n");
    println!("{:<8} {:>12} {:>14}", "Th", "pi profiles", "bfs L1 err pp");
    let kernel = workloads::by_name("bfs", opts.scale).expect("bfs exists");
    let orig_streams = gmap_core::model::original_streams(&kernel);
    let orig = simulate_streams(&orig_streams, &kernel.launch, &cfg).expect("baseline is valid");
    for th in [0.5, 0.7, 0.9, 0.99, 1.0] {
        let pcfg = ProfilerConfig {
            cluster_threshold: th,
            ..ProfilerConfig::default()
        };
        let profile = profile_kernel(&kernel, &pcfg);
        let streams = generate_streams(&profile, opts.seed);
        let proxy = simulate_streams(&streams, &profile.launch, &cfg).expect("baseline is valid");
        println!(
            "{th:<8} {:>12} {:>12.2}",
            profile.profiles.len(),
            (orig.l1_miss_pct() - proxy.l1_miss_pct()).abs()
        );
    }

    // ---- 3. SchedP_self replay vs LRR replay of a GTO original. ----------
    println!("\n=== Ablation 3: SchedP_self replay of GTO (Section 4.5) ===\n");
    println!(
        "{:<14} {:>10} {:>14} {:>12}",
        "benchmark", "GTO L1%", "SelfProb err", "LRR err"
    );
    for name in ["kmeans", "heartwall", "backprop", "fwt"] {
        let data = prepare(name, opts.scale, opts.seed);
        let mut gto = cfg;
        gto.policy = Policy::Gto;
        let orig = simulate_streams(&data.orig_streams, &data.kernel.launch, &gto)
            .expect("baseline is valid");
        let mut self_prob = cfg;
        self_prob.policy = Policy::SelfProb(orig.schedule.sched_p_self);
        let replay = simulate_streams(&data.proxy_streams, &data.profile.launch, &self_prob)
            .expect("baseline is valid");
        let lrr = simulate_streams(&data.proxy_streams, &data.profile.launch, &cfg)
            .expect("baseline is valid");
        println!(
            "{:<14} {:>9.2}% {:>12.2}pp {:>10.2}pp",
            name,
            orig.l1_miss_pct(),
            (orig.l1_miss_pct() - replay.l1_miss_pct()).abs(),
            (orig.l1_miss_pct() - lrr.l1_miss_pct()).abs()
        );
    }

    // ---- 4. L1 write policy. ---------------------------------------------
    println!("\n=== Ablation 4: L1 write policy (write-through baseline vs write-back) ===\n");
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>14}",
        "benchmark", "WT orig L1%", "WB orig L1%", "WT clone err", "WB clone err"
    );
    for name in ["backprop", "blackscholes", "pathfinder", "fwt"] {
        let data = prepare(name, opts.scale, opts.seed);
        let mut results = Vec::new();
        for policy in [
            gmap_memsim::hierarchy::L1WritePolicy::WriteThroughNoAllocate,
            gmap_memsim::hierarchy::L1WritePolicy::WriteBackAllocate,
        ] {
            let mut c = cfg;
            c.hierarchy.l1_write_policy = policy;
            let orig = simulate_streams(&data.orig_streams, &data.kernel.launch, &c)
                .expect("baseline is valid");
            let proxy = simulate_streams(&data.proxy_streams, &data.profile.launch, &c)
                .expect("baseline is valid");
            results.push((
                orig.l1_miss_pct(),
                (orig.l1_miss_pct() - proxy.l1_miss_pct()).abs(),
            ));
        }
        println!(
            "{:<14} {:>11.2}% {:>11.2}% {:>12.2}pp {:>12.2}pp",
            name, results[0].0, results[1].0, results[0].1, results[1].1
        );
    }
}
