//! Perf tracking for the sweep engine: measures the direct per-config
//! full-simulation path against the single-pass capture/replay engine on
//! every figure grid (fig6a–6e) and emits `BENCH_sweep.json`, so the
//! performance trajectory is comparable across PRs.
//!
//! Defaults to `--scale small`; pass `--scale`/`--seed` to override and
//! `--out PATH` to move the report. `--smoke` skips the (slow) direct
//! timings and instead asserts the planner coverage: every fig6a–6e grid
//! must take the single-pass path, and cross-figure capture reuse must
//! kick in — exiting nonzero otherwise, which is what CI gates on.

use gmap_bench::{engine, prepare, sweep_benchmark, sweeps, BenchData, ExperimentOpts, Metric};
use gmap_core::SimtConfig;
use gmap_dram::mapping::{decompose, AddressMapping, DramGeometry, MappingPlan};
use gmap_gpu::coalesce::coalesce_addrs_into;
use gmap_memsim::cache::{CacheConfig, ReplacementPolicy};
use gmap_memsim::stackdist::{evaluate_lru_multi_with_mode, LineAccess, WriteMode};
use gmap_trace::batch::KernelMode;
use gmap_trace::record::ByteAddr;
use gmap_trace::{Histogram, LatencyHistogram, Rng};
use serde::Serialize;
use std::time::Instant;

/// Benchmarks timed by the tracker — a fixed, locality-diverse subset so
/// the report stays comparable across PRs and runs in minutes.
const BENCHMARKS: [&str; 5] = ["kmeans", "backprop", "scalarprod", "bfs", "srad"];

/// The figure grids the tracker covers. Every one of these must plan
/// single-pass; a grid falling off the engine is a regression.
fn grids() -> Vec<(&'static str, Vec<SimtConfig>, Metric)> {
    vec![
        ("fig6a_l1", sweeps::l1_sweep(), Metric::L1MissPct),
        ("fig6b_l2", sweeps::l2_sweep(), Metric::L2MissPct),
        (
            "fig6c_l1_prefetch",
            sweeps::l1_prefetch_sweep(),
            Metric::L1MissPct,
        ),
        (
            "fig6d_l2_prefetch",
            sweeps::l2_prefetch_sweep(),
            Metric::L2MissPct,
        ),
        (
            "fig6e_replacement",
            sweeps::replacement_policy_sweep(),
            Metric::L1MissPct,
        ),
    ]
}

#[derive(Debug, Serialize)]
struct PerBenchmark {
    name: String,
    direct_secs: f64,
    single_pass_secs: f64,
    speedup: f64,
}

/// Distribution of one phase's per-benchmark wall times, summarized from
/// the shared log-bucketed [`LatencyHistogram`].
#[derive(Debug, Serialize)]
struct PhaseLatency {
    phase: String,
    p50_secs: f64,
    p95_secs: f64,
    max_secs: f64,
}

impl PhaseLatency {
    fn summarize(phase: &str, hist: &LatencyHistogram) -> Self {
        PhaseLatency {
            phase: phase.to_string(),
            p50_secs: hist.p50().as_secs_f64(),
            p95_secs: hist.p95().as_secs_f64(),
            max_secs: hist.max().as_secs_f64(),
        }
    }
}

#[derive(Debug, Serialize)]
struct GridReport {
    sweep: String,
    metric: String,
    configs: usize,
    /// (benchmark × config) points, original and proxy series each.
    validation_points: usize,
    direct_secs: f64,
    single_pass_secs: f64,
    speedup: f64,
    per_benchmark: Vec<PerBenchmark>,
}

#[derive(Debug, Serialize)]
struct CaptureReuse {
    hits: u64,
    misses: u64,
}

/// Scalar-vs-batched timing of one dual-path hot kernel. The scalar side
/// is the live reference implementation (the pre-batching code path), so
/// the speedup column tracks exactly what the lane-unrolled kernels buy.
#[derive(Debug, Serialize)]
struct KernelTiming {
    kernel: String,
    scalar_secs: f64,
    batched_secs: f64,
    speedup: f64,
}

/// Best-of-`rounds` mean over `reps` calls — criterion-lite, enough to
/// keep the JSON numbers stable across runs without minutes of sampling.
fn time_best_of<F: FnMut()>(mut f: F, reps: usize, rounds: usize) -> f64 {
    f(); // warm up caches and allocations outside the timed region
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

/// Times the four dual-path kernels on synthetic workloads shaped like
/// what the engine feeds them (same shapes as `benches/kernels.rs`).
fn kernel_microbench() -> Vec<KernelTiming> {
    let mut out = Vec::new();
    let mut push = |kernel: &str, scalar_secs: f64, batched_secs: f64| {
        out.push(KernelTiming {
            kernel: kernel.to_string(),
            scalar_secs,
            batched_secs,
            speedup: scalar_secs / batched_secs.max(1e-12),
        });
    };

    // Stack-distance counting: 100k-line stream with strided locality
    // against a fig6a-shaped grid — two set-count classes with 15
    // associativity points each, like the L1 sweep the engine runs.
    let mut rng = Rng::seed_from(7);
    let mut cursor = 0u64;
    let stream: Vec<LineAccess> = (0..100_000)
        .map(|i| {
            cursor = if i % 7 == 0 {
                rng.gen_range(4096)
            } else {
                (cursor + 1) % 4096
            };
            LineAccess::new(cursor, rng.gen_range(5) == 0)
        })
        .collect();
    let mut configs = Vec::new();
    for sets in [64u64, 256] {
        for assoc in 1u32..=15 {
            configs.push(
                CacheConfig::new(
                    sets * assoc as u64 * 128,
                    assoc,
                    128,
                    ReplacementPolicy::Lru,
                )
                .expect("valid geometry"),
            );
        }
    }
    let time_stackdist = |kmode| {
        time_best_of(
            || {
                let r = evaluate_lru_multi_with_mode(&configs, &stream, WriteMode::Allocate, kmode)
                    .expect("valid grid");
                assert_eq!(r.counts.len(), configs.len());
            },
            3,
            5,
        )
    };
    push(
        "stackdist",
        time_stackdist(KernelMode::Scalar),
        time_stackdist(KernelMode::Batched),
    );

    // Histogram binning: profiler-shaped stride slices (short runs, few
    // distinct values).
    let mut rng = Rng::seed_from(11);
    let slices: Vec<Vec<i64>> = (0..2_000)
        .map(|_| {
            let len = 8 + rng.gen_range(56) as usize;
            (0..len)
                .map(|_| (rng.gen_range(7) as i64 - 3) * 128)
                .collect()
        })
        .collect();
    let time_hist = |kmode| {
        time_best_of(
            || {
                let mut h = Histogram::new();
                for s in &slices {
                    h.add_slice(s, kmode);
                }
                assert!(!h.is_empty());
            },
            20,
            5,
        )
    };
    push(
        "histogram",
        time_hist(KernelMode::Scalar),
        time_hist(KernelMode::Batched),
    );

    // Warp coalescing: 2000 warps × 32 lanes, alternating unit-stride
    // and scattered.
    let mut rng = Rng::seed_from(13);
    let warps: Vec<Vec<ByteAddr>> = (0..2_000)
        .map(|w| {
            if w % 2 == 0 {
                let base = rng.gen_range(1 << 20);
                (0..32).map(|i| ByteAddr(base + 4 * i)).collect()
            } else {
                (0..32).map(|_| ByteAddr(rng.gen_range(1 << 20))).collect()
            }
        })
        .collect();
    let time_coalesce = |kmode| {
        let mut buf = Vec::new();
        time_best_of(
            || {
                let mut txns = 0usize;
                for addrs in &warps {
                    coalesce_addrs_into(addrs, 128, kmode, &mut buf);
                    txns += buf.len();
                }
                assert!(txns > 0);
            },
            60,
            5,
        )
    };
    push(
        "coalesce",
        time_coalesce(KernelMode::Scalar),
        time_coalesce(KernelMode::Batched),
    );

    // DRAM decomposition: the scalar side is the original field-consuming
    // `decompose` (per-call width derivation), the batched side the
    // precompiled plan — that pair is exactly what the DRAM front-end
    // switched between in this refactor.
    let mut rng = Rng::seed_from(17);
    let addrs: Vec<u64> = (0..100_000).map(|_| rng.gen_range(1 << 32)).collect();
    let geom = DramGeometry::table2_baseline();
    let mapping = AddressMapping::RoBaRaCoCh;
    let plan = MappingPlan::new(&geom, mapping);
    let scalar_dram = {
        let mut buf = Vec::new();
        time_best_of(
            move || {
                buf.clear();
                buf.extend(addrs.iter().map(|&a| decompose(a, &geom, mapping)));
                assert_eq!(buf.len(), 100_000);
            },
            50,
            5,
        )
    };
    let batched_dram = {
        let mut rng = Rng::seed_from(17);
        let addrs: Vec<u64> = (0..100_000).map(|_| rng.gen_range(1 << 32)).collect();
        let mut buf = Vec::new();
        time_best_of(
            move || {
                plan.decompose_batch(&addrs, KernelMode::Batched, &mut buf);
                assert_eq!(buf.len(), 100_000);
            },
            50,
            5,
        )
    };
    push("dram_decompose", scalar_dram, batched_dram);
    out
}

#[derive(Debug, Serialize)]
struct PerfReport {
    scale: String,
    seed: u64,
    benchmarks: usize,
    /// Totals across every grid, for cross-PR continuity.
    direct_secs: f64,
    single_pass_secs: f64,
    speedup: f64,
    grids: Vec<GridReport>,
    latency: Vec<PhaseLatency>,
    /// Capture-cache counters of the cross-figure reuse pass (all five
    /// grids evaluated back to back without clearing).
    capture_reuse: CaptureReuse,
    /// Scalar-vs-batched microbenchmarks of the four dual-path kernels.
    kernels: Vec<KernelTiming>,
}

fn metric_name(m: Metric) -> &'static str {
    match m {
        Metric::L1MissPct => "l1_miss_pct",
        Metric::L2MissPct => "l2_miss_pct",
    }
}

/// Runs every grid single-pass over already-prepared benchmarks, without
/// clearing the capture cache — all five stock grids mask to one
/// reference config, so each benchmark must capture exactly once (per
/// stream) for the whole set.
fn reuse_pass(data: &[BenchData]) -> CaptureReuse {
    engine::capture_cache_clear();
    for (_, configs, metric) in grids() {
        let plan = engine::plan_single_pass(&configs, metric).expect("grid plans single-pass");
        for d in data {
            let _ = engine::sweep_benchmark_single_pass(d, &plan, &configs);
        }
    }
    let stats = engine::capture_cache_stats();
    engine::capture_cache_clear();
    CaptureReuse {
        hits: stats.hits,
        misses: stats.misses,
    }
}

/// `--smoke`: assert the planner coverage and the capture-cache reuse
/// cheaply (single-pass only), for CI. Panics (nonzero exit) on any grid
/// falling off the single-pass path.
fn smoke(opts: &ExperimentOpts) {
    println!(
        "=== sweep-engine smoke: planner coverage at scale {:?} ===",
        opts.scale
    );
    // The batched kernels must be the live default: CI runs this smoke
    // with a clean environment, so a leaked GMAP_SCALAR_KERNELS (or a
    // default regression) fails the gate here.
    assert!(
        gmap_trace::default_mode().is_batched(),
        "batched kernels must be the default path (GMAP_SCALAR_KERNELS leaked into the environment?)"
    );
    println!(
        "kernel mode: {:?} (default path)",
        gmap_trace::default_mode()
    );
    for (name, configs, metric) in grids() {
        let plan = engine::plan_single_pass(&configs, metric)
            .unwrap_or_else(|| panic!("{name} fell off the single-pass path"));
        println!(
            "{name:<20} plans single-pass: {} configs in {} groups",
            configs.len(),
            plan.groups.len()
        );
    }
    let data: Vec<BenchData> = BENCHMARKS
        .iter()
        .map(|n| prepare(n, opts.scale, opts.seed))
        .collect();
    let t = Instant::now();
    let reuse = reuse_pass(&data);
    let expected_misses = (BENCHMARKS.len() * 2) as u64;
    assert_eq!(
        reuse.misses, expected_misses,
        "every stock grid shares one capture pair per benchmark"
    );
    assert!(
        reuse.hits >= expected_misses,
        "cross-figure capture reuse must kick in (hits {})",
        reuse.hits
    );
    println!(
        "all {} grids single-pass in {:.2}s; capture cache {} hits / {} misses",
        grids().len(),
        t.elapsed().as_secs_f64(),
        reuse.hits,
        reuse.misses
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ExperimentOpts::parse(&args);
    if !args.iter().any(|a| a == "--scale") {
        opts.scale = gmap_gpu::workloads::Scale::Small;
    }
    if args.iter().any(|a| a == "--smoke") {
        smoke(&opts);
        return;
    }
    if args.iter().any(|a| a == "--kernels") {
        // Quick mode: just the per-kernel scalar-vs-batched timings,
        // without touching BENCH_sweep.json.
        println!("=== kernel microbenchmarks (scalar vs batched) ===");
        for k in kernel_microbench() {
            println!(
                "{:<16} scalar {:9.6}s  batched {:9.6}s  speedup {:5.2}x",
                k.kernel, k.scalar_secs, k.batched_secs, k.speedup
            );
        }
        return;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let data: Vec<BenchData> = BENCHMARKS
        .iter()
        .map(|n| prepare(n, opts.scale, opts.seed))
        .collect();

    let mut grid_reports = Vec::new();
    let (mut direct_total, mut single_total) = (0.0f64, 0.0f64);
    let mut direct_hist = LatencyHistogram::new();
    let mut single_hist = LatencyHistogram::new();
    for (sweep_name, configs, metric) in grids() {
        let plan = engine::plan_single_pass(&configs, metric)
            .unwrap_or_else(|| panic!("{sweep_name} fell off the single-pass path"));
        println!(
            "=== {sweep_name}: {} configs, scale {:?} ===",
            configs.len(),
            opts.scale
        );
        let mut rows = Vec::new();
        let (mut grid_direct, mut grid_single) = (0.0f64, 0.0f64);
        for d in &data {
            let t = Instant::now();
            let direct_cmp = sweep_benchmark(d, &configs, metric);
            let direct_elapsed = t.elapsed();
            direct_hist.record(direct_elapsed);
            let direct_secs = direct_elapsed.as_secs_f64();

            // Clear between timed sections: a capture memoized by an
            // earlier grid would otherwise inflate this grid's speedup.
            engine::capture_cache_clear();
            let t = Instant::now();
            let single_cmp = engine::sweep_benchmark_single_pass(d, &plan, &configs);
            let single_elapsed = t.elapsed();
            single_hist.record(single_elapsed);
            let single_pass_secs = single_elapsed.as_secs_f64();

            // Sanity: both paths produce full aligned series.
            assert_eq!(direct_cmp.original.len(), single_cmp.original.len());

            let speedup = direct_secs / single_pass_secs.max(1e-9);
            println!(
                "{:<14} direct {direct_secs:7.3}s  single-pass {single_pass_secs:7.3}s  speedup {speedup:6.1}x",
                d.kernel.name
            );
            grid_direct += direct_secs;
            grid_single += single_pass_secs;
            rows.push(PerBenchmark {
                name: d.kernel.name.clone(),
                direct_secs,
                single_pass_secs,
                speedup,
            });
        }
        let grid_speedup = grid_direct / grid_single.max(1e-9);
        println!(
            "{sweep_name}: direct {grid_direct:.3}s  single-pass {grid_single:.3}s  speedup {grid_speedup:.1}x\n"
        );
        direct_total += grid_direct;
        single_total += grid_single;
        grid_reports.push(GridReport {
            sweep: sweep_name.to_string(),
            metric: metric_name(metric).to_string(),
            configs: configs.len(),
            validation_points: BENCHMARKS.len() * configs.len() * 2,
            direct_secs: grid_direct,
            single_pass_secs: grid_single,
            speedup: grid_speedup,
            per_benchmark: rows,
        });
    }

    // Cross-figure reuse: all grids back to back share captures.
    let reuse = reuse_pass(&data);

    println!("=== kernel microbenchmarks (scalar vs batched) ===");
    let kernels = kernel_microbench();
    for k in &kernels {
        println!(
            "{:<16} scalar {:9.6}s  batched {:9.6}s  speedup {:5.2}x",
            k.kernel, k.scalar_secs, k.batched_secs, k.speedup
        );
    }

    let speedup = direct_total / single_total.max(1e-9);
    let report = PerfReport {
        scale: format!("{:?}", opts.scale).to_lowercase(),
        seed: opts.seed,
        benchmarks: BENCHMARKS.len(),
        direct_secs: direct_total,
        single_pass_secs: single_total,
        speedup,
        grids: grid_reports,
        latency: vec![
            PhaseLatency::summarize("direct", &direct_hist),
            PhaseLatency::summarize("single_pass", &single_hist),
        ],
        capture_reuse: reuse,
        kernels,
    };
    println!(
        "total: direct {direct_total:.3}s  single-pass {single_total:.3}s  speedup {speedup:.1}x"
    );
    println!(
        "capture reuse across grids: {} hits / {} misses",
        report.capture_reuse.hits, report.capture_reuse.misses
    );
    for p in &report.latency {
        println!(
            "{:<12} per-benchmark p50 {:.3}s  p95 {:.3}s  max {:.3}s",
            p.phase, p.p50_secs, p.p95_secs, p.max_secs
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("report file is writable");
    println!("report written to {out_path}");
}
