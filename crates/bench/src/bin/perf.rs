//! Perf tracking for the sweep engine: measures the direct per-config
//! full-simulation path against the single-pass stack-distance engine on
//! the fig6a L1 sweep and emits `BENCH_sweep.json`, so the performance
//! trajectory is comparable across PRs.
//!
//! Defaults to `--scale small`; pass `--scale`/`--seed` to override and
//! `--out PATH` to move the report.

use gmap_bench::{engine, prepare, sweep_benchmark, sweeps, ExperimentOpts, Metric};
use gmap_trace::LatencyHistogram;
use serde::Serialize;
use std::time::Instant;

/// Benchmarks timed by the tracker — a fixed, locality-diverse subset so
/// the report stays comparable across PRs and runs in seconds.
const BENCHMARKS: [&str; 5] = ["kmeans", "backprop", "scalarprod", "bfs", "srad"];

#[derive(Debug, Serialize)]
struct PerBenchmark {
    name: String,
    direct_secs: f64,
    single_pass_secs: f64,
    speedup: f64,
}

/// Distribution of one phase's per-benchmark wall times, summarized from
/// the shared log-bucketed [`LatencyHistogram`].
#[derive(Debug, Serialize)]
struct PhaseLatency {
    phase: String,
    p50_secs: f64,
    p95_secs: f64,
    max_secs: f64,
}

impl PhaseLatency {
    fn summarize(phase: &str, hist: &LatencyHistogram) -> Self {
        PhaseLatency {
            phase: phase.to_string(),
            p50_secs: hist.p50().as_secs_f64(),
            p95_secs: hist.p95().as_secs_f64(),
            max_secs: hist.max().as_secs_f64(),
        }
    }
}

#[derive(Debug, Serialize)]
struct PerfReport {
    scale: String,
    seed: u64,
    sweep: String,
    configs: usize,
    benchmarks: usize,
    /// (benchmark × config) points, original and proxy series each.
    validation_points: usize,
    direct_secs: f64,
    single_pass_secs: f64,
    speedup: f64,
    latency: Vec<PhaseLatency>,
    per_benchmark: Vec<PerBenchmark>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ExperimentOpts::parse(&args);
    if !args.iter().any(|a| a == "--scale") {
        opts.scale = gmap_gpu::workloads::Scale::Small;
    }
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let configs = sweeps::l1_sweep();
    let metric = Metric::L1MissPct;
    let plan = engine::plan_single_pass(&configs, metric)
        .expect("the fig6a L1 sweep is pure-LRU and single-pass");

    println!(
        "=== sweep-engine perf: fig6a L1 sweep, {} configs, scale {:?} ===",
        configs.len(),
        opts.scale
    );
    let mut rows = Vec::new();
    let (mut direct_total, mut single_total) = (0.0f64, 0.0f64);
    let mut direct_hist = LatencyHistogram::new();
    let mut single_hist = LatencyHistogram::new();
    for name in BENCHMARKS {
        let data = prepare(name, opts.scale, opts.seed);

        let t = Instant::now();
        let direct_cmp = sweep_benchmark(&data, &configs, metric);
        let direct_elapsed = t.elapsed();
        direct_hist.record(direct_elapsed);
        let direct_secs = direct_elapsed.as_secs_f64();

        let t = Instant::now();
        let single_cmp = engine::sweep_benchmark_single_pass(&data, &plan, &configs);
        let single_elapsed = t.elapsed();
        single_hist.record(single_elapsed);
        let single_pass_secs = single_elapsed.as_secs_f64();

        // Sanity: both paths produce full aligned series.
        assert_eq!(direct_cmp.original.len(), single_cmp.original.len());

        let speedup = direct_secs / single_pass_secs.max(1e-9);
        println!(
            "{name:<14} direct {direct_secs:7.3}s  single-pass {single_pass_secs:7.3}s  speedup {speedup:6.1}x"
        );
        direct_total += direct_secs;
        single_total += single_pass_secs;
        rows.push(PerBenchmark {
            name: name.to_string(),
            direct_secs,
            single_pass_secs,
            speedup,
        });
    }

    let speedup = direct_total / single_total.max(1e-9);
    let report = PerfReport {
        scale: format!("{:?}", opts.scale).to_lowercase(),
        seed: opts.seed,
        sweep: "l1_sweep".to_string(),
        configs: configs.len(),
        benchmarks: BENCHMARKS.len(),
        validation_points: BENCHMARKS.len() * configs.len() * 2,
        direct_secs: direct_total,
        single_pass_secs: single_total,
        speedup,
        latency: vec![
            PhaseLatency::summarize("direct", &direct_hist),
            PhaseLatency::summarize("single_pass", &single_hist),
        ],
        per_benchmark: rows,
    };
    println!(
        "\ntotal: direct {direct_total:.3}s  single-pass {single_total:.3}s  speedup {speedup:.1}x"
    );
    for p in &report.latency {
        println!(
            "{:<12} per-benchmark p50 {:.3}s  p95 {:.3}s  max {:.3}s",
            p.phase, p.p50_secs, p.p95_secs, p.max_secs
        );
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("report file is writable");
    println!("report written to {out_path}");
}
