//! Regenerates Figure 6b: error in L2 miss rates between original
//! applications and G-MAP proxies across 30 L2 cache configurations per
//! benchmark (size 128 KB–4 MB, associativity 1–16, line size 64–128 B).
//!
//! Paper result: average error 7.1 %, average correlation 0.91.

use gmap_bench::{run_figure, sweeps, ExperimentOpts, Metric};

fn main() {
    let opts = ExperimentOpts::from_args();
    run_figure(
        "Figure 6b: L2 cache configurations (paper: avg err 7.1%, corr 0.91)",
        &sweeps::l2_sweep(),
        Metric::L2MissPct,
        opts,
    );
}
