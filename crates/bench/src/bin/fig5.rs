//! Regenerates Figure 5: the reuse-distance computation worked example.
//!
//! The paper's example accesses `X[0] X[1] X[2] X[3] X[1] X[2] X[3] X[0]`
//! with two array elements per cacheline, yielding stack distances
//! ∞ 0 ∞ 0 1 1 0 1 and the resulting distance histogram.

use gmap_trace::reuse::{ReuseComputer, ReuseHistogram};

fn main() {
    println!("=== Figure 5: reuse distance computation example ===\n");
    let accesses = [
        "X[0]", "X[1]", "X[2]", "X[3]", "X[1]", "X[2]", "X[3]", "X[0]",
    ];
    // Two 4-byte elements per 8-byte cacheline in the example.
    let lines: Vec<u64> = [0u64, 0, 1, 1, 0, 1, 1, 0].to_vec();
    let mut rc = ReuseComputer::new();
    println!(
        "{:<10} {:<10} {:<14}",
        "Access", "Cacheline", "Reuse distance"
    );
    let mut rh = ReuseHistogram::new();
    for (name, &line) in accesses.iter().zip(&lines) {
        let d = rc.push(line);
        rh.record(d);
        println!(
            "{:<10} {:<10} {:<14}",
            name,
            line,
            d.map_or("inf (cold)".to_owned(), |d| d.to_string())
        );
    }
    println!("\nDistance histogram (finite distances):");
    for (d, c) in rh.distances().iter() {
        let pct = 100.0 * c as f64 / rh.total() as f64;
        println!("  distance {d}: {c} accesses ({pct:.0}%)");
    }
    println!(
        "  cold     : {} accesses ({:.0}%)",
        rh.cold(),
        100.0 * rh.cold() as f64 / rh.total() as f64
    );
    println!(
        "\nreuse fraction {:.2} -> class {}",
        rh.reuse_fraction(),
        rh.class()
    );
}
