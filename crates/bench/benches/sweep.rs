//! Criterion benchmark of the sweep engine's headline trade: direct
//! per-config full simulation vs one capture run plus a single-pass
//! stack-distance evaluation (fig6a's 30-config L1 grid).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gmap_bench::{engine, prepare, sweep_benchmark, sweeps, Metric};
use gmap_gpu::workloads::Scale;

fn bench_sweep(c: &mut Criterion) {
    let data = prepare("kmeans", Scale::Tiny, 42);
    let configs = sweeps::l1_sweep();
    let plan =
        engine::plan_single_pass(&configs, Metric::L1MissPct).expect("the L1 sweep is single-pass");

    let mut group = c.benchmark_group("l1_sweep_kmeans_tiny");
    // Original + proxy series: 2 × configs evaluated points per iteration.
    group.throughput(Throughput::Elements(2 * configs.len() as u64));
    group.bench_function("direct_full_sim", |b| {
        b.iter(|| black_box(sweep_benchmark(&data, &configs, Metric::L1MissPct)))
    });
    group.bench_function("single_pass_engine", |b| {
        b.iter(|| black_box(engine::sweep_benchmark_single_pass(&data, &plan, &configs)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep
}
criterion_main!(benches);
