//! Criterion benchmarks for the coalesce-before-profile design choice
//! (§4: "coalescing is modeled before applying the memory locality
//! analysis, as it significantly reduces the computational and memory
//! complexity of the G-MAP model") — measuring exactly that reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use gmap_core::{profile_kernel, ProfilerConfig};
use gmap_gpu::exec::execute_kernel;
use gmap_gpu::workloads::{self, Scale};
use gmap_trace::reuse::ReuseComputer;

fn bench_coalesce_before_profile(c: &mut Criterion) {
    let kernel = workloads::backprop(Scale::Tiny);
    let app = execute_kernel(&kernel);

    let mut group = c.benchmark_group("coalesce_ablation");
    // The shipped design: profile the coalesced warp stream.
    group.bench_function("profile_coalesced", |b| {
        b.iter(|| std::hint::black_box(profile_kernel(&kernel, &ProfilerConfig::default())))
    });
    // The alternative: reuse analysis over the RAW per-thread stream —
    // 32x the events, which is the cost §4 avoids.
    group.bench_function("reuse_over_raw_threads", |b| {
        b.iter(|| {
            let mut rc = ReuseComputer::new();
            for (_, acc) in app.thread_entries() {
                std::hint::black_box(rc.push(acc.addr.0 / 128));
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_coalesce_before_profile
}
criterion_main!(benches);
