//! Criterion benchmarks of the four dual-path hot kernels, scalar vs
//! batched: stack-distance counting, histogram binning, warp coalescing,
//! and DRAM address decomposition. The perf tracker (`perf --smoke`) runs
//! the same comparisons headlessly and records the per-kernel speedups in
//! BENCH_sweep.json; this harness is the interactive view of the same
//! trade.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gmap_dram::mapping::{AddressMapping, DramGeometry, MappingPlan};
use gmap_gpu::coalesce::coalesce_addrs_into;
use gmap_memsim::cache::{CacheConfig, ReplacementPolicy};
use gmap_memsim::stackdist::{evaluate_lru_multi_with_mode, LineAccess, WriteMode};
use gmap_trace::batch::KernelMode;
use gmap_trace::record::ByteAddr;
use gmap_trace::{Histogram, Rng};

const MODES: [(&str, KernelMode); 2] = [
    ("scalar", KernelMode::Scalar),
    ("batched", KernelMode::Batched),
];

/// A synthetic line-access stream with GPU-ish locality: strided sweeps
/// with periodic revisits, ~20% stores.
fn synth_stream(n: usize, lines: u64, seed: u64) -> Vec<LineAccess> {
    let mut rng = Rng::seed_from(seed);
    let mut cursor = 0u64;
    (0..n)
        .map(|i| {
            cursor = if i % 7 == 0 {
                rng.gen_range(lines)
            } else {
                (cursor + 1) % lines
            };
            LineAccess::new(cursor, rng.gen_range(5) == 0)
        })
        .collect()
}

fn bench_stackdist(c: &mut Criterion) {
    let stream = synth_stream(100_000, 4096, 7);
    // A fig6a-shaped grid: two set-count classes with 15 associativity
    // points each, like the L1 sweep the engine runs.
    let mut configs = Vec::new();
    for sets in [64u64, 256] {
        for assoc in 1u32..=15 {
            configs.push(
                CacheConfig::new(
                    sets * assoc as u64 * 128,
                    assoc,
                    128,
                    ReplacementPolicy::Lru,
                )
                .expect("valid geometry"),
            );
        }
    }
    let mut group = c.benchmark_group("stackdist_100k_30geom");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (name, kmode) in MODES {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    evaluate_lru_multi_with_mode(
                        &configs,
                        black_box(&stream),
                        WriteMode::Allocate,
                        kmode,
                    )
                    .expect("valid grid"),
                )
            })
        });
    }
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    // Stride slices the profiler feeds: short runs, few distinct values.
    let mut rng = Rng::seed_from(11);
    let slices: Vec<Vec<i64>> = (0..2_000)
        .map(|_| {
            let len = 8 + rng.gen_range(56) as usize;
            (0..len)
                .map(|_| (rng.gen_range(7) as i64 - 3) * 128)
                .collect()
        })
        .collect();
    let total: u64 = slices.iter().map(|s| s.len() as u64).sum();
    let mut group = c.benchmark_group("histogram_stride_slices");
    group.throughput(Throughput::Elements(total));
    for (name, kmode) in MODES {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut h = Histogram::new();
                for s in &slices {
                    h.add_slice(black_box(s), kmode);
                }
                black_box(h)
            })
        });
    }
    group.finish();
}

fn bench_coalesce(c: &mut Criterion) {
    // 2000 warp instructions × 32 lanes, mixed unit-stride and scattered.
    let mut rng = Rng::seed_from(13);
    let warps: Vec<Vec<ByteAddr>> = (0..2_000)
        .map(|w| {
            if w % 2 == 0 {
                let base = rng.gen_range(1 << 20);
                (0..32).map(|i| ByteAddr(base + 4 * i)).collect()
            } else {
                (0..32).map(|_| ByteAddr(rng.gen_range(1 << 20))).collect()
            }
        })
        .collect();
    let mut group = c.benchmark_group("coalesce_2k_warps");
    group.throughput(Throughput::Elements(32 * warps.len() as u64));
    for (name, kmode) in MODES {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut out = Vec::new();
                let mut txns = 0usize;
                for addrs in &warps {
                    coalesce_addrs_into(black_box(addrs), 128, kmode, &mut out);
                    txns += out.len();
                }
                black_box(txns)
            })
        });
    }
    group.finish();
}

fn bench_dram_decompose(c: &mut Criterion) {
    let mut rng = Rng::seed_from(17);
    let addrs: Vec<u64> = (0..100_000).map(|_| rng.gen_range(1 << 32)).collect();
    let plan = MappingPlan::new(&DramGeometry::table2_baseline(), AddressMapping::RoBaRaCoCh);
    let mut group = c.benchmark_group("dram_decompose_100k");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for (name, kmode) in MODES {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut out = Vec::new();
                plan.decompose_batch(black_box(&addrs), kmode, &mut out);
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stackdist, bench_histogram, bench_coalesce, bench_dram_decompose
}
criterion_main!(benches);
