//! Criterion benchmarks of the G-MAP pipeline stages: kernel execution,
//! profiling, clone generation, and the full scheduler + hierarchy
//! simulation — the costs that determine how much a miniaturized clone
//! saves (Fig. 8's right axis).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gmap_core::{
    generate::generate_streams, model::original_streams, profile_kernel, simulate_streams,
    ProfilerConfig, SimtConfig,
};
use gmap_gpu::exec::execute_kernel;
use gmap_gpu::workloads::{self, Scale};

fn bench_pipeline(c: &mut Criterion) {
    let kernel = workloads::kmeans(Scale::Tiny);
    let streams = original_streams(&kernel);
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let proxy = generate_streams(&profile, 42);
    let accesses: u64 = streams.iter().map(|s| s.num_accesses() as u64).sum();
    let cfg = SimtConfig::default();

    let mut group = c.benchmark_group("pipeline_kmeans_tiny");
    group.throughput(Throughput::Elements(accesses));
    group.bench_function("execute_kernel", |b| {
        b.iter(|| std::hint::black_box(execute_kernel(&kernel)))
    });
    group.bench_function("profile", |b| {
        b.iter(|| std::hint::black_box(profile_kernel(&kernel, &ProfilerConfig::default())))
    });
    group.bench_function("generate_clone", |b| {
        b.iter(|| std::hint::black_box(generate_streams(&profile, 42)))
    });
    group.bench_function("simulate_original", |b| {
        b.iter(|| {
            std::hint::black_box(
                simulate_streams(&streams, &kernel.launch, &cfg).expect("valid config"),
            )
        })
    });
    group.bench_function("simulate_clone", |b| {
        b.iter(|| {
            std::hint::black_box(
                simulate_streams(&proxy, &profile.launch, &cfg).expect("valid config"),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
