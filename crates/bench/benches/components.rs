//! Criterion micro-benchmarks of the individual substrates: reuse-distance
//! computation, histogram sampling, cache simulation, and DRAM simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gmap_dram::{DramConfig, DramRequest, DramSystem};
use gmap_memsim::cache::{Cache, CacheConfig, ReplacementPolicy};
use gmap_trace::record::{AccessKind, ByteAddr};
use gmap_trace::reuse::ReuseComputer;
use gmap_trace::rng::mix64;
use gmap_trace::{Histogram, Rng};

fn bench_reuse_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("reuse_distance");
    for &n in &[10_000u64, 100_000] {
        let lines: Vec<u64> = (0..n).map(|i| mix64(i) % 4096).collect();
        group.throughput(Throughput::Elements(n));
        group.bench_function(format!("random_{n}"), |b| {
            b.iter_batched(
                ReuseComputer::new,
                |mut rc| {
                    for &l in &lines {
                        std::hint::black_box(rc.push(l));
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_histogram_sampling(c: &mut Criterion) {
    let mut hist = Histogram::new();
    for i in 0..1000i64 {
        hist.add_n(i * 128, (mix64(i as u64) % 100) + 1);
    }
    let sampler = hist.sampler();
    let mut group = c.benchmark_group("histogram");
    group.throughput(Throughput::Elements(1));
    group.bench_function("sampler_draw", |b| {
        let mut rng = Rng::seed_from(7);
        b.iter(|| std::hint::black_box(sampler.sample(&mut rng)))
    });
    group.bench_function("direct_draw", |b| {
        let mut rng = Rng::seed_from(7);
        b.iter(|| std::hint::black_box(hist.sample(&mut rng)))
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let cfg = CacheConfig::new(16 * 1024, 4, 128, ReplacementPolicy::Lru).expect("valid");
    let addrs: Vec<u64> = (0..100_000u64).map(|i| mix64(i) % 16384).collect();
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_function("l1_16k_random", |b| {
        b.iter_batched(
            || Cache::new(cfg),
            |mut cache| {
                for &a in &addrs {
                    std::hint::black_box(cache.access(a, false));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let reqs: Vec<DramRequest> = (0..50_000u64)
        .map(|i| DramRequest {
            cycle: i * 3,
            addr: ByteAddr((mix64(i) % (1 << 20)) * 128),
            kind: if i % 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        })
        .collect();
    let mut group = c.benchmark_group("dram");
    group.throughput(Throughput::Elements(reqs.len() as u64));
    group.bench_function("frfcfs_50k", |b| {
        b.iter(|| {
            let mut sys = DramSystem::new(DramConfig::table2_baseline());
            std::hint::black_box(sys.run(&reqs))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reuse_distance, bench_histogram_sampling, bench_cache, bench_dram
}
criterion_main!(benches);
