//! Property test: the single-pass sweep engine is numerically equivalent
//! to an independent per-config replay of the captured reference stream,
//! on *randomized* grids — geometry, replacement policy, and stride
//! prefetcher parameters all drawn at random.
//!
//! The oracle mirrors `GpuHierarchy`'s L1 demand path structurally
//! (separate `request` + `demand_fill`, per-core stride prefetchers with
//! probe-then-fill candidate installation) and never touches the
//! stack-distance code, so any disagreement is an engine bug, not a
//! shared one. Tolerance 1e-9: both sides count integer hits/misses, so
//! the only slack needed is the final percentage division.

use gmap_bench::engine::{self, CapturedStream};
use gmap_bench::prepare;
use gmap_core::SimtConfig;
use gmap_gpu::workloads::Scale;
use gmap_memsim::cache::AccessRequest;
use gmap_memsim::hierarchy::L1WritePolicy;
use gmap_memsim::prefetch::{StridePrefetcher, StridePrefetcherConfig};
use gmap_memsim::{Cache, CacheConfig, ReplacementPolicy};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// One captured reference stream, shared by every proptest case: the
/// capture config is the same for every masked L1 grid, so capturing per
/// case would only re-run identical work.
fn capture() -> &'static (Arc<CapturedStream>, SimtConfig) {
    static CAPTURE: OnceLock<(Arc<CapturedStream>, SimtConfig)> = OnceLock::new();
    CAPTURE.get_or_init(|| {
        let data = prepare("scalarprod", Scale::Tiny, 42);
        let plan = engine::plan_single_pass(
            &gmap_bench::sweeps::l1_sweep(),
            gmap_bench::Metric::L1MissPct,
        )
        .expect("stock L1 grid plans");
        let cap =
            engine::capture_stream(&data.orig_streams, &data.kernel.launch, &plan.capture_cfg);
        (Arc::new(cap), plan.capture_cfg)
    })
}

/// Independent per-config replay (the oracle).
fn direct_series(capture: &CapturedStream, configs: &[SimtConfig]) -> Vec<f64> {
    configs
        .iter()
        .map(|cfg| {
            let shift = cfg.hierarchy.l1.line_size.trailing_zeros();
            let mut l1s: Vec<Cache> = (0..capture.cores)
                .map(|_| Cache::new(cfg.hierarchy.l1))
                .collect();
            let mut pfs: Vec<Option<StridePrefetcher>> = (0..capture.cores)
                .map(|_| cfg.hierarchy.l1_prefetch.map(StridePrefetcher::new))
                .collect();
            for a in &capture.accesses {
                let line = a.addr >> shift;
                let core = a.core as usize;
                if a.is_write {
                    let (allocate_on_miss, mark_dirty) = match cfg.hierarchy.l1_write_policy {
                        L1WritePolicy::WriteThroughNoAllocate => (false, false),
                        L1WritePolicy::WriteBackAllocate => (true, true),
                    };
                    let _ = l1s[core].request(AccessRequest {
                        line,
                        is_write: true,
                        allocate_on_miss,
                        mark_dirty,
                    });
                } else {
                    let hit = l1s[core]
                        .request(AccessRequest {
                            line,
                            is_write: false,
                            allocate_on_miss: false,
                            mark_dirty: false,
                        })
                        .hit;
                    if let Some(pf) = pfs[core].as_mut() {
                        for cand in pf.observe(a.pc, line) {
                            if !l1s[core].probe(cand) {
                                l1s[core].prefetch_fill(cand);
                            }
                        }
                    }
                    if !hit {
                        l1s[core].demand_fill(line);
                    }
                }
            }
            let (acc, miss) = l1s.iter().fold((0u64, 0u64), |(a, m), c| {
                (a + c.stats().accesses, m + c.stats().misses)
            });
            if acc == 0 {
                0.0
            } else {
                miss as f64 / acc as f64 * 100.0
            }
        })
        .collect()
}

/// A random single-pass-eligible L1 config: LRU (optionally with a
/// stride prefetcher) or FIFO (never with one — the planner rejects that
/// combination).
fn l1_config() -> impl Strategy<Value = SimtConfig> {
    let geometry = (
        prop_oneof![Just(8u64), Just(16), Just(32), Just(64)],
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        prop_oneof![Just(64u64), Just(128)],
    );
    // The vendored proptest subset has no `option::of`; a bool gate over
    // unconditionally drawn parameters is equivalent.
    let prefetch = (
        prop_oneof![Just(16u32), Just(64), Just(256)],
        1u32..=4,
        1u32..=4,
        1u32..=3,
    );
    (geometry, prefetch, any::<bool>(), any::<bool>()).prop_map(
        |((kb, assoc, line), pf_params, use_pf, fifo)| {
            let pf = use_pf.then_some(pf_params);
            let mut cfg = SimtConfig::default();
            let policy = if fifo && pf.is_none() {
                ReplacementPolicy::Fifo
            } else {
                ReplacementPolicy::Lru
            };
            cfg.hierarchy.l1 = CacheConfig::new(kb * 1024, assoc, line, policy)
                .expect("strategy geometry is valid");
            if policy == ReplacementPolicy::Lru {
                cfg.hierarchy.l1_prefetch =
                    pf.map(|(table, degree, distance, conf)| StridePrefetcherConfig {
                        table_size: table,
                        degree,
                        distance,
                        min_confidence: conf,
                    });
            }
            cfg
        },
    )
}

proptest! {
    // Each case replays the full captured stream once per config on the
    // oracle side; a handful of cases over 2–5 config grids already
    // exercises every evaluator path (LRU, FIFO, prefetch) and the
    // grouping logic between them.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engine_matches_direct_replay_on_random_grids(
        grid in proptest::collection::vec(l1_config(), 2..=5)
    ) {
        let (cap, capture_cfg) = capture();
        let plan = engine::plan_single_pass(&grid, gmap_bench::Metric::L1MissPct)
            .expect("strategy only emits single-pass-eligible grids");
        prop_assert!(
            plan.capture_cfg == *capture_cfg,
            "every masked L1 grid shares the stock reference config"
        );
        let engine_vals = engine::eval_captured(&plan, cap, &grid).values;
        let direct_vals = direct_series(cap, &grid);
        for (i, (e, d)) in engine_vals.iter().zip(&direct_vals).enumerate() {
            prop_assert!(
                (e - d).abs() < 1e-9,
                "config {i}: engine {e} vs direct {d} (cfg {:?})",
                grid[i].hierarchy.l1
            );
        }
    }
}
