//! Property-based tests of the execution substrate.

use gmap_gpu::coalesce::{coalesce_addrs, coalesce_app};
use gmap_gpu::exec::execute_kernel;
use gmap_gpu::hierarchy::{GpuConfig, LaunchConfig};
use gmap_gpu::kernel::{dsl, IndexExpr, KernelBuilder, Pred, Stmt, Trip};
use gmap_gpu::schedule::{run_schedule, FixedLatency, Policy, WarpStreamEvent};
use gmap_trace::record::{ByteAddr, Pc, WarpId};
use proptest::prelude::*;

proptest! {
    /// Coalescing invariants: output is sorted, distinct, line-aligned,
    /// no longer than the input, and covers every input address.
    #[test]
    fn coalescing_invariants(
        addrs in proptest::collection::vec(any::<u64>(), 1..64),
        shift in 5u32..8, // line sizes 32..=128
    ) {
        let line = 1u64 << shift;
        let input: Vec<ByteAddr> = addrs.iter().map(|&a| ByteAddr(a)).collect();
        let out = coalesce_addrs(&input, line);
        prop_assert!(!out.is_empty());
        prop_assert!(out.len() <= input.len());
        prop_assert!(out.windows(2).all(|w| w[0] < w[1]), "sorted & distinct");
        for t in &out {
            prop_assert_eq!(t.0 % line, 0, "aligned");
        }
        for a in &input {
            prop_assert!(out.contains(&a.line_base(line)), "covered");
        }
    }

    /// Thread/warp mapping is a bijection over live threads.
    #[test]
    fn warp_lane_mapping_bijective(blocks in 1u32..8, tpb in 1u32..512) {
        let launch = LaunchConfig::new(blocks, tpb);
        let mut seen = std::collections::HashSet::new();
        for w in 0..launch.total_warps(32) {
            for lane in 0..32 {
                if let Some(tid) = launch.thread_of(WarpId(w), lane, 32) {
                    prop_assert!(tid.0 < launch.total_threads() as u32);
                    prop_assert!(seen.insert(tid), "duplicate thread {tid}");
                }
            }
        }
        prop_assert_eq!(seen.len() as u64, launch.total_threads());
    }

    /// Every access an executed kernel emits stays inside its arrays, for
    /// arbitrary affine coefficients.
    #[test]
    fn exec_addresses_in_bounds(
        tid_coef in -64i64..64,
        base in -1000i64..1000,
        iter_coef in -512i64..512,
        trip in 1u32..8,
    ) {
        let k = KernelBuilder::new("prop", 2u32, 64u32)
            .array("a", 4096)
            .stmt(dsl::loop_n(trip, vec![dsl::read(0x10, 0, dsl::affine(base, tid_coef, vec![(0, iter_coef)]))]))
            .build()
            .expect("valid");
        let app = execute_kernel(&k);
        let a = &k.arrays[0];
        for (_, acc) in app.thread_entries() {
            prop_assert!(acc.addr.0 >= a.base.0);
            prop_assert!(acc.addr.0 < a.base.0 + a.size_bytes());
        }
        // Volume: every thread executes the loop `trip` times.
        prop_assert_eq!(app.total_thread_accesses(), 128 * trip as u64);
    }

    /// The scheduler issues every event exactly once, under every policy
    /// and random latencies, with or without divergence.
    #[test]
    fn scheduler_conserves_events(
        latency in 1u64..300,
        policy_sel in 0u8..3,
        percent in 0u8..101,
        spread in 0u32..5,
        cores in 1u16..4,
    ) {
        let policy = match policy_sel {
            0 => Policy::Lrr,
            1 => Policy::Gto,
            _ => Policy::SelfProb(0.5),
        };
        let k = KernelBuilder::new("prop", 3u32, 96u32)
            .array("a", 1 << 14)
            .stmt(Stmt::If {
                pred: Pred::Hashed { seed: 1, percent },
                then_body: vec![Stmt::Loop {
                    trip: Trip::Hashed { seed: 2, base: 1, spread },
                    body: vec![dsl::read(0x10, 0, IndexExpr::tid_linear(0, 1))],
                }],
                else_body: vec![dsl::read(0x20, 0, IndexExpr::tid_linear(0, 2))],
            })
            .stmt(Stmt::Sync)
            .stmt(dsl::read(0x30, 0, IndexExpr::tid_linear(0, 1)))
            .build()
            .expect("valid");
        let streams = coalesce_app(&execute_kernel(&k), 128);
        let total: usize = streams.iter().map(|s| s.num_accesses()).sum();
        let gpu = GpuConfig { num_cores: cores, ..GpuConfig::fermi_baseline() };
        let mut mem = FixedLatency(latency);
        let out = run_schedule(&streams, &k.launch, &gpu, policy, &mut mem, 7);
        prop_assert_eq!(out.issued_accesses, total as u64);
        prop_assert!(out.cycles > 0 || total == 0);
        prop_assert!((0.0..=1.0).contains(&out.sched_p_self));
    }

    /// Transactions per warp access never exceed the warp size, and warp
    /// streams preserve the kernel's event counts.
    #[test]
    fn coalesce_app_event_conservation(tpb in 32u32..256) {
        let k = KernelBuilder::new("prop", 2u32, tpb)
            .array("a", 1 << 16)
            .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 3))
            .build()
            .expect("valid");
        let app = execute_kernel(&k);
        let streams = coalesce_app(&app, 128);
        prop_assert_eq!(streams.len() as u64, app.warps.len() as u64);
        for s in &streams {
            for e in &s.events {
                if let WarpStreamEvent::Access(a) = e {
                    prop_assert!(a.lines.len() <= 32);
                    prop_assert!(!a.lines.is_empty());
                }
            }
        }
    }
}
