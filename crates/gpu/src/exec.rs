//! Lockstep SIMT execution of kernel descriptions.
//!
//! Executes a [`KernelDesc`] warp by warp, maintaining an active-lane mask
//! through loops and divergent branches exactly as a SIMT machine would:
//! both sides of a divergent branch execute serially under complementary
//! masks, and loops run until the longest-running active lane exits. The
//! result is, per warp, the ordered sequence of dynamic memory instructions
//! with per-lane addresses — the raw material G-MAP profiles (§4.1).

use crate::hierarchy::LaunchConfig;
use crate::kernel::{EvalCtx, KernelDesc, Stmt};
use gmap_trace::io::TraceEntry;
use gmap_trace::record::{AccessKind, ByteAddr, Pc, ThreadId, WarpId};
use serde::{Deserialize, Serialize};

/// One dynamic event of a warp.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarpEvent {
    /// A memory instruction executed by the active lanes.
    Access {
        /// Static instruction.
        pc: Pc,
        /// Read or write.
        kind: AccessKind,
        /// `(lane, byte address)` for every active lane, in lane order.
        lane_addrs: Vec<(u8, ByteAddr)>,
    },
    /// The warp reached a threadblock barrier.
    Sync,
}

impl WarpEvent {
    /// Number of scalar (thread-level) accesses in this event.
    pub fn thread_accesses(&self) -> usize {
        match self {
            WarpEvent::Access { lane_addrs, .. } => lane_addrs.len(),
            WarpEvent::Sync => 0,
        }
    }
}

/// The dynamic event stream of one warp.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpTrace {
    /// Global warp id.
    pub warp: WarpId,
    /// Block the warp belongs to.
    pub block: u32,
    /// Events in execution order.
    pub events: Vec<WarpEvent>,
}

/// One scalar (thread-level) access annotated with its barrier-phase
/// coordinates, as produced by [`AppTrace::phased_accesses`].
///
/// `phase` counts the [`WarpEvent::Sync`] events the owning warp had
/// already emitted when the access executed. Two accesses from warps of
/// the same block are barrier-ordered iff their phases differ; accesses
/// from different blocks are never barrier-ordered (no inter-block
/// synchronization exists in the model), so their phases are irrelevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhasedAccess {
    /// Block the issuing warp belongs to.
    pub block: u32,
    /// Global warp id of the issuing warp.
    pub warp: u32,
    /// Number of barriers the warp passed before this access.
    pub phase: u32,
    /// Static instruction.
    pub pc: Pc,
    /// Read or write.
    pub kind: AccessKind,
    /// Lane within the warp.
    pub lane: u8,
    /// Byte address touched.
    pub addr: ByteAddr,
}

/// The complete execution trace of a kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppTrace {
    /// Benchmark name (copied from the kernel).
    pub name: String,
    /// Launch geometry.
    pub launch: LaunchConfig,
    /// Warp size used during execution.
    pub warp_size: u32,
    /// Per-warp event streams, ordered by global warp id.
    pub warps: Vec<WarpTrace>,
}

impl AppTrace {
    /// Total number of scalar (thread-level) memory accesses.
    pub fn total_thread_accesses(&self) -> u64 {
        self.warps
            .iter()
            .flat_map(|w| w.events.iter())
            .map(|e| e.thread_accesses() as u64)
            .sum()
    }

    /// Total number of warp-level dynamic memory instructions.
    pub fn total_warp_instructions(&self) -> u64 {
        self.warps
            .iter()
            .flat_map(|w| w.events.iter())
            .filter(|e| matches!(e, WarpEvent::Access { .. }))
            .count() as u64
    }

    /// Optional per-phase access recorder: flattens the trace into scalar
    /// accesses stamped with the barrier phase of their issuing warp.
    ///
    /// This is the dynamic counterpart of the static barrier-phase race
    /// analysis: every `Sync` a warp emits — conditional or not —
    /// increments its phase counter, which is exactly the
    /// happens-before index the dynamic checker in [`crate::race`]
    /// compares. Ordered by warp, then event, then lane.
    pub fn phased_accesses(&self) -> Vec<PhasedAccess> {
        let mut out = Vec::new();
        for wt in &self.warps {
            let mut phase = 0u32;
            for ev in &wt.events {
                match ev {
                    WarpEvent::Sync => phase += 1,
                    WarpEvent::Access {
                        pc,
                        kind,
                        lane_addrs,
                    } => {
                        for &(lane, addr) in lane_addrs {
                            out.push(PhasedAccess {
                                block: wt.block,
                                warp: wt.warp.0,
                                phase,
                                pc: *pc,
                                kind: *kind,
                                lane,
                                addr,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Flattens into `(thread, access)` entries for trace I/O, ordered by
    /// warp then event then lane.
    pub fn thread_entries(&self) -> Vec<TraceEntry> {
        let mut out = Vec::new();
        for wt in &self.warps {
            for ev in &wt.events {
                if let WarpEvent::Access {
                    pc,
                    kind,
                    lane_addrs,
                } = ev
                {
                    for &(lane, addr) in lane_addrs {
                        let tid = self
                            .launch
                            .thread_of(wt.warp, lane as u32, self.warp_size)
                            .expect("active lane maps to a live thread");
                        out.push((
                            tid,
                            gmap_trace::record::MemAccess {
                                pc: *pc,
                                addr,
                                kind: *kind,
                            },
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Executes a kernel with the default 32-thread warps.
pub fn execute_kernel(kernel: &KernelDesc) -> AppTrace {
    execute_kernel_with(kernel, 32)
}

/// Executes a kernel with an explicit warp size.
///
/// # Panics
///
/// Panics if `warp_size` is 0 or greater than 64, or if the kernel fails
/// validation (call [`KernelDesc::validate`] first for a `Result`).
pub fn execute_kernel_with(kernel: &KernelDesc, warp_size: u32) -> AppTrace {
    assert!((1..=64).contains(&warp_size), "warp size must be in 1..=64");
    kernel.validate().expect("kernel must be valid");
    let launch = kernel.launch;
    let total_warps = launch.total_warps(warp_size);
    let mut warps = Vec::with_capacity(total_warps as usize);
    for w in 0..total_warps {
        let warp = WarpId(w);
        let block = launch.block_of_warp(warp, warp_size);
        let lanes: Vec<Option<ThreadId>> = (0..warp_size)
            .map(|lane| launch.thread_of(warp, lane, warp_size))
            .collect();
        let initial_mask: u64 = lanes
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some())
            .map(|(i, _)| 1u64 << i)
            .sum();
        let mut exec = WarpExec {
            kernel,
            warp: w,
            block,
            lanes: &lanes,
            iters: Vec::new(),
            events: Vec::new(),
        };
        exec.run(&kernel.body, initial_mask);
        warps.push(WarpTrace {
            warp,
            block,
            events: exec.events,
        });
    }
    AppTrace {
        name: kernel.name.clone(),
        launch,
        warp_size,
        warps,
    }
}

/// Per-warp execution state.
struct WarpExec<'a> {
    kernel: &'a KernelDesc,
    warp: u32,
    block: u32,
    lanes: &'a [Option<ThreadId>],
    iters: Vec<u64>,
    events: Vec<WarpEvent>,
}

impl WarpExec<'_> {
    fn ctx(&self, lane: usize) -> Option<EvalCtx<'_>> {
        self.lanes[lane].map(|tid| EvalCtx {
            tid: tid.0 as u64,
            lane: lane as u32,
            warp: self.warp,
            block: self.block,
            iters: &self.iters,
        })
    }

    fn run(&mut self, stmts: &[Stmt], mask: u64) {
        if mask == 0 {
            return;
        }
        for stmt in stmts {
            match stmt {
                Stmt::Access(acc) => {
                    let array = &self.kernel.arrays[acc.array];
                    let elems = array.elems.max(1) as i64;
                    let mut lane_addrs = Vec::new();
                    for lane in 0..self.lanes.len() {
                        if mask & (1 << lane) == 0 {
                            continue;
                        }
                        let ctx = self.ctx(lane).expect("masked lanes are live");
                        let elem = acc.index.eval(&ctx).rem_euclid(elems) as u64;
                        let addr = ByteAddr(array.base.0 + elem * array.elem_size as u64);
                        lane_addrs.push((lane as u8, addr));
                    }
                    self.events.push(WarpEvent::Access {
                        pc: acc.pc,
                        kind: acc.kind,
                        lane_addrs,
                    });
                }
                Stmt::Loop { trip, body } => {
                    // Per-lane trip counts; the warp iterates until the
                    // longest-running active lane finishes.
                    let trips: Vec<u32> = (0..self.lanes.len())
                        .map(|lane| match self.lanes[lane] {
                            Some(tid) if mask & (1 << lane) != 0 => trip.count_for(tid.0 as u64),
                            _ => 0,
                        })
                        .collect();
                    let max_trip = trips.iter().copied().max().unwrap_or(0);
                    for i in 0..max_trip {
                        let submask: u64 = trips
                            .iter()
                            .enumerate()
                            .filter(|&(_, &t)| t > i)
                            .map(|(lane, _)| 1u64 << lane)
                            .fold(0, |m, b| m | b)
                            & mask;
                        if submask == 0 {
                            break;
                        }
                        self.iters.push(i as u64);
                        self.run(body, submask);
                        self.iters.pop();
                    }
                }
                Stmt::If {
                    pred,
                    then_body,
                    else_body,
                } => {
                    let mut then_mask = 0u64;
                    for lane in 0..self.lanes.len() {
                        if mask & (1 << lane) == 0 {
                            continue;
                        }
                        let ctx = self.ctx(lane).expect("masked lanes are live");
                        if pred.eval(&ctx) {
                            then_mask |= 1 << lane;
                        }
                    }
                    let else_mask = mask & !then_mask;
                    // SIMT serialization: both sides run, under
                    // complementary masks.
                    self.run(then_body, then_mask);
                    self.run(else_body, else_mask);
                }
                Stmt::Sync => self.events.push(WarpEvent::Sync),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::dsl;
    use crate::kernel::{IndexExpr, KernelBuilder, Pred, Stmt, Trip};

    fn vecadd(grid: u32, block: u32) -> KernelDesc {
        KernelBuilder::new("vecadd", grid, block)
            .array("a", 1 << 16)
            .array("b", 1 << 16)
            .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
            .read(Pc(0x18), 1, IndexExpr::tid_linear(0, 1))
            .write(Pc(0x20), 0, IndexExpr::tid_linear(0, 1))
            .build()
            .expect("valid")
    }

    #[test]
    fn vecadd_addresses_are_tid_linear() {
        let app = execute_kernel(&vecadd(2, 64));
        assert_eq!(app.warps.len(), 4);
        let w0 = &app.warps[0];
        assert_eq!(w0.events.len(), 3);
        if let WarpEvent::Access { pc, lane_addrs, .. } = &w0.events[0] {
            assert_eq!(*pc, Pc(0x10));
            assert_eq!(lane_addrs.len(), 32);
            let base = lane_addrs[0].1 .0;
            for (i, &(lane, addr)) in lane_addrs.iter().enumerate() {
                assert_eq!(lane as usize, i);
                assert_eq!(addr.0, base + 4 * i as u64);
            }
        } else {
            panic!("expected access event");
        }
        // Second warp of block 0 starts 32 elements later.
        if let (
            WarpEvent::Access { lane_addrs: a0, .. },
            WarpEvent::Access { lane_addrs: a1, .. },
        ) = (&app.warps[0].events[0], &app.warps[1].events[0])
        {
            assert_eq!(a1[0].1 .0 - a0[0].1 .0, 32 * 4);
        } else {
            panic!("expected access events");
        }
    }

    #[test]
    fn counts_are_consistent() {
        let app = execute_kernel(&vecadd(2, 64));
        assert_eq!(app.total_warp_instructions(), 4 * 3);
        assert_eq!(app.total_thread_accesses(), 4 * 3 * 32);
        assert_eq!(app.thread_entries().len(), 4 * 3 * 32);
    }

    #[test]
    fn partial_warp_masks_padding_lanes() {
        let app = execute_kernel(&vecadd(1, 48));
        assert_eq!(app.warps.len(), 2);
        if let WarpEvent::Access { lane_addrs, .. } = &app.warps[1].events[0] {
            assert_eq!(lane_addrs.len(), 16);
        } else {
            panic!("expected access event");
        }
    }

    #[test]
    fn divergent_branch_executes_both_sides() {
        let k = KernelBuilder::new("div", 1u32, 32u32)
            .array("a", 1024)
            .stmt(Stmt::If {
                pred: Pred::LaneLt(8),
                then_body: vec![dsl::read(0x10, 0, IndexExpr::tid_linear(0, 1))],
                else_body: vec![dsl::read(0x20, 0, IndexExpr::tid_linear(100, 1))],
            })
            .build()
            .expect("valid");
        let app = execute_kernel(&k);
        let evs = &app.warps[0].events;
        assert_eq!(evs.len(), 2);
        match (&evs[0], &evs[1]) {
            (
                WarpEvent::Access {
                    pc: p0,
                    lane_addrs: a0,
                    ..
                },
                WarpEvent::Access {
                    pc: p1,
                    lane_addrs: a1,
                    ..
                },
            ) => {
                assert_eq!((*p0, a0.len()), (Pc(0x10), 8));
                assert_eq!((*p1, a1.len()), (Pc(0x20), 24));
            }
            _ => panic!("expected two access events"),
        }
    }

    #[test]
    fn branch_with_uniform_predicate_skips_empty_side() {
        let k = KernelBuilder::new("uniform", 1u32, 32u32)
            .array("a", 1024)
            .stmt(Stmt::If {
                pred: Pred::TidLt(1024), // all threads
                then_body: vec![dsl::read(0x10, 0, IndexExpr::tid_linear(0, 1))],
                else_body: vec![dsl::read(0x20, 0, IndexExpr::tid_linear(0, 1))],
            })
            .build()
            .expect("valid");
        let app = execute_kernel(&k);
        assert_eq!(app.warps[0].events.len(), 1);
    }

    #[test]
    fn loop_iterates_and_exposes_counter() {
        let k = KernelBuilder::new("loop", 1u32, 32u32)
            .array("a", 1 << 12)
            .stmt(dsl::loop_n(
                3,
                vec![dsl::read(0x10, 0, dsl::affine(0, 1, vec![(0, 32)]))],
            ))
            .build()
            .expect("valid");
        let app = execute_kernel(&k);
        let evs = &app.warps[0].events;
        assert_eq!(evs.len(), 3);
        let first_addrs: Vec<u64> = evs
            .iter()
            .map(|e| match e {
                WarpEvent::Access { lane_addrs, .. } => lane_addrs[0].1 .0,
                WarpEvent::Sync => unreachable!(),
            })
            .collect();
        assert_eq!(first_addrs[1] - first_addrs[0], 32 * 4);
        assert_eq!(first_addrs[2] - first_addrs[1], 32 * 4);
    }

    #[test]
    fn hashed_trip_loop_sheds_lanes() {
        let k = KernelBuilder::new("ragged", 1u32, 32u32)
            .array("a", 1 << 12)
            .stmt(Stmt::Loop {
                trip: Trip::Hashed {
                    seed: 7,
                    base: 1,
                    spread: 4,
                },
                body: vec![dsl::read(0x10, 0, IndexExpr::tid_linear(0, 1))],
            })
            .build()
            .expect("valid");
        let app = execute_kernel(&k);
        let sizes: Vec<usize> = app.warps[0]
            .events
            .iter()
            .map(WarpEvent::thread_accesses)
            .collect();
        // Iteration 0 has all lanes; later iterations shed lanes.
        assert_eq!(sizes[0], 32);
        assert!(sizes.last().copied().expect("at least one event") < 32);
        for pair in sizes.windows(2) {
            assert!(pair[1] <= pair[0], "active lanes must be non-increasing");
        }
    }

    #[test]
    fn sync_events_are_emitted() {
        let k = KernelBuilder::new("sync", 1u32, 64u32)
            .array("a", 1024)
            .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
            .stmt(Stmt::Sync)
            .read(Pc(0x20), 0, IndexExpr::tid_linear(0, 1))
            .build()
            .expect("valid");
        let app = execute_kernel(&k);
        for w in &app.warps {
            assert_eq!(w.events.len(), 3);
            assert!(matches!(w.events[1], WarpEvent::Sync));
        }
    }

    #[test]
    fn addresses_stay_within_arrays() {
        let k = KernelBuilder::new("wrap", 4u32, 64u32)
            .array("a", 100) // small array forces wrapping
            .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 7))
            .build()
            .expect("valid");
        let app = execute_kernel(&k);
        let a = &k.arrays[0];
        for (_, acc) in app.thread_entries() {
            assert!(acc.addr.0 >= a.base.0);
            assert!(acc.addr.0 < a.base.0 + a.size_bytes());
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let k = vecadd(3, 96);
        assert_eq!(execute_kernel(&k), execute_kernel(&k));
    }
}
