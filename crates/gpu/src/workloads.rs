//! Synthetic models of the paper's 18 GPGPU benchmarks.
//!
//! The paper evaluates G-MAP on 18 applications from Rodinia, the CUDA SDK
//! and the ISPASS-2009 suite. Those binaries (and the CUDA-sim profiler that
//! traced them) are outside this reproduction's reach, so each benchmark is
//! modeled as a [`KernelDesc`] whose *memory-access signature* follows what
//! the paper itself publishes about it:
//!
//! - Table 1's dominant PCs, inter-warp strides, intra-warp strides and
//!   reuse classes for the 10 applications it lists;
//! - the per-benchmark commentary of §5 for the rest (hotspot has "no
//!   dominant intra-/inter-thread stride patterns or reuse locality",
//!   kmeans and heartwall have "significant reuse locality", scalarProd and
//!   srad are "regular \[but\] largely insensitive to L1 prefetching due to
//!   larger footprints and lower temporal locality", nw and kmeans "benefit
//!   from prefetching", ...).
//!
//! Every constructor documents the signature it targets. The `table1`
//! experiment binary regenerates the measured signature for comparison.
//!
//! [`Scale`] shrinks the launches for tests ([`Scale::Tiny`]) or grows them
//! for full experiments ([`Scale::Default`]); geometry *shape* (threads per
//! block, stride structure) is scale-invariant, only grid sizes and trip
//! counts change.

use crate::kernel::dsl::{loop_n, read, write};
use crate::kernel::{IndexExpr, KernelBuilder, KernelDesc, Pred, Stmt, Trip};
use serde::{Deserialize, Serialize};

/// Workload size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Minimal size for unit tests (hundreds of warps, short loops).
    Tiny,
    /// Intermediate size for integration tests.
    Small,
    /// Full experiment size.
    Default,
}

impl Scale {
    /// Grid-size multiplier.
    pub fn grid(self, base: u32) -> u32 {
        base * match self {
            Scale::Tiny => 1,
            Scale::Small => 2,
            Scale::Default => 6,
        }
    }

    /// Loop-trip multiplier.
    pub fn trip(self, base: u32) -> u32 {
        base * match self {
            Scale::Tiny => 1,
            Scale::Small => 2,
            Scale::Default => 3,
        }
    }
}

/// Affine index helper with every coefficient explicit (in elements).
fn idx(
    base: i64,
    tid_coef: i64,
    lane_coef: i64,
    warp_coef: i64,
    block_coef: i64,
    iter_coefs: Vec<(u8, i64)>,
) -> IndexExpr {
    IndexExpr::Affine {
        base,
        tid_coef,
        lane_coef,
        warp_coef,
        block_coef,
        iter_coefs,
    }
}

/// Rodinia *heartwall* — Table 1: PC 0x900 at 81 % frequency, inter-warp
/// stride 128 B at ~52 %, intra strides {64, −128, 1024} B, **high** reuse.
///
/// Modeled as 64-thread blocks (2 warps, so only half of warp transitions
/// see the 128 B stride) scanning a per-block frame window repeatedly: the
/// inner 16-iteration loop at 0x900 re-reads the same window every outer
/// iteration, giving the high temporal reuse the paper credits for
/// heartwall's >97 % L1 accuracy.
pub fn heartwall(scale: Scale) -> KernelDesc {
    let grid = scale.grid(12);
    let e_trip = scale.trip(4);
    let blocks = grid as u64;
    let warps = blocks * 2;
    let elems = blocks * 136 + warps * 32 + 64 + e_trip as u64 * 256 + 16 * 16 + 64;
    let e_off = (e_trip as i64) * 32;
    KernelBuilder::new("heartwall", grid, 64u32)
        .array("frame", elems)
        .stmt(loop_n(
            e_trip,
            vec![
                // intra-thread stride −128 B (−32 elements per iteration).
                read(0x4a0, 0, idx(e_off, 0, 1, 32, 136, vec![(0, -32)])),
                // intra-thread stride +1024 B (+256 elements per iteration).
                read(0x4a8, 0, idx(0, 0, 1, 32, 136, vec![(0, 256)])),
                // Dominant PC: inner window scan, 64 B steps, re-read every
                // outer iteration (no `e` coefficient) -> high reuse.
                loop_n(
                    16,
                    vec![read(0x900, 0, idx(0, 0, 1, 32, 136, vec![(1, 16)]))],
                ),
            ],
        ))
        .build()
        .expect("heartwall kernel is valid")
}

/// Rodinia *backprop* (BP) — Table 1: three PCs at 19.4 % each, inter-warp
/// 128 B at 64–75 %, intra ±128 B, **medium** reuse.
///
/// 128-thread blocks (4 warps: 3 of 4 warp transitions stride 128 B); two
/// outer passes over the same per-warp regions give ~50 % reuse.
pub fn backprop(scale: Scale) -> KernelDesc {
    let grid = scale.grid(16);
    let j_trip = scale.trip(8);
    let blocks = grid as u64;
    let span = blocks * 96 + blocks * 4 * 32 + 32 + j_trip as u64 * 32 + 64;
    let j_off = (j_trip as i64) * 32;
    KernelBuilder::new("backprop", grid, 128u32)
        .array("input", span)
        .array("weights", span)
        .array("hidden", span)
        .stmt(loop_n(
            2,
            vec![loop_n(
                j_trip,
                vec![
                    read(0x3f8, 0, idx(0, 0, 1, 32, 96, vec![(1, 32)])),
                    read(0x408, 1, idx(j_off, 0, 1, 32, 96, vec![(1, -32)])),
                    read(0x478, 2, idx(0, 0, 1, 32, 96, vec![(1, 32)])),
                    write(0x480, 2, idx(0, 0, 1, 32, 96, vec![])),
                ],
            )],
        ))
        .build()
        .expect("backprop kernel is valid")
}

/// Rodinia *kmeans* — Table 1: a single PC 0xe8 at ~100 % frequency,
/// inter-warp stride 4352 B (feature-major layout: 34 features × 4 B × 32
/// lanes), **high** reuse (every cluster iteration re-reads the thread's
/// feature vector — the paper singles kmeans out for its reuse locality and
/// prefetch benefit).
pub fn kmeans(scale: Scale) -> KernelDesc {
    let grid = scale.grid(24);
    let k_trip = scale.trip(6);
    let total_threads = grid as u64 * 128;
    KernelBuilder::new("kmeans", grid, 128u32)
        .array("features", total_threads * 34 + 34)
        .array("membership", total_threads)
        .stmt(loop_n(
            k_trip,
            vec![loop_n(
                34,
                // Feature walk descends; no `k` coefficient -> the whole
                // vector is re-read for every cluster.
                vec![read(0xe8, 0, idx(33, 34, 0, 0, 0, vec![(1, -1)]))],
            )],
        ))
        .stmt(write(0xf0, 1, IndexExpr::tid_linear(0, 1)))
        .build()
        .expect("kmeans kernel is valid")
}

/// Rodinia *srad* — Table 1: three PCs at 31.2 % each, inter-warp 16384 B
/// (each warp owns two 2048-element image rows), intra −8192 B (walking
/// rows upward), **low** reuse.
pub fn srad(scale: Scale) -> KernelDesc {
    let grid = scale.grid(8);
    let j_trip = scale.trip(4);
    let warps = grid as u64 * 8;
    const COLS: i64 = 2048;
    let j_off = (j_trip as i64) * COLS;
    let elems = warps * 4096 + j_trip as u64 * 2048 + 3 * 2048 + 64;
    KernelBuilder::new("srad", grid, 256u32)
        .array("image", elems)
        .array("coeff", elems)
        .array("deriv", elems)
        .stmt(loop_n(
            j_trip,
            vec![
                // Row sweeps over three distinct operand arrays (image,
                // diffusion coefficients, derivatives), −2048 elements per
                // iteration; every row is visited exactly once -> low reuse.
                read(0x230, 0, idx(j_off, 0, 1, 4096, 0, vec![(0, -COLS)])),
                read(0x250, 1, idx(j_off + COLS, 0, 1, 4096, 0, vec![(0, -COLS)])),
                read(
                    0x350,
                    2,
                    idx(j_off + 2 * COLS, 0, 1, 4096, 0, vec![(0, -COLS)]),
                ),
                write(0x360, 0, idx(j_off + COLS, 0, 1, 4096, 0, vec![(0, -COLS)])),
            ],
        ))
        .build()
        .expect("srad kernel is valid")
}

/// CUDA SDK *scalarProd* (SP) — Table 1: two PCs at 48 % each, inter-warp
/// 128 B at 88 % (256-thread blocks), intra 4096 B (grid-stride loop over
/// 1024 threads), **low** reuse. §5 notes it is regular yet insensitive to
/// L1 prefetching because of its large footprint and low temporal locality.
///
/// The thread count is fixed at 1024 so the grid-stride equals the paper's
/// 4096 B; scaling lengthens the streamed vectors instead.
pub fn scalarprod(scale: Scale) -> KernelDesc {
    let j_trip = scale.trip(16);
    const TOTAL: i64 = 1024; // 4 blocks x 256 threads
    let elems = (TOTAL as u64) * (j_trip as u64) + 64;
    KernelBuilder::new("scalarprod", 4u32, 256u32)
        .array("a", elems)
        .array("b", elems)
        .array("partial", TOTAL as u64)
        .stmt(loop_n(
            j_trip,
            vec![
                read(0xd8, 0, idx(0, 1, 0, 0, 0, vec![(0, TOTAL)])),
                read(0xe0, 1, idx(0, 1, 0, 0, 0, vec![(0, TOTAL)])),
            ],
        ))
        .stmt(write(0xf0, 2, IndexExpr::tid_linear(0, 1)))
        .build()
        .expect("scalarprod kernel is valid")
}

/// ISPASS-2009 *CP* (coulombic potential) — Table 1: three PCs at 25 %
/// each, inter-warp 2048 B (16 elements per thread), intra −1024 B,
/// **medium** reuse (each −1024 B step overlaps half of the previous
/// 2048 B warp window).
pub fn cp(scale: Scale) -> KernelDesc {
    let grid = scale.grid(16);
    let j_trip = scale.trip(6);
    let total_threads = grid as u64 * 128;
    let j_off = (j_trip as i64) * 256;
    let elems = total_threads * 16 + j_trip as u64 * 256 + 64;
    KernelBuilder::new("cp", grid, 128u32)
        .array("atoms_x", elems)
        .array("atoms_y", elems)
        .array("atoms_z", elems)
        .array("grid_out", total_threads)
        .stmt(loop_n(
            j_trip,
            vec![
                read(0x208, 0, idx(j_off, 16, 0, 0, 0, vec![(0, -256)])),
                read(0x218, 1, idx(j_off, 16, 0, 0, 0, vec![(0, -256)])),
                read(0x220, 2, idx(j_off, 16, 0, 0, 0, vec![(0, -256)])),
            ],
        ))
        .stmt(write(0x230, 3, IndexExpr::tid_linear(0, 1)))
        .build()
        .expect("cp kernel is valid")
}

/// CUDA SDK *BlackScholes* (BLK) — Table 1: PCs at 20 % each (three reads +
/// two writes), inter-warp 128 B at 77.6 %, intra = 4·total-threads B
/// (grid-stride), **low** reuse. The paper reports 245760 B, i.e. 61440
/// threads; that is reached at `Scale::Default` (480 blocks × 128).
pub fn blackscholes(scale: Scale) -> KernelDesc {
    let grid = scale.grid(80);
    let j_trip = scale.trip(2);
    let total = grid as i64 * 128;
    let elems = (total as u64) * (j_trip as u64) + 64;
    KernelBuilder::new("blackscholes", grid, 128u32)
        .array("price", elems)
        .array("strike", elems)
        .array("time", elems)
        .array("call", elems)
        .array("put", elems)
        .stmt(loop_n(
            j_trip,
            vec![
                read(0x0f0, 0, idx(0, 1, 0, 0, 0, vec![(0, total)])),
                read(0x0f8, 1, idx(0, 1, 0, 0, 0, vec![(0, total)])),
                read(0x100, 2, idx(0, 1, 0, 0, 0, vec![(0, total)])),
                write(0x108, 3, idx(0, 1, 0, 0, 0, vec![(0, total)])),
                write(0x110, 4, idx(0, 1, 0, 0, 0, vec![(0, total)])),
            ],
        ))
        .build()
        .expect("blackscholes kernel is valid")
}

/// ISPASS-2009 *LU* decomposition (LUL) — Table 1: many PCs at only ~4 %
/// each, weakly dominant inter-warp stride 352 B (88-element matrix rows)
/// at 26 %, intra −128 B, **low** reuse. Modeled with hashed participation
/// predicates: the triangular structure means different warps do different
/// amounts of work.
pub fn lu(scale: Scale) -> KernelDesc {
    let grid = scale.grid(32);
    let k_trip = scale.trip(8);
    let warps = grid as u64 * 2;
    let k_off = (k_trip as i64) * 32;
    let elems = warps * 88 + k_trip as u64 * 89 + k_off as u64 + 24576 + 88 + 64;
    // Row reads broadcast one address per warp (lane coefficient 0): a
    // single transaction per access, and the −128 B walk visits each line
    // exactly once — LU's low reuse (Table 1). Offsets are far apart so
    // the PCs touch distinct regions.
    let row = |pc: u64, extra: i64| read(pc, 0, idx(k_off + extra, 0, 0, 88, 0, vec![(0, -32)]));
    KernelBuilder::new("lu", grid, 64u32)
        .array("matrix", elems)
        .stmt(loop_n(
            k_trip,
            vec![
                // Shared pivot row: every warp reads the same address.
                read(0x1c60, 0, idx(0, 0, 1, 0, 0, vec![(0, 89)])),
                Stmt::If {
                    pred: Pred::Hashed {
                        seed: 0x1b,
                        percent: 70,
                    },
                    then_body: vec![row(0x1c85, 0), row(0x1ca8, 4096), row(0x1cc8, 8192)],
                    else_body: vec![],
                },
                Stmt::If {
                    pred: Pred::Hashed {
                        seed: 0x2c,
                        percent: 30,
                    },
                    then_body: vec![
                        row(0x1d00, 12288),
                        row(0x1d08, 16384),
                        row(0x1d10, 20480),
                        write(0x1d18, 0, idx(k_off + 24576, 0, 1, 88, 0, vec![(0, -32)])),
                    ],
                    else_body: vec![],
                },
            ],
        ))
        .build()
        .expect("lu kernel is valid")
}

/// ISPASS-2009 *LIB* (LIBOR) — Table 1: two PCs at 46 % each, inter-warp
/// 128 B at 57 % (96-thread blocks: 2 of 3 transitions), intra 19200 B
/// (= 4·4800 threads), **high** reuse (each Monte-Carlo path re-reads the
/// forward-rate state).
pub fn lib(scale: Scale) -> KernelDesc {
    let p_trip = scale.trip(4);
    const TOTAL: i64 = 4800; // 50 blocks x 96 threads
    let elems = (TOTAL as u64) * 7 + 50 * 80 + 64;
    KernelBuilder::new("lib", 50u32, 96u32)
        .array("rates", elems)
        .array("vols", elems)
        .array("payoff", TOTAL as u64)
        .stmt(loop_n(
            p_trip,
            vec![loop_n(
                6,
                vec![
                    // No path coefficient: every path re-reads the state.
                    // Block coefficient 80 breaks the 128 B inter-warp
                    // stride at every third warp transition (Table 1: 57 %).
                    read(0x1c68, 0, idx(0, 0, 1, 32, 80, vec![(1, TOTAL)])),
                    read(0x1ce0, 1, idx(0, 0, 1, 32, 80, vec![(1, TOTAL)])),
                ],
            )],
        ))
        .stmt(Stmt::If {
            pred: Pred::TidMod { m: 16, r: 0 },
            then_body: vec![read(0x1b40, 0, IndexExpr::tid_linear(0, 1))],
            else_body: vec![],
        })
        .stmt(write(0x1b80, 2, IndexExpr::tid_linear(0, 1)))
        .build()
        .expect("lib kernel is valid")
}

/// CUDA SDK *FWT* (fast Walsh transform) — Table 1: PCs at ~12 % each,
/// inter-warp 128 B at 88.6 % (256-thread blocks), intra 19200 B, **medium**
/// reuse (the second butterfly stage re-reads the vector ⇒ ~1/2 reuse).
pub fn fwt(scale: Scale) -> KernelDesc {
    let j_trip = scale.trip(6);
    const TOTAL: i64 = 4864; // 19 blocks x 256 threads
    let elems = (TOTAL as u64) * (j_trip as u64 + 3) + 3 * 1216 + 64;
    let stride_read = |pc: u64, arr: usize| read(pc, arr, idx(0, 1, 0, 0, 0, vec![(1, TOTAL)]));
    let shifted_read = |pc: u64, arr: usize| read(pc, arr, idx(2432, 1, 0, 0, 0, vec![(1, TOTAL)]));
    let butterfly =
        |pc: u64, arr: usize| read(pc, arr, idx(0, 1, 0, 0, 0, vec![(0, 1216), (1, TOTAL)]));
    KernelBuilder::new("fwt", 19u32, 256u32)
        .array("data", elems)
        .array("twiddle", elems)
        .stmt(loop_n(
            2, // stages; no stage coefficient on 0x458/0x460 -> reuse
            vec![loop_n(
                j_trip,
                vec![
                    stride_read(0x458, 0),
                    stride_read(0x460, 1),
                    butterfly(0x478, 0),
                    write(0x480, 0, idx(0, 1, 0, 0, 0, vec![(1, TOTAL)])),
                    shifted_read(0x490, 1),
                    butterfly(0x498, 1),
                    stride_read(0x4a0, 0),
                    write(0x4a8, 1, idx(0, 1, 0, 0, 0, vec![(1, TOTAL)])),
                ],
            )],
        ))
        .build()
        .expect("fwt kernel is valid")
}

/// Rodinia *hotspot* — §5: "the highest error because it does not have
/// significantly dominant intra-/inter-thread stride patterns or reuse
/// locality", and is "insensitive to prefetching because of non-dominant
/// access patterns and low temporal locality". Modeled with hashed indices
/// over a footprint far larger than any cache.
pub fn hotspot(scale: Scale) -> KernelDesc {
    let grid = scale.grid(8);
    let j_trip = scale.trip(4);
    let elems = match scale {
        Scale::Tiny => 1 << 18,
        Scale::Small => 1 << 20,
        Scale::Default => 1 << 22,
    };
    KernelBuilder::new("hotspot", grid, 256u32)
        .array("temp", elems)
        .array("power", elems)
        .stmt(loop_n(
            j_trip,
            vec![
                read(0x100, 0, IndexExpr::Hashed { seed: 0xA1 }),
                read(0x108, 0, IndexExpr::Hashed { seed: 0xA2 }),
                read(0x110, 0, IndexExpr::Hashed { seed: 0xA3 }),
                read(0x118, 1, IndexExpr::Hashed { seed: 0xA4 }),
                read(0x120, 1, IndexExpr::Hashed { seed: 0xA5 }),
                write(0x128, 0, IndexExpr::Hashed { seed: 0xA6 }),
            ],
        ))
        .build()
        .expect("hotspot kernel is valid")
}

/// Rodinia *nw* (Needleman–Wunsch) — §5 groups it with kmeans as an
/// application that "benefits from prefetching": long, regular, unit-stride
/// anti-diagonal sweeps with neighbor reads, low temporal locality but high
/// spatial predictability.
pub fn nw(scale: Scale) -> KernelDesc {
    let grid = scale.grid(12);
    let d_trip = scale.trip(16);
    let total = grid as i64 * 64;
    let elems = (total as u64) * (d_trip as u64 + 1) + 64;
    KernelBuilder::new("nw", grid, 64u32)
        .array("score", elems)
        .array("reference", elems)
        .stmt(loop_n(
            d_trip,
            vec![
                read(0x200, 0, idx(0, 1, 0, 0, 0, vec![(0, total)])),
                read(0x208, 0, idx(1, 1, 0, 0, 0, vec![(0, total)])),
                read(0x210, 1, idx(0, 1, 0, 0, 0, vec![(0, total)])),
                write(0x218, 0, idx(0, 1, 0, 0, 0, vec![(0, total)])),
            ],
        ))
        .build()
        .expect("nw kernel is valid")
}

/// ISPASS-2009 *AES* — the normalization baseline of Figure 7. Streaming
/// input/output plus hot table lookups: four T-box reads per round hit a
/// 1 KiB table (high reuse, tiny working set), which keeps its miss rates
/// low — a good normalization reference.
pub fn aes(scale: Scale) -> KernelDesc {
    let grid = scale.grid(8);
    let r_trip = scale.trip(4);
    let total = grid as i64 * 128;
    let elems = (total as u64) * (r_trip as u64) + 64;
    KernelBuilder::new("aes", grid, 128u32)
        .array("input", elems)
        .array("tbox", 256)
        .array("output", elems)
        .stmt(loop_n(
            r_trip,
            vec![
                read(0x300, 0, idx(0, 1, 0, 0, 0, vec![(0, total)])),
                read(0x310, 1, IndexExpr::Hashed { seed: 0xE1 }),
                read(0x318, 1, IndexExpr::Hashed { seed: 0xE2 }),
                read(0x320, 1, IndexExpr::Hashed { seed: 0xE3 }),
                read(0x328, 1, IndexExpr::Hashed { seed: 0xE4 }),
                write(0x330, 2, idx(0, 1, 0, 0, 0, vec![(0, total)])),
            ],
        ))
        .build()
        .expect("aes kernel is valid")
}

/// Rodinia *bfs* — frontier-driven graph traversal: data-dependent
/// control-flow divergence (different warps execute different dynamic
/// memory paths, exercising G-MAP's π-profile clustering, §4.4) and
/// irregular indirect accesses.
pub fn bfs(scale: Scale) -> KernelDesc {
    let grid = scale.grid(8);
    let it_trip = scale.trip(4);
    let total = grid as i64 * 256;
    let nodes = (total as u64) * (it_trip as u64) + 64;
    KernelBuilder::new("bfs", grid, 256u32)
        .array("nodes", nodes)
        .array("edges", nodes * 4)
        .array("visited", nodes)
        .stmt(loop_n(
            it_trip,
            vec![Stmt::If {
                pred: Pred::Hashed {
                    seed: 0xB0,
                    percent: 40,
                },
                then_body: vec![
                    read(0x400, 0, idx(0, 1, 0, 0, 0, vec![(0, total)])),
                    Stmt::Loop {
                        trip: Trip::Hashed {
                            seed: 0xB1,
                            base: 1,
                            spread: 6,
                        },
                        body: vec![
                            read(0x408, 1, IndexExpr::Hashed { seed: 0xB2 }),
                            read(0x410, 2, IndexExpr::Hashed { seed: 0xB3 }),
                        ],
                    },
                    Stmt::If {
                        pred: Pred::Hashed {
                            seed: 0xB4,
                            percent: 30,
                        },
                        then_body: vec![write(0x418, 2, IndexExpr::Hashed { seed: 0xB5 })],
                        else_body: vec![],
                    },
                ],
                else_body: vec![],
            }],
        ))
        .build()
        .expect("bfs kernel is valid")
}

/// Rodinia *gaussian* elimination — row sweeps plus a broadcast pivot row
/// shared by every warp (inter-warp sharing → L2-friendly), medium reuse.
pub fn gaussian(scale: Scale) -> KernelDesc {
    let grid = scale.grid(8);
    let k_trip = scale.trip(6);
    const N: i64 = 1024;
    let total = grid as u64 * 128;
    let elems = total + k_trip as u64 * (N as u64 + 1) + N as u64 * k_trip as u64 + 64;
    KernelBuilder::new("gaussian", grid, 128u32)
        .array("matrix", elems)
        .array("vector", elems)
        .stmt(loop_n(
            k_trip,
            vec![
                read(0x500, 0, idx(0, 1, 0, 0, 0, vec![(0, N)])),
                // Pivot row element: identical for all threads (broadcast).
                read(0x508, 1, idx(0, 0, 0, 0, 0, vec![(0, N + 1)])),
                write(0x510, 0, idx(0, 1, 0, 0, 0, vec![(0, N)])),
            ],
        ))
        .build()
        .expect("gaussian kernel is valid")
}

/// Rodinia *pathfinder* — row-wise dynamic programming with ±1 halo reads:
/// neighboring threads' lines overlap, giving line-granular spatial reuse.
pub fn pathfinder(scale: Scale) -> KernelDesc {
    let grid = scale.grid(8);
    let t_trip = scale.trip(8);
    let total = grid as i64 * 256;
    let elems = (total as u64) * (t_trip as u64 + 2) + 64;
    KernelBuilder::new("pathfinder", grid, 256u32)
        .array("wall", elems)
        .array("result", elems)
        .stmt(loop_n(
            t_trip,
            vec![
                // The halo window starts one full row in so the -1
                // neighbor never underflows (tid 0, iter 0 would
                // otherwise wrap to the end of the array). `total` is a
                // multiple of 32 elems, so the shift preserves 128 B
                // segment alignment and every stride/reuse statistic.
                read(0x600, 0, idx(total, 1, 0, 0, 0, vec![(0, total)])),
                read(0x608, 0, idx(total - 1, 1, 0, 0, 0, vec![(0, total)])),
                read(0x610, 0, idx(total + 1, 1, 0, 0, 0, vec![(0, total)])),
                write(0x618, 1, idx(0, 1, 0, 0, 0, vec![(0, total)])),
            ],
        ))
        .build()
        .expect("pathfinder kernel is valid")
}

/// Rodinia *streamcluster* — distance evaluation: streams the point set
/// (low reuse) while re-reading a small set of cluster centers (high
/// reuse), a bimodal mix.
pub fn streamcluster(scale: Scale) -> KernelDesc {
    let grid = scale.grid(8);
    let p_trip = scale.trip(8);
    let total = grid as i64 * 128;
    let elems = (total as u64) * (p_trip as u64) + 64;
    KernelBuilder::new("streamcluster", grid, 128u32)
        .array("points", elems)
        .array("centers", 512)
        .array("weights", 512)
        .stmt(loop_n(
            p_trip,
            vec![
                read(0x700, 0, idx(0, 1, 0, 0, 0, vec![(0, total)])),
                loop_n(
                    4,
                    vec![
                        read(0x708, 1, idx(0, 0, 1, 0, 0, vec![(1, 32)])),
                        read(0x710, 2, idx(0, 0, 1, 0, 0, vec![(1, 32)])),
                    ],
                ),
            ],
        ))
        .build()
        .expect("streamcluster kernel is valid")
}

/// CUDA SDK *matrixMul* — tiled matrix multiply: tile loads separated by
/// `__syncthreads()` barriers (exercising G-MAP's TB-synchronization
/// modeling, §4.5), with tiles re-read in the inner product loop (high
/// reuse).
pub fn matrixmul(scale: Scale) -> KernelDesc {
    let grid = scale.grid(8);
    let t_trip = scale.trip(4);
    let blocks = grid as u64;
    let elems = blocks * 128 + t_trip as u64 * 2048 + blocks * 8 * 32 + 4 * 128 + 64;
    KernelBuilder::new("matrixmul", grid, 256u32)
        .array("a", elems)
        .array("b", elems)
        .array("c", elems)
        .stmt(loop_n(
            t_trip,
            vec![
                // Tile loads.
                read(0x800, 0, idx(0, 0, 1, 0, 128, vec![(0, 2048)])),
                read(0x808, 1, idx(0, 0, 1, 32, 0, vec![(0, 2048)])),
                Stmt::Sync,
                // Inner product: re-reads the same tile rows (no `kk`
                // dependence on the tile base).
                loop_n(
                    4,
                    vec![
                        read(0x810, 0, idx(0, 0, 1, 0, 128, vec![(1, 32)])),
                        read(0x818, 1, idx(0, 0, 1, 32, 0, vec![(1, 32)])),
                    ],
                ),
                Stmt::Sync,
            ],
        ))
        .stmt(write(0x820, 2, IndexExpr::tid_linear(0, 1)))
        .build()
        .expect("matrixmul kernel is valid")
}

/// Names of all 18 benchmarks, in the order used by the experiment
/// harness.
pub const NAMES: [&str; 18] = [
    "heartwall",
    "backprop",
    "kmeans",
    "srad",
    "scalarprod",
    "cp",
    "blackscholes",
    "lu",
    "lib",
    "fwt",
    "hotspot",
    "nw",
    "aes",
    "bfs",
    "gaussian",
    "pathfinder",
    "streamcluster",
    "matrixmul",
];

/// Builds a benchmark by name, or `None` for an unknown name.
pub fn by_name(name: &str, scale: Scale) -> Option<KernelDesc> {
    let k = match name {
        "heartwall" => heartwall(scale),
        "backprop" => backprop(scale),
        "kmeans" => kmeans(scale),
        "srad" => srad(scale),
        "scalarprod" => scalarprod(scale),
        "cp" => cp(scale),
        "blackscholes" => blackscholes(scale),
        "lu" => lu(scale),
        "lib" => lib(scale),
        "fwt" => fwt(scale),
        "hotspot" => hotspot(scale),
        "nw" => nw(scale),
        "aes" => aes(scale),
        "bfs" => bfs(scale),
        "gaussian" => gaussian(scale),
        "pathfinder" => pathfinder(scale),
        "streamcluster" => streamcluster(scale),
        "matrixmul" => matrixmul(scale),
        _ => return None,
    };
    Some(k)
}

/// All 18 benchmarks at the given scale.
pub fn all(scale: Scale) -> Vec<KernelDesc> {
    NAMES
        .iter()
        .map(|n| by_name(n, scale).expect("known name"))
        .collect()
}

/// The 10 applications listed in Table 1 of the paper, in table order.
pub fn table1(scale: Scale) -> Vec<KernelDesc> {
    [
        "heartwall",
        "backprop",
        "kmeans",
        "srad",
        "scalarprod",
        "cp",
        "blackscholes",
        "lu",
        "lib",
        "fwt",
    ]
    .iter()
    .map(|n| by_name(n, scale).expect("known name"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::coalesce_app;
    use crate::exec::{execute_kernel, WarpEvent};
    use crate::schedule::WarpStreamEvent;
    use gmap_trace::record::Pc;
    use gmap_trace::reuse::{ReuseClass, ReuseHistogram};
    use std::collections::HashMap;

    #[test]
    fn all_18_build_and_validate_at_every_scale() {
        for scale in [Scale::Tiny, Scale::Small, Scale::Default] {
            let kernels = all(scale);
            assert_eq!(kernels.len(), 18);
            for k in &kernels {
                k.validate()
                    .unwrap_or_else(|e| panic!("{} invalid: {e}", k.name));
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for n in NAMES {
            let k = by_name(n, Scale::Tiny).expect("known");
            assert_eq!(k.name, n);
        }
        assert!(by_name("nonesuch", Scale::Tiny).is_none());
    }

    #[test]
    fn table1_subset_is_ten() {
        assert_eq!(table1(Scale::Tiny).len(), 10);
    }

    #[test]
    fn scales_are_monotonic() {
        for n in NAMES {
            let tiny = execute_kernel(&by_name(n, Scale::Tiny).expect("known"));
            let small = execute_kernel(&by_name(n, Scale::Small).expect("known"));
            assert!(
                small.total_thread_accesses() > tiny.total_thread_accesses(),
                "{n}: Small not larger than Tiny"
            );
        }
    }

    /// Measures each warp's first-execution line address per PC and returns
    /// the dominant inter-warp stride for the given PC.
    fn dominant_inter_warp_stride(name: &str, pc: Pc) -> (i64, f64) {
        let k = by_name(name, Scale::Tiny).expect("known");
        let streams = coalesce_app(&execute_kernel(&k), 128);
        let mut firsts: Vec<(u32, u64)> = Vec::new();
        for s in &streams {
            for ev in &s.events {
                if let WarpStreamEvent::Access(a) = ev {
                    if a.pc == pc {
                        firsts.push((s.warp.0, a.lines[0].0));
                        break;
                    }
                }
            }
        }
        firsts.sort_unstable();
        let mut hist = gmap_trace::Histogram::new();
        for w in firsts.windows(2) {
            hist.add(w[1].1 as i64 - w[0].1 as i64);
        }
        hist.dominant().expect("at least two warps")
    }

    #[test]
    fn kmeans_inter_warp_stride_matches_table1() {
        let (stride, freq) = dominant_inter_warp_stride("kmeans", Pc(0xe8));
        assert_eq!(stride, 4352, "kmeans inter-warp stride");
        assert!(freq > 0.5, "kmeans stride frequency {freq}");
    }

    #[test]
    fn srad_inter_warp_stride_matches_table1() {
        let (stride, _) = dominant_inter_warp_stride("srad", Pc(0x250));
        assert_eq!(stride, 16384, "srad inter-warp stride");
    }

    #[test]
    fn scalarprod_inter_warp_stride_matches_table1() {
        let (stride, freq) = dominant_inter_warp_stride("scalarprod", Pc(0xd8));
        assert_eq!(stride, 128, "scalarprod inter-warp stride");
        assert!(freq > 0.8, "scalarprod stride frequency {freq}");
    }

    #[test]
    fn cp_inter_warp_stride_matches_table1() {
        let (stride, _) = dominant_inter_warp_stride("cp", Pc(0x208));
        assert_eq!(stride, 2048, "cp inter-warp stride");
    }

    #[test]
    fn lib_inter_warp_stride_matches_table1() {
        let (stride, freq) = dominant_inter_warp_stride("lib", Pc(0x1c68));
        assert_eq!(stride, 128, "lib inter-warp stride");
        assert!(
            freq > 0.5 && freq < 0.8,
            "lib stride frequency {freq} (expect ~2/3)"
        );
    }

    #[test]
    fn heartwall_inter_warp_stride_is_128_at_half_frequency() {
        let (stride, freq) = dominant_inter_warp_stride("heartwall", Pc(0x900));
        assert_eq!(stride, 128);
        assert!(
            freq > 0.35 && freq < 0.65,
            "heartwall 128B frequency {freq} (expect ~0.5)"
        );
    }

    fn reuse_class_of(name: &str) -> ReuseClass {
        let k = by_name(name, Scale::Tiny).expect("known");
        let streams = coalesce_app(&execute_kernel(&k), 128);
        // Per-warp reuse, merged — mirrors how G-MAP profiles locality.
        let mut merged = ReuseHistogram::new();
        for s in &streams {
            let lines = s.events.iter().flat_map(|e| match e {
                WarpStreamEvent::Access(a) => a.lines.iter().map(|l| l.0 / 128).collect::<Vec<_>>(),
                WarpStreamEvent::Sync => vec![],
            });
            merged.merge(&ReuseHistogram::from_lines(lines));
        }
        merged.class()
    }

    #[test]
    fn reuse_classes_match_table1() {
        assert_eq!(reuse_class_of("kmeans"), ReuseClass::High, "kmeans");
        assert_eq!(reuse_class_of("heartwall"), ReuseClass::High, "heartwall");
        assert_eq!(reuse_class_of("lib"), ReuseClass::High, "lib");
        assert_eq!(reuse_class_of("srad"), ReuseClass::Low, "srad");
        assert_eq!(reuse_class_of("scalarprod"), ReuseClass::Low, "scalarprod");
        assert_eq!(
            reuse_class_of("blackscholes"),
            ReuseClass::Low,
            "blackscholes"
        );
        assert_eq!(reuse_class_of("hotspot"), ReuseClass::Low, "hotspot");
        assert_eq!(reuse_class_of("cp"), ReuseClass::Medium, "cp");
        assert_eq!(reuse_class_of("lu"), ReuseClass::Low, "lu");
        assert_eq!(reuse_class_of("fwt"), ReuseClass::Medium, "fwt");
    }

    #[test]
    fn hotspot_has_no_dominant_stride() {
        let (_, freq) = dominant_inter_warp_stride("hotspot", Pc(0x100));
        assert!(
            freq < 0.3,
            "hotspot should have no dominant stride, got {freq}"
        );
    }

    #[test]
    fn kmeans_single_pc_dominates() {
        let k = kmeans(Scale::Tiny);
        let app = execute_kernel(&k);
        let mut counts: HashMap<Pc, u64> = HashMap::new();
        let mut total = 0u64;
        for w in &app.warps {
            for e in &w.events {
                if let WarpEvent::Access { pc, .. } = e {
                    *counts.entry(*pc).or_insert(0) += 1;
                    total += 1;
                }
            }
        }
        let dom = counts[&Pc(0xe8)] as f64 / total as f64;
        assert!(dom > 0.95, "kmeans PC 0xe8 frequency {dom}");
    }

    #[test]
    fn bfs_warps_have_divergent_paths() {
        let k = bfs(Scale::Tiny);
        let app = execute_kernel(&k);
        let mut lens: Vec<usize> = app.warps.iter().map(|w| w.events.len()).collect();
        lens.sort_unstable();
        lens.dedup();
        assert!(
            lens.len() > 1,
            "bfs warps should have diverse dynamic paths"
        );
    }

    #[test]
    fn matrixmul_emits_barriers() {
        let k = matrixmul(Scale::Tiny);
        let app = execute_kernel(&k);
        let syncs = app.warps[0]
            .events
            .iter()
            .filter(|e| matches!(e, WarpEvent::Sync))
            .count();
        assert!(syncs >= 2, "matrixmul should have barriers, got {syncs}");
    }

    #[test]
    fn blackscholes_pcs_are_equally_frequent() {
        let k = blackscholes(Scale::Tiny);
        let app = execute_kernel(&k);
        let mut counts: HashMap<Pc, u64> = HashMap::new();
        for w in &app.warps {
            for e in &w.events {
                if let WarpEvent::Access { pc, .. } = e {
                    *counts.entry(*pc).or_insert(0) += 1;
                }
            }
        }
        assert_eq!(counts.len(), 5);
        let max = counts.values().max().expect("non-empty");
        let min = counts.values().min().expect("non-empty");
        assert_eq!(max, min, "BLK PCs should be equally frequent");
    }

    #[test]
    fn footprints_are_reasonable() {
        // Every workload should have a non-trivial footprint; streaming
        // workloads should dwarf the 1 MB L2.
        for k in all(Scale::Default) {
            assert!(
                k.footprint_bytes() > 64 * 1024,
                "{} footprint too small",
                k.name
            );
        }
        assert!(hotspot(Scale::Default).footprint_bytes() > 4 << 20);
    }
}
