//! Multi-kernel applications.
//!
//! "A GPU application is composed of several kernels" (paper §2.2). Each
//! kernel launches with its own grid/block geometry; kernels execute in
//! sequence, and the cache hierarchy carries its state from one kernel to
//! the next (a later kernel can hit on data a previous one left in the
//! L2). G-MAP profiles each kernel separately and clones them in order.

use crate::kernel::KernelDesc;
use serde::{Deserialize, Serialize};

/// A sequence of kernels executed back to back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Application name.
    pub name: String,
    /// Kernels in launch order.
    pub kernels: Vec<KernelDesc>,
}

impl Application {
    /// Creates an application from its kernels.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn new(name: &str, kernels: Vec<KernelDesc>) -> Self {
        assert!(
            !kernels.is_empty(),
            "an application needs at least one kernel"
        );
        Application {
            name: name.to_owned(),
            kernels,
        }
    }

    /// A single-kernel application.
    pub fn single(kernel: KernelDesc) -> Self {
        Application {
            name: kernel.name.clone(),
            kernels: vec![kernel],
        }
    }

    /// Total memory footprint across kernels (arrays are per-kernel in
    /// this model, so footprints add).
    pub fn footprint_bytes(&self) -> u64 {
        self.kernels.iter().map(KernelDesc::footprint_bytes).sum()
    }
}

/// Composite applications built from the workload models, exercising the
/// multi-kernel path the way real suites do.
pub mod apps {
    use super::Application;
    use crate::workloads::{self, Scale};

    /// Rodinia srad's actual structure: an extraction kernel, the
    /// diffusion kernel, and a compression kernel.
    pub fn srad_pipeline(scale: Scale) -> Application {
        let mut extract = workloads::nw(scale);
        extract.name = "srad_extract".into();
        let mut diffuse = workloads::srad(scale);
        diffuse.name = "srad_diffuse".into();
        let mut compress = workloads::blackscholes(scale);
        compress.name = "srad_compress".into();
        Application::new("srad_pipeline", vec![extract, diffuse, compress])
    }

    /// Backprop training: a forward pass followed by the weight-adjust
    /// pass (both passes re-touch the weight arrays, so the second kernel
    /// starts with a warm L2).
    pub fn backprop_training(scale: Scale) -> Application {
        let mut forward = workloads::backprop(scale);
        forward.name = "bp_forward".into();
        let mut adjust = workloads::backprop(scale);
        adjust.name = "bp_adjust".into();
        Application::new("backprop_training", vec![forward, adjust])
    }

    /// Iterative kmeans: two clustering iterations around a membership
    /// reduction.
    pub fn kmeans_iterative(scale: Scale) -> Application {
        let mut iter1 = workloads::kmeans(scale);
        iter1.name = "kmeans_iter1".into();
        let mut reduce = workloads::scalarprod(scale);
        reduce.name = "kmeans_reduce".into();
        let mut iter2 = workloads::kmeans(scale);
        iter2.name = "kmeans_iter2".into();
        Application::new("kmeans_iterative", vec![iter1, reduce, iter2])
    }
}

#[cfg(test)]
mod tests {
    use super::apps;
    use super::*;
    use crate::workloads::{self, Scale};

    #[test]
    fn single_wraps_one_kernel() {
        let app = Application::single(workloads::aes(Scale::Tiny));
        assert_eq!(app.name, "aes");
        assert_eq!(app.kernels.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_application_rejected() {
        Application::new("empty", vec![]);
    }

    #[test]
    fn composite_apps_build() {
        for app in [
            apps::srad_pipeline(Scale::Tiny),
            apps::backprop_training(Scale::Tiny),
            apps::kmeans_iterative(Scale::Tiny),
        ] {
            assert!(app.kernels.len() >= 2, "{}", app.name);
            for k in &app.kernels {
                k.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
            }
            assert!(app.footprint_bytes() > 0);
        }
    }

    #[test]
    fn kernel_names_are_distinct_within_an_app() {
        let app = apps::kmeans_iterative(Scale::Tiny);
        let mut names: Vec<&str> = app.kernels.iter().map(|k| k.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), app.kernels.len());
    }
}
