//! Memory coalescing per CUDA programming guide §G.4.2.
//!
//! On Fermi-class hardware, the memory requests of the (up to) 32 threads of
//! a warp executing one memory instruction are merged into the minimum
//! number of cacheline-sized transactions: one transaction per distinct
//! cacheline touched. G-MAP applies this model *before* the locality
//! analysis (§4), "as it significantly reduces the computational and memory
//! complexity" — and because the cache hierarchy only ever sees coalesced
//! transactions anyway.

use crate::exec::{AppTrace, WarpEvent};
use crate::schedule::{CoalescedAccess, WarpStream, WarpStreamEvent};
use gmap_trace::batch::{KernelMode, LANES};
use gmap_trace::record::ByteAddr;

/// Coalesces the per-lane byte addresses of one warp instruction into
/// line-aligned transaction addresses (ascending, distinct).
///
/// Runs the process-default kernel mode; see [`coalesce_addrs_into`] for
/// the allocation-free dispatching variant.
///
/// # Panics
///
/// Panics (in debug builds) if `line_size` is not a power of two.
///
/// ```
/// use gmap_gpu::coalesce::coalesce_addrs;
/// use gmap_trace::record::ByteAddr;
///
/// // 32 consecutive 4-byte accesses starting at 0x1000: one 128 B line.
/// let addrs: Vec<ByteAddr> = (0..32).map(|i| ByteAddr(0x1000 + 4 * i)).collect();
/// assert_eq!(coalesce_addrs(&addrs, 128), vec![ByteAddr(0x1000)]);
/// ```
pub fn coalesce_addrs(addrs: &[ByteAddr], line_size: u64) -> Vec<ByteAddr> {
    let mut lines = Vec::new();
    coalesce_addrs_into(addrs, line_size, gmap_trace::default_mode(), &mut lines);
    lines
}

/// Coalesces into a caller-provided buffer (cleared first), dispatching on
/// `mode`. Both paths leave `out` in an identical state: the distinct
/// line-aligned addresses of `addrs`, ascending.
///
/// # Panics
///
/// Panics (in debug builds) if `line_size` is not a power of two.
pub fn coalesce_addrs_into(
    addrs: &[ByteAddr],
    line_size: u64,
    mode: KernelMode,
    out: &mut Vec<ByteAddr>,
) {
    match mode {
        KernelMode::Scalar => coalesce_addrs_scalar(addrs, line_size, out),
        KernelMode::Batched => coalesce_addrs_batched(addrs, line_size, out),
    }
}

/// Scalar reference for [`coalesce_addrs_into`]: map, sort, dedup.
pub fn coalesce_addrs_scalar(addrs: &[ByteAddr], line_size: u64, out: &mut Vec<ByteAddr>) {
    out.clear();
    out.extend(addrs.iter().map(|a| a.line_base(line_size)));
    out.sort_unstable();
    out.dedup();
}

fn coalesce_addrs_batched(addrs: &[ByteAddr], line_size: u64, out: &mut Vec<ByteAddr>) {
    debug_assert!(
        line_size.is_power_of_two(),
        "line size must be a power of two"
    );
    let mask = !(line_size - 1);
    out.clear();
    out.reserve(addrs.len());
    // Warp lanes usually walk memory in ascending unit stride, so the
    // masked line bases come out nondecreasing — fuse masking, order
    // detection, and dedup into one pass over that prefix.
    let sorted_prefix = emit_sorted_dedup(addrs, mask, out);
    if sorted_prefix < addrs.len() {
        // Order violation: `out` holds the dedup'd sorted prefix (every
        // distinct base of the prefix, once). Append the raw masked
        // remainder and resolve globally, like the scalar reference.
        let mut chunks = addrs[sorted_prefix..].chunks_exact(LANES);
        for c in &mut chunks {
            out.extend_from_slice(&[
                ByteAddr(c[0].0 & mask),
                ByteAddr(c[1].0 & mask),
                ByteAddr(c[2].0 & mask),
                ByteAddr(c[3].0 & mask),
                ByteAddr(c[4].0 & mask),
                ByteAddr(c[5].0 & mask),
                ByteAddr(c[6].0 & mask),
                ByteAddr(c[7].0 & mask),
            ]);
        }
        for &a in chunks.remainder() {
            out.push(ByteAddr(a.0 & mask));
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// Pushes the dedup'd line bases of the longest nondecreasing masked
/// prefix of `addrs` onto `out` and returns that prefix's length. Whole
/// chunks mask 8 lanes and OR their neighbor comparisons into one
/// violation flag before any element is emitted, so a chunk is either
/// consumed entirely or not at all (the returned length never splits a
/// clean chunk).
fn emit_sorted_dedup(addrs: &[ByteAddr], mask: u64, out: &mut Vec<ByteAddr>) -> usize {
    let n = addrs.len();
    let mut last: Option<u64> = None;
    let mut i = 0usize;
    while i + LANES <= n {
        let mut b = [0u64; LANES];
        for lane in 0..LANES {
            b[lane] = addrs[i + lane].0 & mask;
        }
        let mut viol = u32::from(last.is_some_and(|l| l > b[0]));
        for lane in 1..LANES {
            viol |= u32::from(b[lane - 1] > b[lane]);
        }
        if viol != 0 {
            return i;
        }
        for &base in &b {
            if last != Some(base) {
                out.push(ByteAddr(base));
                last = Some(base);
            }
        }
        i += LANES;
    }
    while i < n {
        let base = addrs[i].0 & mask;
        if last.is_some_and(|l| l > base) {
            return i;
        }
        if last != Some(base) {
            out.push(ByteAddr(base));
            last = Some(base);
        }
        i += 1;
    }
    n
}

/// Coalesces an executed application trace into per-warp transaction
/// streams at the given cacheline size.
pub fn coalesce_app(app: &AppTrace, line_size: u64) -> Vec<WarpStream> {
    let mode = gmap_trace::default_mode();
    let mut addr_scratch: Vec<ByteAddr> = Vec::new();
    let mut streams = Vec::with_capacity(app.warps.len());
    for wt in &app.warps {
        let mut events = Vec::with_capacity(wt.events.len());
        for ev in &wt.events {
            match ev {
                WarpEvent::Access {
                    pc,
                    kind,
                    lane_addrs,
                } => {
                    addr_scratch.clear();
                    addr_scratch.extend(lane_addrs.iter().map(|&(_, a)| a));
                    let mut lines = Vec::new();
                    coalesce_addrs_into(&addr_scratch, line_size, mode, &mut lines);
                    events.push(WarpStreamEvent::Access(CoalescedAccess {
                        pc: *pc,
                        kind: *kind,
                        lines,
                    }));
                }
                WarpEvent::Sync => events.push(WarpStreamEvent::Sync),
            }
        }
        streams.push(WarpStream {
            warp: wt.warp,
            block: wt.block,
            events,
        });
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_kernel;
    use crate::kernel::{IndexExpr, KernelBuilder};
    use gmap_trace::record::Pc;

    #[test]
    fn fully_coalesced_warp_is_one_transaction() {
        let addrs: Vec<ByteAddr> = (0..32).map(|i| ByteAddr(4096 + 4 * i)).collect();
        assert_eq!(coalesce_addrs(&addrs, 128), vec![ByteAddr(4096)]);
    }

    #[test]
    fn misaligned_warp_spans_two_lines() {
        // Unit-stride but starting 64 bytes into a line.
        let addrs: Vec<ByteAddr> = (0..32).map(|i| ByteAddr(4096 + 64 + 4 * i)).collect();
        assert_eq!(
            coalesce_addrs(&addrs, 128),
            vec![ByteAddr(4096), ByteAddr(4224)]
        );
    }

    #[test]
    fn strided_warp_explodes_into_many_transactions() {
        // 136-byte stride between lanes (the kmeans pattern): every lane its
        // own line.
        let addrs: Vec<ByteAddr> = (0..32).map(|i| ByteAddr(4096 + 136 * i)).collect();
        let txns = coalesce_addrs(&addrs, 128);
        assert!(txns.len() >= 31, "got only {} transactions", txns.len());
    }

    #[test]
    fn duplicate_addresses_merge() {
        let addrs = vec![ByteAddr(256); 32];
        assert_eq!(coalesce_addrs(&addrs, 128), vec![ByteAddr(256)]);
    }

    #[test]
    fn smaller_lines_make_more_transactions() {
        let addrs: Vec<ByteAddr> = (0..32).map(|i| ByteAddr(4 * i)).collect();
        assert_eq!(coalesce_addrs(&addrs, 128).len(), 1);
        assert_eq!(coalesce_addrs(&addrs, 64).len(), 2);
        assert_eq!(coalesce_addrs(&addrs, 32).len(), 4);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(coalesce_addrs(&[], 128).is_empty());
    }

    #[test]
    fn kernels_agree_for_all_tail_lengths() {
        let mut rng = gmap_trace::Rng::seed_from(0xc0a1);
        for n in 0..(2 * gmap_trace::batch::LANES + 1) {
            // Mix of random, duplicate, and descending addresses so the
            // presorted fast path does not trivially apply.
            let addrs: Vec<ByteAddr> = (0..n)
                .map(|i| {
                    if i % 3 == 0 {
                        ByteAddr((n - i) as u64 * 100)
                    } else {
                        ByteAddr(rng.gen_range(4096))
                    }
                })
                .collect();
            for line in [32u64, 128] {
                let mut scalar = Vec::new();
                let mut batched = Vec::new();
                coalesce_addrs_scalar(&addrs, line, &mut scalar);
                coalesce_addrs_into(&addrs, line, KernelMode::Batched, &mut batched);
                assert_eq!(scalar, batched, "n={n} line={line}");
            }
        }
    }

    #[test]
    fn presorted_fast_path_matches() {
        let addrs: Vec<ByteAddr> = (0..37).map(|i| ByteAddr(4096 + 4 * i)).collect();
        let mut scalar = Vec::new();
        let mut batched = Vec::new();
        coalesce_addrs_scalar(&addrs, 128, &mut scalar);
        coalesce_addrs_into(&addrs, 128, KernelMode::Batched, &mut batched);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn coalesce_app_preserves_structure() {
        let k = KernelBuilder::new("k", 2u32, 64u32)
            .array("a", 1 << 16)
            .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
            .stmt(crate::kernel::Stmt::Sync)
            .read(Pc(0x20), 0, IndexExpr::tid_linear(0, 2))
            .build()
            .expect("valid");
        let app = execute_kernel(&k);
        let streams = coalesce_app(&app, 128);
        assert_eq!(streams.len(), 4);
        let s0 = &streams[0];
        assert_eq!(s0.events.len(), 3);
        match &s0.events[0] {
            WarpStreamEvent::Access(a) => {
                assert_eq!(a.pc, Pc(0x10));
                assert_eq!(a.lines.len(), 1); // unit stride: fully coalesced
            }
            other => panic!("expected access, got {other:?}"),
        }
        assert!(matches!(s0.events[1], WarpStreamEvent::Sync));
        match &s0.events[2] {
            // Stride-2 over 4-byte elements: 32 lanes span 256 B = 2 lines.
            WarpStreamEvent::Access(a) => assert_eq!(a.lines.len(), 2),
            other => panic!("expected access, got {other:?}"),
        }
    }
}
