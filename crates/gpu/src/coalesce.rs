//! Memory coalescing per CUDA programming guide §G.4.2.
//!
//! On Fermi-class hardware, the memory requests of the (up to) 32 threads of
//! a warp executing one memory instruction are merged into the minimum
//! number of cacheline-sized transactions: one transaction per distinct
//! cacheline touched. G-MAP applies this model *before* the locality
//! analysis (§4), "as it significantly reduces the computational and memory
//! complexity" — and because the cache hierarchy only ever sees coalesced
//! transactions anyway.

use crate::exec::{AppTrace, WarpEvent};
use crate::schedule::{CoalescedAccess, WarpStream, WarpStreamEvent};
use gmap_trace::record::ByteAddr;

/// Coalesces the per-lane byte addresses of one warp instruction into
/// line-aligned transaction addresses (ascending, distinct).
///
/// # Panics
///
/// Panics (in debug builds) if `line_size` is not a power of two.
///
/// ```
/// use gmap_gpu::coalesce::coalesce_addrs;
/// use gmap_trace::record::ByteAddr;
///
/// // 32 consecutive 4-byte accesses starting at 0x1000: one 128 B line.
/// let addrs: Vec<ByteAddr> = (0..32).map(|i| ByteAddr(0x1000 + 4 * i)).collect();
/// assert_eq!(coalesce_addrs(&addrs, 128), vec![ByteAddr(0x1000)]);
/// ```
pub fn coalesce_addrs(addrs: &[ByteAddr], line_size: u64) -> Vec<ByteAddr> {
    let mut lines: Vec<ByteAddr> = addrs.iter().map(|a| a.line_base(line_size)).collect();
    lines.sort_unstable();
    lines.dedup();
    lines
}

/// Coalesces an executed application trace into per-warp transaction
/// streams at the given cacheline size.
pub fn coalesce_app(app: &AppTrace, line_size: u64) -> Vec<WarpStream> {
    app.warps
        .iter()
        .map(|wt| {
            let events = wt
                .events
                .iter()
                .map(|ev| match ev {
                    WarpEvent::Access {
                        pc,
                        kind,
                        lane_addrs,
                    } => {
                        let addrs: Vec<ByteAddr> = lane_addrs.iter().map(|&(_, a)| a).collect();
                        WarpStreamEvent::Access(CoalescedAccess {
                            pc: *pc,
                            kind: *kind,
                            lines: coalesce_addrs(&addrs, line_size),
                        })
                    }
                    WarpEvent::Sync => WarpStreamEvent::Sync,
                })
                .collect();
            WarpStream {
                warp: wt.warp,
                block: wt.block,
                events,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_kernel;
    use crate::kernel::{IndexExpr, KernelBuilder};
    use gmap_trace::record::Pc;

    #[test]
    fn fully_coalesced_warp_is_one_transaction() {
        let addrs: Vec<ByteAddr> = (0..32).map(|i| ByteAddr(4096 + 4 * i)).collect();
        assert_eq!(coalesce_addrs(&addrs, 128), vec![ByteAddr(4096)]);
    }

    #[test]
    fn misaligned_warp_spans_two_lines() {
        // Unit-stride but starting 64 bytes into a line.
        let addrs: Vec<ByteAddr> = (0..32).map(|i| ByteAddr(4096 + 64 + 4 * i)).collect();
        assert_eq!(
            coalesce_addrs(&addrs, 128),
            vec![ByteAddr(4096), ByteAddr(4224)]
        );
    }

    #[test]
    fn strided_warp_explodes_into_many_transactions() {
        // 136-byte stride between lanes (the kmeans pattern): every lane its
        // own line.
        let addrs: Vec<ByteAddr> = (0..32).map(|i| ByteAddr(4096 + 136 * i)).collect();
        let txns = coalesce_addrs(&addrs, 128);
        assert!(txns.len() >= 31, "got only {} transactions", txns.len());
    }

    #[test]
    fn duplicate_addresses_merge() {
        let addrs = vec![ByteAddr(256); 32];
        assert_eq!(coalesce_addrs(&addrs, 128), vec![ByteAddr(256)]);
    }

    #[test]
    fn smaller_lines_make_more_transactions() {
        let addrs: Vec<ByteAddr> = (0..32).map(|i| ByteAddr(4 * i)).collect();
        assert_eq!(coalesce_addrs(&addrs, 128).len(), 1);
        assert_eq!(coalesce_addrs(&addrs, 64).len(), 2);
        assert_eq!(coalesce_addrs(&addrs, 32).len(), 4);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(coalesce_addrs(&[], 128).is_empty());
    }

    #[test]
    fn coalesce_app_preserves_structure() {
        let k = KernelBuilder::new("k", 2u32, 64u32)
            .array("a", 1 << 16)
            .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
            .stmt(crate::kernel::Stmt::Sync)
            .read(Pc(0x20), 0, IndexExpr::tid_linear(0, 2))
            .build()
            .expect("valid");
        let app = execute_kernel(&k);
        let streams = coalesce_app(&app, 128);
        assert_eq!(streams.len(), 4);
        let s0 = &streams[0];
        assert_eq!(s0.events.len(), 3);
        match &s0.events[0] {
            WarpStreamEvent::Access(a) => {
                assert_eq!(a.pc, Pc(0x10));
                assert_eq!(a.lines.len(), 1); // unit stride: fully coalesced
            }
            other => panic!("expected access, got {other:?}"),
        }
        assert!(matches!(s0.events[1], WarpStreamEvent::Sync));
        match &s0.events[2] {
            // Stride-2 over 4-byte elements: 32 lanes span 256 B = 2 lines.
            WarpStreamEvent::Access(a) => assert_eq!(a.lines.len(), 2),
            other => panic!("expected access, got {other:?}"),
        }
    }
}
