//! Grid and block dimensions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A CUDA-style three-dimensional extent.
///
/// G-MAP "maintains the same grid and TB dimensions as the original
/// application" (§4); kernels carry their geometry so that the proxy can
/// reconstruct the identical thread hierarchy.
///
/// ```
/// use gmap_gpu::Dim3;
/// assert_eq!(Dim3::new(4, 2, 1).count(), 8);
/// assert_eq!(Dim3::linear(256).count(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// Extent along x.
    pub x: u32,
    /// Extent along y.
    pub y: u32,
    /// Extent along z.
    pub z: u32,
}

impl Dim3 {
    /// Creates a three-dimensional extent.
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "dimensions must be positive");
        Dim3 { x, y, z }
    }

    /// A one-dimensional extent (`y = z = 1`), the common case for the
    /// workloads in this crate.
    pub fn linear(x: u32) -> Self {
        Dim3::new(x, 1, 1)
    }

    /// Total number of elements.
    pub fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Dim3::linear(1)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::linear(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::new(x, y, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        assert_eq!(Dim3::new(3, 4, 5).count(), 60);
        assert_eq!(Dim3::linear(7).count(), 7);
        assert_eq!(Dim3::default().count(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        Dim3::new(0, 1, 1);
    }

    #[test]
    fn conversions() {
        assert_eq!(Dim3::from(16u32), Dim3::linear(16));
        assert_eq!(Dim3::from((2u32, 3u32)), Dim3::new(2, 3, 1));
    }

    #[test]
    fn display() {
        assert_eq!(Dim3::new(2, 3, 4).to_string(), "(2,3,4)");
    }
}
