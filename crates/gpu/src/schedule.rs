//! Per-core warp queues and warp scheduling policies (§4.5 of the paper).
//!
//! G-MAP models GPU parallelism — without modeling the core pipeline — by
//! interleaving the coalesced per-warp transaction streams through per-core
//! warp queues:
//!
//! - Threadblocks are assigned to cores round-robin until cores are full;
//!   new blocks are placed as running blocks finish.
//! - Each core's queue initially holds its active warps ordered by warp
//!   identifier. A scheduling step selects one ready warp and issues its
//!   next memory instruction; the warp is then *delayed in proportion to
//!   the request's latency* as reported by the [`MemoryModel`].
//! - Selection follows a [`Policy`]: loose round-robin ([`Policy::Lrr`]),
//!   greedy-then-oldest ([`Policy::Gto`]), or the paper's parametric
//!   [`Policy::SelfProb`] — "the probability of scheduling the same warp
//!   consecutively" (`SchedP_self`), which is how a G-MAP proxy replays a
//!   scheduling policy it never saw.
//! - `__syncthreads()` barriers hold a warp until every live warp of its
//!   block arrives.

use crate::hierarchy::{GpuConfig, LaunchConfig};
use gmap_trace::record::{AccessKind, ByteAddr, CoreId, Pc, WarpId};
use gmap_trace::rng::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// One coalesced warp-level memory instruction: up to 32 thread requests
/// merged into `lines` cacheline transactions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalescedAccess {
    /// Static instruction.
    pub pc: Pc,
    /// Read or write.
    pub kind: AccessKind,
    /// Line-aligned transaction addresses, ascending.
    pub lines: Vec<ByteAddr>,
}

/// One event of a coalesced warp stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarpStreamEvent {
    /// A coalesced memory instruction.
    Access(CoalescedAccess),
    /// A threadblock barrier.
    Sync,
}

/// The coalesced transaction stream of one warp.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpStream {
    /// Global warp id.
    pub warp: WarpId,
    /// Block the warp belongs to.
    pub block: u32,
    /// Events in program order.
    pub events: Vec<WarpStreamEvent>,
}

impl WarpStream {
    /// Number of memory instructions (excluding barriers).
    pub fn num_accesses(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, WarpStreamEvent::Access(_)))
            .count()
    }
}

/// The memory system as seen by the scheduler: every issued transaction
/// reports back a latency, which delays the issuing warp.
///
/// Implemented by the cache hierarchy in `gmap-memsim`; [`FixedLatency`]
/// provides a trivial implementation for tests and latency-insensitive
/// trace formation.
pub trait MemoryModel {
    /// Issues one cacheline transaction and returns its latency in cycles.
    fn access(&mut self, core: CoreId, pc: Pc, line: ByteAddr, kind: AccessKind, cycle: u64)
        -> u64;
}

/// A memory model with a constant latency for every transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedLatency(pub u64);

impl MemoryModel for FixedLatency {
    fn access(&mut self, _: CoreId, _: Pc, _: ByteAddr, _: AccessKind, _: u64) -> u64 {
        self.0
    }
}

/// Warp selection policy (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Loose round-robin: rotate through ready warps.
    Lrr,
    /// Greedy-then-oldest: keep issuing from the last warp while it is
    /// ready, otherwise fall back to the oldest ready warp.
    Gto,
    /// G-MAP's approximation: re-schedule the previous warp with
    /// probability `p`, otherwise round-robin.
    SelfProb(f64),
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Lrr => f.write_str("LRR"),
            Policy::Gto => f.write_str("GTO"),
            Policy::SelfProb(p) => write!(f, "SelfProb({p:.2})"),
        }
    }
}

/// Aggregate result of scheduling a kernel's warp streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Total cycles until the last warp finished.
    pub cycles: u64,
    /// Warp-level memory instructions issued.
    pub issued_accesses: u64,
    /// Cacheline transactions issued.
    pub issued_transactions: u64,
    /// Measured probability that a core scheduled the same warp twice in a
    /// row — the paper's `SchedP_self` statistic.
    pub sched_p_self: f64,
    /// Memory instructions issued per core.
    pub per_core_issues: Vec<u64>,
}

/// Runtime state of one resident warp.
struct WarpRt {
    stream: usize,
    pos: usize,
    ready_at: u64,
    at_barrier: bool,
    done: bool,
    /// Index of the block-runtime entry on this core.
    block_slot: usize,
}

/// Runtime state of one resident block.
struct BlockRt {
    live_warps: u32,
    arrived: u32,
}

struct CoreRt {
    warps: Vec<WarpRt>,
    blocks: Vec<BlockRt>,
    resident_blocks: u32,
    rr_cursor: usize,
    last_issued: Option<usize>,
    issues: u64,
    same_issues: u64,
    transitions: u64,
}

impl CoreRt {
    fn new() -> Self {
        CoreRt {
            warps: Vec::new(),
            blocks: Vec::new(),
            resident_blocks: 0,
            rr_cursor: 0,
            last_issued: None,
            issues: 0,
            same_issues: 0,
            transitions: 0,
        }
    }
}

/// Interleaves coalesced warp streams into per-core memory request
/// sequences, driving the given memory model (Algorithm 2, lines 11–17).
///
/// `seed` feeds the stochastic [`Policy::SelfProb`] policy; `Lrr` and `Gto`
/// are deterministic and ignore it.
///
/// # Panics
///
/// Panics if a stream references a block id outside the launch grid.
pub fn run_schedule(
    streams: &[WarpStream],
    launch: &LaunchConfig,
    gpu: &GpuConfig,
    policy: Policy,
    mem: &mut dyn MemoryModel,
    seed: u64,
) -> ScheduleOutcome {
    let num_blocks = launch.num_blocks();
    // Group stream indices by block, preserving warp-id order.
    let mut by_block: Vec<Vec<usize>> = vec![Vec::new(); num_blocks as usize];
    for (i, s) in streams.iter().enumerate() {
        assert!(
            s.block < num_blocks,
            "stream block {} outside grid of {num_blocks} blocks",
            s.block
        );
        by_block[s.block as usize].push(i);
    }
    let mut pending: VecDeque<usize> = (0..num_blocks as usize).collect();
    let block_limit = gpu.resident_blocks_per_core(launch);

    let mut cores: Vec<CoreRt> = (0..gpu.num_cores).map(|_| CoreRt::new()).collect();
    let mut rng = Rng::seed_from(seed ^ 0x5C4E_D11E);
    let mut live_warps_total: u64 = 0;
    let mut issued_accesses = 0u64;
    let mut issued_transactions = 0u64;

    // Initial round-robin placement across cores, one block per core per
    // round, until every core is full or no blocks remain.
    'fill: for _round in 0..block_limit {
        for core in cores.iter_mut() {
            if pending.is_empty() {
                break 'fill;
            }
            if core.resident_blocks < block_limit {
                let b = pending.pop_front().expect("non-empty");
                place_block(core, b, &by_block, streams, &mut live_warps_total);
            }
        }
    }

    let mut cycle = 0u64;
    while live_warps_total > 0 {
        let mut progressed = false;
        for (ci, core) in cores.iter_mut().enumerate() {
            let Some(widx) = select_warp(core, cycle, policy, &mut rng) else {
                continue;
            };
            progressed = true;
            // Measure SchedP_self over consecutive issue pairs.
            if let Some(prev) = core.last_issued {
                core.transitions += 1;
                if prev == widx {
                    core.same_issues += 1;
                }
            }
            core.last_issued = Some(widx);
            core.rr_cursor = widx;
            core.issues += 1;

            let stream = &streams[core.warps[widx].stream];
            let pos = core.warps[widx].pos;
            core.warps[widx].pos += 1;
            match &stream.events[pos] {
                WarpStreamEvent::Access(acc) => {
                    issued_accesses += 1;
                    issued_transactions += acc.lines.len() as u64;
                    let mut lat = 0u64;
                    for &line in &acc.lines {
                        lat = lat.max(mem.access(CoreId(ci as u16), acc.pc, line, acc.kind, cycle));
                    }
                    // Transactions of one instruction serialize on the
                    // core's load/store unit.
                    lat += acc.lines.len().saturating_sub(1) as u64;
                    core.warps[widx].ready_at = cycle + lat.max(1);
                }
                WarpStreamEvent::Sync => {
                    core.warps[widx].at_barrier = true;
                    core.warps[widx].ready_at = cycle + 1;
                    let slot = core.warps[widx].block_slot;
                    core.blocks[slot].arrived += 1;
                    maybe_release_barrier(core, slot, cycle);
                }
            }
            // Warp retirement and block completion.
            if core.warps[widx].pos >= stream.events.len() {
                core.warps[widx].done = true;
                live_warps_total -= 1;
                let slot = core.warps[widx].block_slot;
                core.blocks[slot].live_warps -= 1;
                maybe_release_barrier(core, slot, cycle);
                if core.blocks[slot].live_warps == 0 {
                    core.resident_blocks -= 1;
                    if let Some(b) = pending.pop_front() {
                        place_block(core, b, &by_block, streams, &mut live_warps_total);
                    }
                }
            }
        }
        if progressed {
            cycle += 1;
        } else {
            // Nothing ready anywhere: jump to the next wake-up time.
            let next = cores
                .iter()
                .flat_map(|c| c.warps.iter())
                .filter(|w| !w.done && !w.at_barrier)
                .map(|w| w.ready_at)
                .min();
            match next {
                Some(t) if t > cycle => cycle = t,
                // All live warps stuck at barriers would be a bug in the
                // release logic; fail loudly rather than spin.
                _ => panic!("scheduler deadlock at cycle {cycle}"),
            }
        }
    }

    let (same, trans, per_core): (u64, u64, Vec<u64>) = cores.iter().fold(
        (0, 0, Vec::with_capacity(cores.len())),
        |(s, t, mut v), c| {
            v.push(c.issues);
            (s + c.same_issues, t + c.transitions, v)
        },
    );
    ScheduleOutcome {
        cycles: cycle,
        issued_accesses,
        issued_transactions,
        sched_p_self: if trans == 0 {
            0.0
        } else {
            same as f64 / trans as f64
        },
        per_core_issues: per_core,
    }
}

fn place_block(
    core: &mut CoreRt,
    block: usize,
    by_block: &[Vec<usize>],
    streams: &[WarpStream],
    live_warps_total: &mut u64,
) {
    core.resident_blocks += 1;
    let slot = core.blocks.len();
    let mut live = 0u32;
    for &si in &by_block[block] {
        if streams[si].events.is_empty() {
            continue;
        }
        core.warps.push(WarpRt {
            stream: si,
            pos: 0,
            ready_at: 0,
            at_barrier: false,
            done: false,
            block_slot: slot,
        });
        live += 1;
        *live_warps_total += 1;
    }
    core.blocks.push(BlockRt {
        live_warps: live,
        arrived: 0,
    });
}

/// Releases a barrier once every live warp of the block has arrived.
fn maybe_release_barrier(core: &mut CoreRt, slot: usize, cycle: u64) {
    let b = &core.blocks[slot];
    if b.live_warps > 0 && b.arrived >= b.live_warps {
        core.blocks[slot].arrived = 0;
        for w in &mut core.warps {
            if w.block_slot == slot && w.at_barrier {
                w.at_barrier = false;
                w.ready_at = w.ready_at.max(cycle + 1);
            }
        }
    }
}

fn select_warp(core: &mut CoreRt, cycle: u64, policy: Policy, rng: &mut Rng) -> Option<usize> {
    let n = core.warps.len();
    if n == 0 {
        return None;
    }
    let ready = |w: &WarpRt| !w.done && !w.at_barrier && w.ready_at <= cycle;
    match policy {
        Policy::Lrr => select_rr(core, cycle),
        Policy::Gto => {
            if let Some(last) = core.last_issued {
                if ready(&core.warps[last]) {
                    return Some(last);
                }
            }
            // Oldest = first in queue order (warps are pushed in warp-id /
            // arrival order).
            (0..n).find(|&i| ready(&core.warps[i]))
        }
        Policy::SelfProb(p) => {
            if let Some(last) = core.last_issued {
                if ready(&core.warps[last]) && rng.gen_bool(p) {
                    return Some(last);
                }
            }
            select_rr(core, cycle)
        }
    }
}

fn select_rr(core: &CoreRt, cycle: u64) -> Option<usize> {
    let n = core.warps.len();
    (1..=n).map(|k| (core.rr_cursor + k) % n).find(|&i| {
        let w = &core.warps[i];
        !w.done && !w.at_barrier && w.ready_at <= cycle
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::coalesce_app;
    use crate::exec::execute_kernel;
    use crate::kernel::{dsl, IndexExpr, KernelBuilder, Stmt};
    use gmap_trace::record::Pc;

    fn single_core() -> GpuConfig {
        GpuConfig {
            num_cores: 1,
            warp_size: 32,
            max_threads_per_core: 1024,
            max_blocks_per_core: 8,
        }
    }

    fn streaming_kernel(blocks: u32, tpb: u32, iters: u32) -> Vec<WarpStream> {
        let k = KernelBuilder::new("stream", blocks, tpb)
            .array("a", 1 << 20)
            .stmt(dsl::loop_n(
                iters,
                vec![dsl::read(0x10, 0, dsl::affine(0, 1, vec![(0, 4096)]))],
            ))
            .build()
            .expect("valid");
        coalesce_app(&execute_kernel(&k), 128)
    }

    #[test]
    fn all_events_issue_exactly_once() {
        let streams = streaming_kernel(4, 128, 5);
        let total: usize = streams.iter().map(|s| s.num_accesses()).sum();
        let mut mem = FixedLatency(10);
        let out = run_schedule(
            &streams,
            &LaunchConfig::new(4u32, 128u32),
            &GpuConfig::fermi_baseline(),
            Policy::Lrr,
            &mut mem,
            1,
        );
        assert_eq!(out.issued_accesses, total as u64);
        assert_eq!(out.issued_transactions, total as u64); // unit stride: 1 line each
        assert!(out.cycles > 0);
        assert_eq!(out.per_core_issues.iter().sum::<u64>(), out.issued_accesses);
    }

    #[test]
    fn lrr_interleaves_warps() {
        // One core, one block of 4 warps, long latency: LRR must rotate, so
        // SchedP_self should be ~0.
        let streams = streaming_kernel(1, 128, 20);
        let mut mem = FixedLatency(100);
        let out = run_schedule(
            &streams,
            &LaunchConfig::new(1u32, 128u32),
            &single_core(),
            Policy::Lrr,
            &mut mem,
            1,
        );
        assert!(
            out.sched_p_self < 0.05,
            "LRR SchedP_self = {}",
            out.sched_p_self
        );
    }

    #[test]
    fn gto_stays_on_one_warp_at_low_latency() {
        // Latency 1 means the greedy warp is always ready again next cycle.
        let streams = streaming_kernel(1, 128, 20);
        let mut mem = FixedLatency(1);
        let out = run_schedule(
            &streams,
            &LaunchConfig::new(1u32, 128u32),
            &single_core(),
            Policy::Gto,
            &mut mem,
            1,
        );
        assert!(
            out.sched_p_self > 0.9,
            "GTO SchedP_self = {}",
            out.sched_p_self
        );
    }

    #[test]
    fn self_prob_tracks_its_parameter() {
        let streams = streaming_kernel(1, 128, 50);
        let mut mem = FixedLatency(1);
        let out = run_schedule(
            &streams,
            &LaunchConfig::new(1u32, 128u32),
            &single_core(),
            Policy::SelfProb(0.7),
            &mut mem,
            99,
        );
        assert!(
            (out.sched_p_self - 0.7).abs() < 0.1,
            "SelfProb(0.7) measured {}",
            out.sched_p_self
        );
    }

    #[test]
    fn higher_latency_means_more_cycles() {
        let streams = streaming_kernel(2, 64, 10);
        let launch = LaunchConfig::new(2u32, 64u32);
        let gpu = single_core();
        let mut fast = FixedLatency(1);
        let mut slow = FixedLatency(200);
        let c_fast = run_schedule(&streams, &launch, &gpu, Policy::Lrr, &mut fast, 1).cycles;
        let c_slow = run_schedule(&streams, &launch, &gpu, Policy::Lrr, &mut slow, 1).cycles;
        assert!(c_slow > c_fast, "slow {c_slow} <= fast {c_fast}");
    }

    #[test]
    fn barriers_rendezvous_all_warps_of_a_block() {
        // Warp 0 has much more pre-barrier work than warp 1; the barrier
        // forces their post-barrier accesses to start together.
        let k = KernelBuilder::new("sync", 1u32, 64u32)
            .array("a", 1 << 16)
            .stmt(Stmt::If {
                pred: crate::kernel::Pred::TidLt(32),
                then_body: vec![dsl::loop_n(
                    30,
                    vec![dsl::read(0x10, 0, dsl::affine(0, 1, vec![(0, 64)]))],
                )],
                else_body: vec![],
            })
            .stmt(Stmt::Sync)
            .read(Pc(0x20), 0, IndexExpr::tid_linear(0, 1))
            .build()
            .expect("valid");
        let streams = coalesce_app(&execute_kernel(&k), 128);

        /// Records the issue cycle of every transaction at PC 0x20.
        struct Recorder(Vec<u64>);
        impl MemoryModel for Recorder {
            fn access(&mut self, _: CoreId, pc: Pc, _: ByteAddr, _: AccessKind, cycle: u64) -> u64 {
                if pc == Pc(0x20) {
                    self.0.push(cycle);
                }
                5
            }
        }
        let mut rec = Recorder(Vec::new());
        run_schedule(
            &streams,
            &LaunchConfig::new(1u32, 64u32),
            &single_core(),
            Policy::Lrr,
            &mut rec,
            1,
        );
        assert_eq!(rec.0.len(), 2);
        // Both post-barrier accesses happen within a couple of cycles of
        // each other, even though warp 0 had 30 extra accesses.
        let spread = rec.0.iter().max().expect("two") - rec.0.iter().min().expect("two");
        assert!(spread <= 2, "post-barrier spread {spread} too large");
    }

    #[test]
    fn blocks_spill_over_in_waves() {
        // 4 blocks of 512 threads on one core limited to 1024 threads: only
        // two blocks resident at a time, so the rest run in a second wave.
        let streams = streaming_kernel(4, 512, 3);
        let gpu = GpuConfig {
            num_cores: 1,
            warp_size: 32,
            max_threads_per_core: 1024,
            max_blocks_per_core: 8,
        };
        let mut mem = FixedLatency(10);
        let out = run_schedule(
            &streams,
            &LaunchConfig::new(4u32, 512u32),
            &gpu,
            Policy::Lrr,
            &mut mem,
            1,
        );
        let total: usize = streams.iter().map(|s| s.num_accesses()).sum();
        assert_eq!(out.issued_accesses, total as u64);
    }

    #[test]
    fn empty_streams_complete_immediately() {
        let streams = vec![WarpStream {
            warp: WarpId(0),
            block: 0,
            events: vec![],
        }];
        let mut mem = FixedLatency(1);
        let out = run_schedule(
            &streams,
            &LaunchConfig::new(1u32, 32u32),
            &single_core(),
            Policy::Lrr,
            &mut mem,
            1,
        );
        assert_eq!(out.issued_accesses, 0);
        assert_eq!(out.cycles, 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let streams = streaming_kernel(2, 128, 10);
        let launch = LaunchConfig::new(2u32, 128u32);
        let gpu = GpuConfig::fermi_baseline();
        let mut m1 = FixedLatency(7);
        let mut m2 = FixedLatency(7);
        let a = run_schedule(&streams, &launch, &gpu, Policy::SelfProb(0.5), &mut m1, 42);
        let b = run_schedule(&streams, &launch, &gpu, Policy::SelfProb(0.5), &mut m2, 42);
        assert_eq!(a, b);
    }
}
