//! A declarative kernel DSL for synthetic GPGPU workloads.
//!
//! G-MAP's observation (§4.2) is that GPU memory operations are usually a
//! *linear transformation of the thread index*, executed inside loops, with
//! occasional control-flow divergence. This module captures exactly that
//! structure: a [`KernelDesc`] is a launch geometry, a set of arrays, and a
//! body of statements — strided accesses ([`AccessDesc`]), loops, divergent
//! branches and barriers. The [`crate::exec`] module runs the DSL in SIMT
//! lockstep to produce per-warp dynamic memory instruction streams.
//!
//! Index expressions deliberately expose the knobs the paper's Table 1
//! characterizes: per-thread (`tid`), per-lane and per-warp coefficients
//! control *inter-thread* strides and coalescing behaviour; loop-iterator
//! coefficients control *intra-thread* strides; hashed expressions model
//! irregular applications (hotspot, bfs) that have no dominant pattern.

use crate::dim::Dim3;
use crate::hierarchy::LaunchConfig;
use gmap_trace::record::{AccessKind, ByteAddr, Pc};
use gmap_trace::rng::mix64;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A named memory region used by a kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayDesc {
    /// Human-readable name (for reports).
    pub name: String,
    /// First byte address of the region.
    pub base: ByteAddr,
    /// Number of elements.
    pub elems: u64,
    /// Element size in bytes.
    pub elem_size: u32,
}

impl ArrayDesc {
    /// Size of the region in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `elems * elem_size` overflows `u64`. Specs that can
    /// overflow are rejected by [`KernelDesc::validate`] (with
    /// [`ValidateKernelError::ArraySizeOverflow`]) before any code that
    /// calls this runs, so the panic guards against unvalidated
    /// hand-built descriptors only — previously the multiplication
    /// wrapped silently in release builds, yielding a bogus tiny
    /// footprint.
    pub fn size_bytes(&self) -> u64 {
        self.checked_size_bytes().unwrap_or_else(|| {
            panic!(
                "array '{}': {} elems x {} bytes overflows u64; validate() rejects such specs",
                self.name, self.elems, self.elem_size
            )
        })
    }

    /// Size of the region in bytes, or `None` when `elems * elem_size`
    /// overflows `u64`.
    pub fn checked_size_bytes(&self) -> Option<u64> {
        self.elems.checked_mul(self.elem_size as u64)
    }
}

/// Evaluation context for one (thread, iteration-stack) point.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    /// Global thread id.
    pub tid: u64,
    /// Lane within the warp (`tid % warp_size` within the block).
    pub lane: u32,
    /// Global warp id.
    pub warp: u32,
    /// Block id.
    pub block: u32,
    /// Current loop iteration values, outermost first.
    pub iters: &'a [u64],
}

/// An element-index expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexExpr {
    /// Affine combination of the thread coordinates and loop iterators:
    /// `base + tid·tid_coef + lane·lane_coef + warp·warp_coef +
    /// block·block_coef + Σ iterₖ·coefₖ` (all in elements).
    Affine {
        /// Constant element offset.
        base: i64,
        /// Coefficient of the global thread id.
        tid_coef: i64,
        /// Coefficient of the lane index.
        lane_coef: i64,
        /// Coefficient of the global warp id.
        warp_coef: i64,
        /// Coefficient of the block id.
        block_coef: i64,
        /// `(loop depth, coefficient)` pairs; depth 0 is the outermost
        /// enclosing loop.
        iter_coefs: Vec<(u8, i64)>,
    },
    /// Pseudo-random element derived from `(seed, tid, iters)` — models
    /// data-dependent/irregular accesses with no dominant stride (hotspot,
    /// bfs). Deterministic for a given seed.
    Hashed {
        /// Hash seed; different seeds give independent streams.
        seed: u64,
    },
    /// Pseudo-random element that depends on the thread only (not the
    /// iteration) — revisiting the same irregular location each iteration,
    /// which models indirect accesses with per-thread temporal locality.
    HashedPerThread {
        /// Hash seed.
        seed: u64,
    },
}

impl IndexExpr {
    /// Affine expression in the global thread id only: `base + tid·coef`.
    pub fn tid_linear(base: i64, tid_coef: i64) -> Self {
        IndexExpr::Affine {
            base,
            tid_coef,
            lane_coef: 0,
            warp_coef: 0,
            block_coef: 0,
            iter_coefs: vec![],
        }
    }

    /// Evaluates to an element index (wrapped into `[0, elems)` by the
    /// caller).
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> i64 {
        match self {
            IndexExpr::Affine {
                base,
                tid_coef,
                lane_coef,
                warp_coef,
                block_coef,
                iter_coefs,
            } => {
                let mut v = *base
                    + *tid_coef * ctx.tid as i64
                    + *lane_coef * ctx.lane as i64
                    + *warp_coef * ctx.warp as i64
                    + *block_coef * ctx.block as i64;
                for &(depth, coef) in iter_coefs {
                    let it = ctx.iters.get(depth as usize).copied().unwrap_or(0);
                    v += coef * it as i64;
                }
                v
            }
            IndexExpr::Hashed { seed } => {
                // Every input is mixed before combining so that structured
                // seeds and small iteration values cannot XOR-cancel.
                let mut h = mix64(*seed) ^ mix64(ctx.tid);
                for (d, &it) in ctx.iters.iter().enumerate() {
                    h = mix64(h ^ mix64(it.wrapping_add((d as u64 + 1) << 56)));
                }
                (mix64(h) >> 1) as i64
            }
            IndexExpr::HashedPerThread { seed } => {
                (mix64(mix64(*seed) ^ mix64(ctx.tid)) >> 1) as i64
            }
        }
    }
}

/// One static memory instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessDesc {
    /// Program counter identifying the instruction.
    pub pc: Pc,
    /// Index into [`KernelDesc::arrays`].
    pub array: usize,
    /// Read or write.
    pub kind: AccessKind,
    /// Element index expression.
    pub index: IndexExpr,
}

/// Loop trip count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trip {
    /// Same trip count for every thread.
    Const(u32),
    /// `base + hash(seed, tid) % spread` — per-thread variation, producing
    /// intra-warp divergence at loop exits (threads fall idle while the
    /// longest-running lane finishes).
    Hashed {
        /// Hash seed.
        seed: u64,
        /// Minimum trip count.
        base: u32,
        /// Exclusive upper bound on the random extra iterations.
        spread: u32,
    },
}

impl Trip {
    /// Trip count for a specific thread.
    pub fn count_for(&self, tid: u64) -> u32 {
        match *self {
            Trip::Const(n) => n,
            Trip::Hashed { seed, base, spread } => {
                base + if spread == 0 {
                    0
                } else {
                    (mix64(seed ^ mix64(tid)) % spread as u64) as u32
                }
            }
        }
    }
}

/// A branch predicate, evaluated per thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pred {
    /// `tid < n`.
    TidLt(u32),
    /// `tid % m == r`.
    TidMod {
        /// Modulus.
        m: u32,
        /// Residue selecting the then-branch.
        r: u32,
    },
    /// `lane < n` — divergence *within* every warp.
    LaneLt(u32),
    /// `block % m == r`.
    BlockMod {
        /// Modulus.
        m: u32,
        /// Residue selecting the then-branch.
        r: u32,
    },
    /// True for ~`percent`% of threads, pseudo-randomly by tid.
    Hashed {
        /// Hash seed.
        seed: u64,
        /// Percentage of threads taking the then-branch (0–100).
        percent: u8,
    },
}

impl Pred {
    /// Evaluates the predicate for one thread.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> bool {
        match *self {
            Pred::TidLt(n) => ctx.tid < n as u64,
            Pred::TidMod { m, r } => m != 0 && ctx.tid % m as u64 == r as u64,
            Pred::LaneLt(n) => ctx.lane < n,
            Pred::BlockMod { m, r } => m != 0 && ctx.block % m == r,
            Pred::Hashed { seed, percent } => mix64(seed ^ mix64(ctx.tid)) % 100 < percent as u64,
        }
    }
}

/// A kernel body statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// A memory access.
    Access(AccessDesc),
    /// A counted loop.
    Loop {
        /// Trip count.
        trip: Trip,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A divergent branch.
    If {
        /// Branch predicate.
        pred: Pred,
        /// Statements executed by threads where the predicate holds.
        then_body: Vec<Stmt>,
        /// Statements executed by the remaining threads.
        else_body: Vec<Stmt>,
    },
    /// A threadblock-wide barrier (`__syncthreads()`).
    Sync,
}

/// A complete synthetic kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Benchmark name.
    pub name: String,
    /// Launch geometry.
    pub launch: LaunchConfig,
    /// Memory regions.
    pub arrays: Vec<ArrayDesc>,
    /// Kernel body.
    pub body: Vec<Stmt>,
}

impl KernelDesc {
    /// Validates internal consistency (array references in range, loop
    /// depths well-formed, predicate moduli non-zero).
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateKernelError`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<(), ValidateKernelError> {
        fn walk(stmts: &[Stmt], depth: u8, arrays: usize) -> Result<(), ValidateKernelError> {
            for s in stmts {
                match s {
                    Stmt::Access(a) => {
                        if a.array >= arrays {
                            return Err(ValidateKernelError::BadArrayRef {
                                pc: a.pc,
                                array: a.array,
                            });
                        }
                        if let IndexExpr::Affine { iter_coefs, .. } = &a.index {
                            for &(d, _) in iter_coefs {
                                if d >= depth {
                                    return Err(ValidateKernelError::BadLoopDepth {
                                        pc: a.pc,
                                        depth: d,
                                        enclosing: depth,
                                    });
                                }
                            }
                        }
                    }
                    Stmt::Loop { body, .. } => walk(body, depth + 1, arrays)?,
                    Stmt::If {
                        pred,
                        then_body,
                        else_body,
                    } => {
                        if let Pred::TidMod { m: 0, .. } | Pred::BlockMod { m: 0, .. } = pred {
                            return Err(ValidateKernelError::ZeroModulus);
                        }
                        walk(then_body, depth, arrays)?;
                        walk(else_body, depth, arrays)?;
                    }
                    Stmt::Sync => {}
                }
            }
            Ok(())
        }
        if self.arrays.is_empty() {
            return Err(ValidateKernelError::NoArrays);
        }
        for (i, a) in self.arrays.iter().enumerate() {
            // Both the region size and its end address must fit in u64;
            // otherwise every downstream bounds/footprint computation
            // (size_bytes, the builder layout, the analyzer) is garbage.
            let fits = a
                .checked_size_bytes()
                .and_then(|size| a.base.0.checked_add(size));
            if fits.is_none() {
                return Err(ValidateKernelError::ArraySizeOverflow { array: i });
            }
        }
        walk(&self.body, 0, self.arrays.len())
    }

    /// All distinct static instruction PCs in the kernel, in first-
    /// appearance order.
    pub fn static_pcs(&self) -> Vec<Pc> {
        fn walk(stmts: &[Stmt], out: &mut Vec<Pc>) {
            for s in stmts {
                match s {
                    Stmt::Access(a) => {
                        if !out.contains(&a.pc) {
                            out.push(a.pc);
                        }
                    }
                    Stmt::Loop { body, .. } => walk(body, out),
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, out);
                        walk(else_body, out);
                    }
                    Stmt::Sync => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    /// Total bytes across all arrays (the kernel's memory footprint).
    pub fn footprint_bytes(&self) -> u64 {
        self.arrays.iter().map(ArrayDesc::size_bytes).sum()
    }
}

/// Error returned by [`KernelDesc::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateKernelError {
    /// The kernel declares no arrays.
    NoArrays,
    /// An access references an array index out of range.
    BadArrayRef {
        /// PC of the offending access.
        pc: Pc,
        /// The out-of-range array index.
        array: usize,
    },
    /// An iterator coefficient references a loop depth that does not
    /// enclose the access.
    BadLoopDepth {
        /// PC of the offending access.
        pc: Pc,
        /// Referenced depth.
        depth: u8,
        /// Number of loops actually enclosing the access.
        enclosing: u8,
    },
    /// A modulo predicate with modulus zero.
    ZeroModulus,
    /// An array's byte size (`elems * elem_size`) or end address
    /// (`base + size`) overflows `u64`.
    ArraySizeOverflow {
        /// Index of the offending array in the array table.
        array: usize,
    },
}

impl fmt::Display for ValidateKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateKernelError::NoArrays => f.write_str("kernel declares no arrays"),
            ValidateKernelError::BadArrayRef { pc, array } => {
                write!(
                    f,
                    "access {pc} references array #{array} which does not exist"
                )
            }
            ValidateKernelError::BadLoopDepth {
                pc,
                depth,
                enclosing,
            } => write!(
                f,
                "access {pc} uses loop depth {depth} but only {enclosing} loops enclose it"
            ),
            ValidateKernelError::ZeroModulus => f.write_str("modulo predicate with modulus zero"),
            ValidateKernelError::ArraySizeOverflow { array } => write!(
                f,
                "array #{array}: elems * elem_size (or base + size) overflows u64"
            ),
        }
    }
}

impl Error for ValidateKernelError {}

/// Builder for [`KernelDesc`].
///
/// ```
/// use gmap_gpu::{KernelBuilder, IndexExpr};
/// use gmap_trace::record::{AccessKind, Pc};
///
/// let kernel = KernelBuilder::new("vecadd", 4u32, 128u32)
///     .array("a", 1 << 20)
///     .array("b", 1 << 20)
///     .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
///     .read(Pc(0x18), 1, IndexExpr::tid_linear(0, 1))
///     .build()
///     .expect("valid kernel");
/// assert_eq!(kernel.static_pcs().len(), 2);
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    launch: LaunchConfig,
    arrays: Vec<ArrayDesc>,
    next_base: u64,
    body: Vec<Stmt>,
}

impl KernelBuilder {
    /// Starts a kernel with the given name and launch geometry.
    pub fn new(name: &str, grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        KernelBuilder {
            name: name.to_owned(),
            launch: LaunchConfig::new(grid, block),
            arrays: Vec::new(),
            // Synthetic address space starts at 4 KiB to avoid the null page.
            next_base: 0x1000,
            body: Vec::new(),
        }
    }

    /// Declares a 4-byte-element array of `elems` elements, placed
    /// contiguously after previous arrays (aligned to 256 B like CUDA
    /// allocations).
    pub fn array(self, name: &str, elems: u64) -> Self {
        self.array_with(name, elems, 4)
    }

    /// Declares an array with an explicit element size.
    ///
    /// Layout arithmetic saturates: an array too large for the address
    /// space does not wrap the allocation cursor, and the resulting
    /// descriptor is rejected by [`KernelDesc::validate`] at `build()`.
    pub fn array_with(mut self, name: &str, elems: u64, elem_size: u32) -> Self {
        let base = ByteAddr(self.next_base);
        let size = elems.saturating_mul(elem_size as u64);
        self.next_base = self.next_base.saturating_add(size).saturating_add(255) & !255;
        self.arrays.push(ArrayDesc {
            name: name.to_owned(),
            base,
            elems,
            elem_size,
        });
        self
    }

    /// Appends a read access to the top level of the body.
    pub fn read(self, pc: Pc, array: usize, index: IndexExpr) -> Self {
        self.stmt(Stmt::Access(AccessDesc {
            pc,
            array,
            kind: AccessKind::Read,
            index,
        }))
    }

    /// Appends a write access to the top level of the body.
    pub fn write(self, pc: Pc, array: usize, index: IndexExpr) -> Self {
        self.stmt(Stmt::Access(AccessDesc {
            pc,
            array,
            kind: AccessKind::Write,
            index,
        }))
    }

    /// Appends an arbitrary statement.
    pub fn stmt(mut self, stmt: Stmt) -> Self {
        self.body.push(stmt);
        self
    }

    /// Finishes and validates the kernel.
    ///
    /// # Errors
    ///
    /// Returns the first validation problem, as [`KernelDesc::validate`].
    pub fn build(self) -> Result<KernelDesc, ValidateKernelError> {
        let k = KernelDesc {
            name: self.name,
            launch: self.launch,
            arrays: self.arrays,
            body: self.body,
        };
        k.validate()?;
        Ok(k)
    }
}

/// Convenience constructors for common statement shapes, used heavily by
/// the workload definitions.
pub mod dsl {
    use super::*;

    /// A read access statement.
    pub fn read(pc: u64, array: usize, index: IndexExpr) -> Stmt {
        Stmt::Access(AccessDesc {
            pc: Pc(pc),
            array,
            kind: AccessKind::Read,
            index,
        })
    }

    /// A write access statement.
    pub fn write(pc: u64, array: usize, index: IndexExpr) -> Stmt {
        Stmt::Access(AccessDesc {
            pc: Pc(pc),
            array,
            kind: AccessKind::Write,
            index,
        })
    }

    /// A constant-trip loop.
    pub fn loop_n(trip: u32, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop {
            trip: Trip::Const(trip),
            body,
        }
    }

    /// An affine index expression with tid and iterator terms only.
    pub fn affine(base: i64, tid_coef: i64, iter_coefs: Vec<(u8, i64)>) -> IndexExpr {
        IndexExpr::Affine {
            base,
            tid_coef,
            lane_coef: 0,
            warp_coef: 0,
            block_coef: 0,
            iter_coefs,
        }
    }

    /// An affine index expression decomposed by warp and lane.
    pub fn warp_lane(
        base: i64,
        warp_coef: i64,
        lane_coef: i64,
        iter_coefs: Vec<(u8, i64)>,
    ) -> IndexExpr {
        IndexExpr::Affine {
            base,
            tid_coef: 0,
            lane_coef,
            warp_coef,
            block_coef: 0,
            iter_coefs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(tid: u64, iters: &'a [u64]) -> EvalCtx<'a> {
        EvalCtx {
            tid,
            lane: (tid % 32) as u32,
            warp: (tid / 32) as u32,
            block: 0,
            iters,
        }
    }

    #[test]
    fn affine_eval() {
        let e = dsl::affine(5, 2, vec![(0, 10)]);
        assert_eq!(e.eval(&ctx(3, &[4])), 5 + 6 + 40);
        // Missing iterator defaults to 0.
        assert_eq!(e.eval(&ctx(3, &[])), 11);
    }

    #[test]
    fn warp_lane_eval() {
        let e = dsl::warp_lane(0, 88, 1, vec![]);
        assert_eq!(e.eval(&ctx(0, &[])), 0);
        assert_eq!(e.eval(&ctx(33, &[])), 88 + 1);
    }

    #[test]
    fn hashed_is_deterministic_and_iter_sensitive() {
        let e = IndexExpr::Hashed { seed: 9 };
        let a = e.eval(&ctx(1, &[0]));
        let b = e.eval(&ctx(1, &[0]));
        let c = e.eval(&ctx(1, &[1]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a >= 0);
    }

    #[test]
    fn hashed_per_thread_ignores_iters() {
        let e = IndexExpr::HashedPerThread { seed: 9 };
        assert_eq!(e.eval(&ctx(5, &[0])), e.eval(&ctx(5, &[17])));
        assert_ne!(e.eval(&ctx(5, &[0])), e.eval(&ctx(6, &[0])));
    }

    #[test]
    fn trip_counts() {
        assert_eq!(Trip::Const(7).count_for(123), 7);
        let t = Trip::Hashed {
            seed: 1,
            base: 3,
            spread: 4,
        };
        for tid in 0..100 {
            let c = t.count_for(tid);
            assert!((3..7).contains(&c));
        }
        assert_eq!(
            Trip::Hashed {
                seed: 1,
                base: 2,
                spread: 0
            }
            .count_for(5),
            2
        );
    }

    #[test]
    fn predicates() {
        assert!(Pred::TidLt(4).eval(&ctx(3, &[])));
        assert!(!Pred::TidLt(4).eval(&ctx(4, &[])));
        assert!(Pred::TidMod { m: 2, r: 1 }.eval(&ctx(3, &[])));
        assert!(Pred::LaneLt(16).eval(&ctx(15, &[])));
        assert!(!Pred::LaneLt(16).eval(&ctx(48, &[]))); // lane 16
        let hashed = Pred::Hashed {
            seed: 3,
            percent: 50,
        };
        let hits = (0..1000).filter(|&t| hashed.eval(&ctx(t, &[]))).count();
        assert!(
            (350..650).contains(&hits),
            "hashed predicate hit {hits}/1000"
        );
    }

    #[test]
    fn builder_lays_out_arrays_without_overlap() {
        let k = KernelBuilder::new("k", 1u32, 32u32)
            .array("a", 100)
            .array("b", 100)
            .read(Pc(1), 0, IndexExpr::tid_linear(0, 1))
            .build()
            .expect("valid");
        let a = &k.arrays[0];
        let b = &k.arrays[1];
        assert!(a.base.0 + a.size_bytes() <= b.base.0);
        assert_eq!(b.base.0 % 256, 0);
    }

    #[test]
    fn validate_rejects_bad_array() {
        let k = KernelBuilder::new("k", 1u32, 32u32)
            .array("a", 16)
            .read(Pc(1), 3, IndexExpr::tid_linear(0, 1))
            .build();
        assert_eq!(
            k.unwrap_err(),
            ValidateKernelError::BadArrayRef {
                pc: Pc(1),
                array: 3
            }
        );
    }

    #[test]
    fn validate_rejects_bad_loop_depth() {
        let k = KernelBuilder::new("k", 1u32, 32u32)
            .array("a", 16)
            .stmt(dsl::loop_n(
                2,
                vec![dsl::read(1, 0, dsl::affine(0, 1, vec![(1, 4)]))],
            ))
            .build();
        assert!(matches!(
            k.unwrap_err(),
            ValidateKernelError::BadLoopDepth { depth: 1, .. }
        ));
    }

    #[test]
    fn validate_rejects_no_arrays() {
        let k = KernelBuilder::new("k", 1u32, 32u32).build();
        assert_eq!(k.unwrap_err(), ValidateKernelError::NoArrays);
    }

    #[test]
    fn static_pcs_in_first_appearance_order() {
        let k = KernelBuilder::new("k", 1u32, 32u32)
            .array("a", 16)
            .stmt(dsl::loop_n(
                2,
                vec![
                    dsl::read(0x20, 0, IndexExpr::tid_linear(0, 1)),
                    dsl::read(0x10, 0, IndexExpr::tid_linear(0, 1)),
                    dsl::read(0x20, 0, IndexExpr::tid_linear(0, 1)),
                ],
            ))
            .build()
            .expect("valid");
        assert_eq!(k.static_pcs(), vec![Pc(0x20), Pc(0x10)]);
    }

    #[test]
    fn footprint_sums_arrays() {
        let k = KernelBuilder::new("k", 1u32, 32u32)
            .array("a", 100)
            .array_with("b", 50, 8)
            .read(Pc(1), 0, IndexExpr::tid_linear(0, 1))
            .build()
            .expect("valid");
        assert_eq!(k.footprint_bytes(), 400 + 400);
    }

    #[test]
    fn error_display() {
        let e = ValidateKernelError::BadArrayRef {
            pc: Pc(0x10),
            array: 9,
        };
        assert!(e.to_string().contains("0x10"));
        assert!(ValidateKernelError::NoArrays
            .to_string()
            .contains("no arrays"));
    }

    #[test]
    fn checked_size_bytes_catches_overflow() {
        let a = ArrayDesc {
            name: "big".into(),
            base: ByteAddr(0),
            elems: u64::MAX / 2,
            elem_size: 4,
        };
        assert_eq!(a.checked_size_bytes(), None);
        let ok = ArrayDesc {
            name: "ok".into(),
            base: ByteAddr(0),
            elems: 1 << 20,
            elem_size: 4,
        };
        assert_eq!(ok.checked_size_bytes(), Some(4 << 20));
        assert_eq!(ok.size_bytes(), 4 << 20);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn size_bytes_panics_on_overflow_instead_of_wrapping() {
        // Release builds previously wrapped silently here: 2^63 elems x 4 B
        // "was" 0 bytes.
        let a = ArrayDesc {
            name: "big".into(),
            base: ByteAddr(0),
            elems: 1 << 63,
            elem_size: 4,
        };
        let _ = a.size_bytes();
    }

    #[test]
    fn validate_rejects_array_size_overflow() {
        let k = KernelBuilder::new("k", 1u32, 32u32)
            .array_with("big", u64::MAX / 2, 8)
            .read(Pc(1), 0, IndexExpr::tid_linear(0, 1))
            .build();
        assert_eq!(
            k.unwrap_err(),
            ValidateKernelError::ArraySizeOverflow { array: 0 }
        );
        // The end address must fit too, even when the size itself does.
        let tail = KernelDesc {
            name: "k".into(),
            launch: LaunchConfig::new(1u32, 32u32),
            arrays: vec![ArrayDesc {
                name: "tail".into(),
                base: ByteAddr(u64::MAX - 1024),
                elems: 1024,
                elem_size: 4,
            }],
            body: vec![dsl::read(1, 0, IndexExpr::tid_linear(0, 1))],
        };
        assert_eq!(
            tail.validate().unwrap_err(),
            ValidateKernelError::ArraySizeOverflow { array: 0 }
        );
        assert!(ValidateKernelError::ArraySizeOverflow { array: 0 }
            .to_string()
            .contains("overflows"));
    }
}
