//! Dynamic data-race detection over executed traces.
//!
//! The static barrier-phase analysis in `gmap-analyze` proves kernels
//! race-free; this module is its ground-truth oracle. It replays an
//! [`AppTrace`] through the per-phase access recorder
//! ([`AppTrace::phased_accesses`]) and reports every pair of scalar
//! accesses that the execution model leaves unordered:
//!
//! - accesses from the *same warp* are always ordered (lock-step SIMT
//!   execution serializes them),
//! - accesses from *different warps of the same block* are ordered iff a
//!   barrier separates them, i.e. their phase counters differ,
//! - accesses from *different blocks* are never ordered.
//!
//! A pair is a race when it is unordered, touches the same byte, and at
//! least one side writes. Races are deduplicated to the static reporting
//! granularity — (PC pair, scope, write-write vs read-write) — so the
//! differential tests can compare them 1:1 against static verdicts.

use crate::exec::AppTrace;
use crate::kernel::KernelDesc;
use gmap_trace::record::AccessKind;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Which pair of threads a (potential) race is between. Intra-warp pairs
/// are never racy in the lock-step model, so they have no variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RaceScope {
    /// Different warps of the same threadblock: ordered only by barriers.
    CrossWarpSameBlock,
    /// Warps of different threadblocks: never ordered.
    InterBlock,
}

impl fmt::Display for RaceScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceScope::CrossWarpSameBlock => write!(f, "cross-warp same-block"),
            RaceScope::InterBlock => write!(f, "inter-block"),
        }
    }
}

/// One dynamic race, deduplicated per (PC pair, scope, kind).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicRace {
    /// Index of the conflicting array in [`KernelDesc::arrays`], if the
    /// address falls inside a declared array.
    pub array: Option<usize>,
    /// Lower PC of the conflicting pair.
    pub pc_lo: u64,
    /// Higher PC of the conflicting pair (equal to `pc_lo` for a
    /// self-conflicting instruction).
    pub pc_hi: u64,
    /// Write-write (`true`) or read-write (`false`).
    pub write_write: bool,
    /// Thread-pair scope of the conflict.
    pub scope: RaceScope,
    /// One witness byte address where the conflict occurred.
    pub addr: u64,
    /// Global warp ids of a witness pair of conflicting warps.
    pub warps: (u32, u32),
}

/// Work budget for the per-address pair scan. Traces whose conflict scan
/// would exceed this many pair comparisons are truncated (the returned
/// races are still genuine; completeness is only needed at test scales,
/// which sit far below the budget).
const PAIR_BUDGET: u64 = 20_000_000;

/// Replays `trace` and returns every unordered conflicting access pair,
/// deduplicated per (PC pair, scope, write-write), capped at `limit`
/// races.
///
/// `kernel` is only used to attribute addresses back to declared arrays;
/// the happens-before relation itself is derived purely from the trace.
pub fn dynamic_races(kernel: &KernelDesc, trace: &AppTrace, limit: usize) -> Vec<DynamicRace> {
    // Group scalar accesses by byte address. BTreeMap keeps the scan
    // order (and therefore the witness choice) deterministic.
    let mut by_addr: BTreeMap<u64, Vec<Acc>> = BTreeMap::new();
    for pa in trace.phased_accesses() {
        by_addr.entry(pa.addr.0).or_default().push(Acc {
            block: pa.block,
            warp: pa.warp,
            phase: pa.phase,
            pc: pa.pc.0,
            write: pa.kind == AccessKind::Write,
        });
    }
    let mut seen: BTreeSet<(u64, u64, RaceScope, bool)> = BTreeSet::new();
    let mut out = Vec::new();
    let mut budget = PAIR_BUDGET;
    'addrs: for (&addr, accs) in &by_addr {
        if !accs.iter().any(|a| a.write) {
            continue;
        }
        for i in 0..accs.len() {
            for j in (i + 1)..accs.len() {
                if budget == 0 {
                    break 'addrs;
                }
                budget -= 1;
                let (a, b) = (&accs[i], &accs[j]);
                if !(a.write || b.write) || a.warp == b.warp {
                    continue;
                }
                let scope = if a.block == b.block {
                    // Same block: a barrier orders the pair iff the two
                    // warps were in different phases.
                    if a.phase != b.phase {
                        continue;
                    }
                    RaceScope::CrossWarpSameBlock
                } else {
                    RaceScope::InterBlock
                };
                let (pc_lo, pc_hi) = (a.pc.min(b.pc), a.pc.max(b.pc));
                let write_write = a.write && b.write;
                if seen.insert((pc_lo, pc_hi, scope, write_write)) {
                    out.push(DynamicRace {
                        array: array_of(kernel, addr),
                        pc_lo,
                        pc_hi,
                        write_write,
                        scope,
                        addr,
                        warps: (a.warp, b.warp),
                    });
                    if out.len() >= limit {
                        break 'addrs;
                    }
                }
            }
        }
    }
    out
}

/// One scalar access, reduced to the fields the happens-before check
/// needs.
struct Acc {
    block: u32,
    warp: u32,
    phase: u32,
    pc: u64,
    write: bool,
}

fn array_of(kernel: &KernelDesc, addr: u64) -> Option<usize> {
    kernel
        .arrays
        .iter()
        .position(|a| addr >= a.base.0 && addr < a.base.0 + a.size_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_kernel;
    use crate::kernel::{dsl, IndexExpr, KernelBuilder, Stmt};
    use gmap_trace::record::Pc;

    #[test]
    fn tid_linear_writes_are_race_free() {
        let k = KernelBuilder::new("clean", 2u32, 64u32)
            .array("a", 1 << 10)
            .write(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
            .build()
            .expect("valid");
        let races = dynamic_races(&k, &execute_kernel(&k), 64);
        assert!(races.is_empty(), "unexpected races: {races:?}");
    }

    #[test]
    fn same_phase_cross_warp_write_is_a_race() {
        // Every thread of a block writes element `block`: warps of the
        // same block collide (same phase), and so do warps of different
        // blocks — but the latter touch *different* elements, so only the
        // same-block WW race exists here.
        let k = KernelBuilder::new("ww", 2u32, 64u32)
            .array("acc", 64)
            .write(
                Pc(0x10),
                0,
                IndexExpr::Affine {
                    base: 0,
                    tid_coef: 0,
                    lane_coef: 0,
                    warp_coef: 0,
                    block_coef: 1,
                    iter_coefs: vec![],
                },
            )
            .build()
            .expect("valid");
        let races = dynamic_races(&k, &execute_kernel(&k), 64);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].scope, RaceScope::CrossWarpSameBlock);
        assert!(races[0].write_write);
        assert_eq!(races[0].array, Some(0));
        assert_eq!((races[0].pc_lo, races[0].pc_hi), (0x10, 0x10));
    }

    #[test]
    fn barrier_orders_same_block_but_not_inter_block() {
        // Phase 0 writes a[tid % 64]; phase 1 reads the same slot. The
        // barrier orders warps within a block, but block 1 writes the
        // same 64 elements as block 0 (tid wraps to block-local), so the
        // read-write pair races inter-block only.
        let k = KernelBuilder::new("phased", 2u32, 64u32)
            .array("a", 64)
            .write(
                Pc(0x10),
                0,
                IndexExpr::Affine {
                    base: 0,
                    tid_coef: 1,
                    lane_coef: 0,
                    warp_coef: 0,
                    block_coef: -64,
                    iter_coefs: vec![],
                },
            )
            .stmt(Stmt::Sync)
            .read(
                Pc(0x20),
                0,
                IndexExpr::Affine {
                    base: 0,
                    tid_coef: 1,
                    lane_coef: 0,
                    warp_coef: 0,
                    block_coef: -64,
                    iter_coefs: vec![],
                },
            )
            .build()
            .expect("valid");
        let races = dynamic_races(&k, &execute_kernel(&k), 64);
        assert!(!races.is_empty());
        assert!(
            races.iter().all(|r| r.scope == RaceScope::InterBlock),
            "same-block pairs must be barrier-ordered: {races:?}"
        );
        // Both the WW pair (0x10, 0x10) and the RW pair (0x10, 0x20)
        // race across blocks.
        assert!(races.iter().any(|r| r.write_write));
        assert!(races
            .iter()
            .any(|r| !r.write_write && (r.pc_lo, r.pc_hi) == (0x10, 0x20)));
    }

    #[test]
    fn read_only_sharing_is_not_a_race() {
        let k = KernelBuilder::new("ro", 2u32, 64u32)
            .array("a", 4)
            .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 0))
            .build()
            .expect("valid");
        let races = dynamic_races(&k, &execute_kernel(&k), 64);
        assert!(races.is_empty());
    }

    #[test]
    fn intra_warp_conflicts_are_ordered() {
        // All 32 lanes of each warp write element `warp`: the collisions
        // are intra-warp only (one warp per element), hence lock-step
        // ordered and not races.
        let k = KernelBuilder::new("warp-local", 1u32, 64u32)
            .array("a", 2)
            .write(
                Pc(0x10),
                0,
                IndexExpr::Affine {
                    base: 0,
                    tid_coef: 0,
                    lane_coef: 0,
                    warp_coef: 1,
                    block_coef: 0,
                    iter_coefs: vec![],
                },
            )
            .build()
            .expect("valid");
        let races = dynamic_races(&k, &execute_kernel(&k), 64);
        assert!(races.is_empty(), "intra-warp writes are ordered: {races:?}");
    }

    #[test]
    fn phases_count_syncs_inside_loops() {
        // Loop of 2 iterations: write then barrier each iteration, with
        // the write target swapping between halves per iteration. Every
        // same-block conflicting pair is separated by the barrier.
        let k = KernelBuilder::new("loop-phase", 1u32, 64u32)
            .array("a", 64)
            .stmt(dsl::loop_n(
                2,
                vec![
                    dsl::write(0x10, 0, dsl::warp_lane(0, 32, 1, vec![(0, 32)])),
                    Stmt::Sync,
                ],
            ))
            .build()
            .expect("valid");
        let trace = execute_kernel(&k);
        let phased = trace.phased_accesses();
        assert!(phased.iter().any(|p| p.phase == 1));
        // warp 0 iter 1 writes a[32..64] == warp 1 iter 0's target, but
        // those sit in different phases.
        let races = dynamic_races(&k, &trace, 64);
        assert!(races.is_empty(), "barrier separates iterations: {races:?}");
    }
}
