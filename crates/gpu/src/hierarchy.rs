//! Thread hierarchy: grids, threadblocks, warps and SM residency.
//!
//! Follows the Fermi execution model the paper assumes (§2.2, §4): threads
//! are linearized per CUDA guide §G.1, grouped into 32-thread warps within
//! each threadblock, and threadblocks are distributed round-robin to cores
//! subject to per-core thread/block occupancy limits.

use crate::dim::Dim3;
use gmap_trace::record::{ThreadId, WarpId};
use serde::{Deserialize, Serialize};

/// Kernel launch geometry: grid and threadblock dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of threadblocks in the grid.
    pub grid: Dim3,
    /// Number of threads per threadblock.
    pub block: Dim3,
}

impl LaunchConfig {
    /// Creates a launch configuration.
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        LaunchConfig {
            grid: grid.into(),
            block: block.into(),
        }
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.count() as u32
    }

    /// Number of threadblocks.
    pub fn num_blocks(&self) -> u32 {
        self.grid.count() as u32
    }

    /// Total scalar threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }

    /// Warps per block for a given warp size, rounding up for partially
    /// filled trailing warps.
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.threads_per_block().div_ceil(warp_size)
    }

    /// Total warps in the grid.
    pub fn total_warps(&self, warp_size: u32) -> u32 {
        self.num_blocks() * self.warps_per_block(warp_size)
    }

    /// The block a global warp belongs to.
    pub fn block_of_warp(&self, warp: WarpId, warp_size: u32) -> u32 {
        warp.0 / self.warps_per_block(warp_size)
    }

    /// Global thread id of a `(warp, lane)` pair, or `None` if the lane is
    /// beyond the block's thread count (a padding lane of the final partial
    /// warp).
    pub fn thread_of(&self, warp: WarpId, lane: u32, warp_size: u32) -> Option<ThreadId> {
        let wpb = self.warps_per_block(warp_size);
        let block = warp.0 / wpb;
        let warp_in_block = warp.0 % wpb;
        let t_in_block = warp_in_block * warp_size + lane;
        if t_in_block >= self.threads_per_block() {
            return None;
        }
        Some(ThreadId(block * self.threads_per_block() + t_in_block))
    }
}

/// Machine parameters of the modeled GPU.
///
/// Defaults follow Table 2 of the paper: 15 SMs, 32-thread warps, at most
/// 1024 resident threads per SM (Fermi additionally caps resident blocks;
/// we default to 8, Fermi's limit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_cores: u16,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_core: u32,
    /// Maximum resident threadblocks per SM.
    pub max_blocks_per_core: u32,
}

impl GpuConfig {
    /// The Table 2 baseline: 15 SMs, warp size 32, 1024 threads/SM,
    /// 8 blocks/SM.
    pub fn fermi_baseline() -> Self {
        GpuConfig {
            num_cores: 15,
            warp_size: 32,
            max_threads_per_core: 1024,
            max_blocks_per_core: 8,
        }
    }

    /// How many blocks of the given launch can be resident on one SM at
    /// once (at least 1 — a block larger than the SM still runs alone).
    pub fn resident_blocks_per_core(&self, launch: &LaunchConfig) -> u32 {
        let by_threads = self.max_threads_per_core / launch.threads_per_block().max(1);
        by_threads.min(self.max_blocks_per_core).max(1)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::fermi_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_counts() {
        let l = LaunchConfig::new(10u32, 256u32);
        assert_eq!(l.threads_per_block(), 256);
        assert_eq!(l.num_blocks(), 10);
        assert_eq!(l.total_threads(), 2560);
        assert_eq!(l.warps_per_block(32), 8);
        assert_eq!(l.total_warps(32), 80);
    }

    #[test]
    fn partial_warp_rounds_up() {
        let l = LaunchConfig::new(2u32, 48u32);
        assert_eq!(l.warps_per_block(32), 2);
        assert_eq!(l.total_warps(32), 4);
    }

    #[test]
    fn block_of_warp() {
        let l = LaunchConfig::new(4u32, 64u32); // 2 warps per block
        assert_eq!(l.block_of_warp(WarpId(0), 32), 0);
        assert_eq!(l.block_of_warp(WarpId(1), 32), 0);
        assert_eq!(l.block_of_warp(WarpId(2), 32), 1);
        assert_eq!(l.block_of_warp(WarpId(7), 32), 3);
    }

    #[test]
    fn thread_of_full_warp() {
        let l = LaunchConfig::new(2u32, 64u32);
        assert_eq!(l.thread_of(WarpId(0), 0, 32), Some(ThreadId(0)));
        assert_eq!(l.thread_of(WarpId(1), 31, 32), Some(ThreadId(63)));
        // Second block starts at tid 64.
        assert_eq!(l.thread_of(WarpId(2), 0, 32), Some(ThreadId(64)));
    }

    #[test]
    fn thread_of_partial_warp_pads() {
        let l = LaunchConfig::new(1u32, 48u32); // warp 1 has 16 live lanes
        assert_eq!(l.thread_of(WarpId(1), 15, 32), Some(ThreadId(47)));
        assert_eq!(l.thread_of(WarpId(1), 16, 32), None);
    }

    #[test]
    fn residency_limits() {
        let gpu = GpuConfig::fermi_baseline();
        assert_eq!(
            gpu.resident_blocks_per_core(&LaunchConfig::new(100u32, 256u32)),
            4
        );
        assert_eq!(
            gpu.resident_blocks_per_core(&LaunchConfig::new(100u32, 64u32)),
            8
        );
        // Oversized blocks still get one slot.
        assert_eq!(
            gpu.resident_blocks_per_core(&LaunchConfig::new(100u32, 2048u32)),
            1
        );
    }

    #[test]
    fn serde_round_trip() {
        let gpu = GpuConfig::fermi_baseline();
        let json = serde_json::to_string(&gpu).expect("serialize");
        assert_eq!(
            serde_json::from_str::<GpuConfig>(&json).expect("deserialize"),
            gpu
        );
    }
}
