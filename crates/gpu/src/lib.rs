//! GPU execution-model substrate for the G-MAP framework.
//!
//! The original paper profiles real CUDA applications through a modified
//! CUDA-sim. This crate is the from-scratch substitute: it models everything
//! G-MAP needs from a GPU's *execution model* — and nothing it doesn't
//! (cores are deliberately not timed in detail, exactly as in the paper):
//!
//! - [`dim`] / [`hierarchy`] — grids, threadblocks, warps and their mapping
//!   onto streaming multiprocessors, per the Fermi model and §G.1 of the
//!   CUDA programming guide that the paper follows.
//! - [`kernel`] — a small declarative DSL for GPGPU kernels: static memory
//!   instructions with affine (tid-linear) or irregular index expressions,
//!   loops, divergent branches and barrier synchronization.
//! - [`exec`] — lockstep SIMT execution of a kernel, producing per-warp
//!   dynamic memory instruction streams (the paper's *dynamic memory
//!   execution paths*).
//! - [`race`] — a dynamic data-race checker over executed traces: the
//!   ground-truth oracle for the static barrier-phase race analysis in
//!   `gmap-analyze`.
//! - [`coalesce`] — the memory-coalescing model of CUDA guide §G.4.2:
//!   per-warp requests merge into minimal cacheline transactions.
//! - [`schedule`] — per-core warp queues and the warp scheduling policies
//!   of §4.5: loose round-robin (LRR), greedy-then-oldest (GTO), and the
//!   paper's parametric `SchedP_self` policy.
//! - [`workloads`] — 18 synthetic GPGPU benchmark models whose access
//!   signatures follow Table 1 of the paper (heartwall, backprop, kmeans,
//!   srad, ...).
//!
//! # Example
//!
//! ```
//! use gmap_gpu::workloads::{self, Scale};
//! use gmap_gpu::exec::execute_kernel;
//!
//! let kernel = workloads::kmeans(Scale::Tiny);
//! let app = execute_kernel(&kernel);
//! assert!(!app.warps.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod coalesce;
pub mod dim;
pub mod exec;
pub mod hierarchy;
pub mod kernel;
pub mod race;
pub mod schedule;
pub mod workloads;

pub use app::Application;
pub use dim::Dim3;
pub use exec::{AppTrace, PhasedAccess, WarpEvent, WarpTrace};
pub use hierarchy::{GpuConfig, LaunchConfig};
pub use kernel::{AccessDesc, ArrayDesc, IndexExpr, KernelBuilder, KernelDesc, Pred, Stmt, Trip};
pub use race::{dynamic_races, DynamicRace, RaceScope};
pub use schedule::{
    CoalescedAccess, FixedLatency, MemoryModel, Policy, ScheduleOutcome, WarpStream,
    WarpStreamEvent,
};
