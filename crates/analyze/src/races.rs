//! Barrier-phase happens-before data-race detection.
//!
//! The detector splits a kernel body into *barrier phases* — maximal
//! regions delimited by `__syncthreads()` — and reports, per (array,
//! PC-pair), whether two accesses from different threads can touch the
//! same element while the execution model leaves them unordered. Three
//! thread-pair scopes have three different happens-before structures:
//!
//! - **intra-warp**: lanes of one warp execute in SIMT lock-step, so two
//!   accesses from the same warp are always ordered — never racy. This
//!   is exactly the guarantee the executor implements: within a warp,
//!   instruction *n* retires for every lane before instruction *n + 1*
//!   issues for any lane.
//! - **cross-warp, same block**: ordered iff a barrier separates the two
//!   accesses, i.e. their static barrier phases differ.
//! - **inter-block**: never ordered (the model has no grid-wide sync);
//!   safe only when the two sites are element-disjoint.
//!
//! Phases are computed statically per site as an affine expression of
//! the enclosing loop iterators (a loop whose body contains `k` barriers
//! advances the phase by `k` per iteration). Only *unconditional*
//! barriers outside ragged (per-thread-trip) loops are counted — a
//! barrier that the divergence analysis would flag as a deadlock never
//! splits a phase. Conditional barriers that are block-uniform shift all
//! warps of a block equally, so same-block phase *differences* — the
//! only quantity the detector relies on — remain exact for every kernel
//! free of `barrier-divergence` errors.
//!
//! Disjointness of two affine sites is decided on the symbolic
//! difference of their element indices, rewritten over per-scope
//! variables (shared/delta block, warp-in-block, lane, per-side loop
//! iterators), in three escalating steps:
//!
//! 1. an abstract evaluation in the reduced product of the interval and
//!    congruence domains ([`crate::congruence::AbsVal`]) — this is what
//!    proves `A[2·tid]` and `A[2·tid + 1]` disjoint by parity, where
//!    intervals alone cannot,
//! 2. an abstract check of the phase difference (same-block scope only):
//!    if no assignment puts the two sites in the same phase, the pair is
//!    barrier-ordered regardless of its addresses,
//! 3. a budgeted exhaustive witness search over the same variables, with
//!    interval and divisibility pruning. A candidate is validated
//!    concretely (thread existence, every predicate on the path, ragged
//!    trip counts) before the pair is reported as a proven race. A
//!    search that exhausts with every candidate rejected *algebraically*
//!    is a proof of disjointness; a candidate rejected only by
//!    per-thread predicates or ragged trips the analysis could not
//!    consume downgrades the result to *potential* instead.
//!
//! Severity policy: a proven race in a kernel that declares at least one
//! counted barrier is an **error** (the kernel claims phase discipline
//! and violates it); proven races in barrier-free streaming kernels and
//! all *potential* verdicts are **warnings**. The dynamic checker in
//! [`gmap_gpu::race`] is the soundness oracle: differential tests assert
//! that certified kernels exhibit zero dynamic races and that every
//! dynamic race maps to a static proven/potential pair.

use crate::congruence::AbsVal;
use crate::interval::Interval;
use crate::report::{Finding, FindingKind, Severity};
use gmap_gpu::kernel::{EvalCtx, IndexExpr, KernelDesc, Pred, Stmt, Trip};
use gmap_gpu::race::RaceScope;
use gmap_trace::record::AccessKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Node budget for one (pair, scope) witness search. Exceeding it
/// downgrades the verdict to [`PairVerdict::Potential`] — never to a
/// false "disjoint".
const SEARCH_BUDGET: u64 = 1_500_000;

/// The verdict for one conflicting pair in one thread-pair scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairVerdict {
    /// The scope cannot occur in this launch geometry (single-warp
    /// blocks, or a single-block grid).
    Vacuous,
    /// No two threads of the scope can touch the same element.
    Disjoint,
    /// Conflicting accesses exist but every one is barrier-separated
    /// (or the sites are pinned to one warp: lock-step).
    Ordered,
    /// Neither provably safe nor concretely witnessed.
    Potential,
    /// A concrete racing thread pair was found and validated.
    Proven,
}

impl PairVerdict {
    /// Whether this verdict certifies the scope race-free.
    pub fn is_safe(self) -> bool {
        matches!(
            self,
            PairVerdict::Vacuous | PairVerdict::Disjoint | PairVerdict::Ordered
        )
    }
}

impl fmt::Display for PairVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PairVerdict::Vacuous => "n/a",
            PairVerdict::Disjoint => "disjoint",
            PairVerdict::Ordered => "ordered",
            PairVerdict::Potential => "potential",
            PairVerdict::Proven => "RACE",
        })
    }
}

/// Race verdicts for one (array, PC-pair), both scopes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RacePairReport {
    /// Index of the array in the kernel's array table.
    pub array: usize,
    /// Name of the array.
    pub array_name: String,
    /// PC of the first site of the pair (site order).
    pub pc_a: u64,
    /// `"R"` or `"W"` for the first site.
    pub kind_a: String,
    /// PC of the second site (equal to `pc_a` for a self-pair).
    pub pc_b: u64,
    /// `"R"` or `"W"` for the second site.
    pub kind_b: String,
    /// Verdict for two warps of the same block.
    pub same_block: PairVerdict,
    /// Verdict for warps of different blocks.
    pub inter_block: PairVerdict,
    /// Human-readable witness for the first proven scope, if any.
    pub witness: Option<String>,
}

/// The complete result of race analysis for one kernel.
#[derive(Debug, Clone)]
pub struct RaceAnalysis {
    /// Per-(array, PC-pair) verdicts, in site order.
    pub pairs: Vec<RacePairReport>,
    /// Findings for proven and potential races.
    pub findings: Vec<Finding>,
    /// Whether every pair is safe in every scope.
    pub certified: bool,
}

/// Runs the barrier-phase race detector on a structurally valid kernel.
/// Invalid kernels produce an empty, uncertified analysis (the caller
/// reports the validation error separately).
pub fn analyze_races(kernel: &KernelDesc, warp_size: u32) -> RaceAnalysis {
    let mut out = RaceAnalysis {
        pairs: Vec::new(),
        findings: Vec::new(),
        certified: false,
    };
    if kernel.validate().is_err() {
        return out;
    }
    let ws = warp_size.clamp(1, 64);
    let launch = &kernel.launch;
    let g = Geom {
        tpb: launch.threads_per_block().max(1) as i128,
        ws: ws as i128,
        wpb: launch.warps_per_block(ws).max(1) as i128,
        nb: launch.num_blocks().max(1) as i128,
    };
    let mut col = Collector {
        sites: Vec::new(),
        preds: Vec::new(),
        loops: Vec::new(),
        phase_coefs: Vec::new(),
        phase_base: 0,
        has_barrier: false,
    };
    col.walk(&kernel.body);
    let sites = col.sites;
    let has_barrier = col.has_barrier;
    let views: Vec<Option<AffView>> = sites
        .iter()
        .map(|s| AffView::of(s, g, kernel.arrays[s.array].elems as i128))
        .collect();

    let mut by_array: Vec<Vec<usize>> = vec![Vec::new(); kernel.arrays.len()];
    for (i, s) in sites.iter().enumerate() {
        by_array[s.array].push(i);
    }

    let mut certified = true;
    for idxs in &by_array {
        for (pi, &i) in idxs.iter().enumerate() {
            for &j in &idxs[pi..] {
                let (sa, sb) = (&sites[i], &sites[j]);
                if sa.kind != AccessKind::Write && sb.kind != AccessKind::Write {
                    continue;
                }
                let array = &kernel.arrays[sa.array];
                let mut verdicts = [PairVerdict::Vacuous; 2];
                let mut witness: Option<String> = None;
                for (slot, scope) in [RaceScope::CrossWarpSameBlock, RaceScope::InterBlock]
                    .into_iter()
                    .enumerate()
                {
                    let res = analyze_pair_scope(PairInput {
                        g,
                        sa,
                        va: views[i].as_ref(),
                        sb,
                        vb: views[j].as_ref(),
                        scope,
                        elems: array.elems as i128,
                    });
                    let write_write = sa.kind == AccessKind::Write && sb.kind == AccessKind::Write;
                    let flavor = if write_write {
                        "write-write"
                    } else {
                        "read-write"
                    };
                    verdicts[slot] = match res {
                        ScopeResult::Vacuous => PairVerdict::Vacuous,
                        ScopeResult::Disjoint => PairVerdict::Disjoint,
                        ScopeResult::Ordered => PairVerdict::Ordered,
                        ScopeResult::Potential(reason) => {
                            certified = false;
                            out.findings.push(Finding {
                                severity: Severity::Warning,
                                kind: FindingKind::RacePotential,
                                pc: Some(sa.pc),
                                message: format!(
                                    "potential {flavor} race on '{}' between pc {:#x} ({}) and pc {:#x} ({}), {scope}: {reason}",
                                    array.name,
                                    sa.pc,
                                    sa.kind_str(),
                                    sb.pc,
                                    sb.kind_str(),
                                ),
                            });
                            PairVerdict::Potential
                        }
                        ScopeResult::Proven(w) => {
                            certified = false;
                            let text = w.describe(&array.name);
                            let note = if has_barrier {
                                ""
                            } else {
                                " (kernel declares no barrier phases)"
                            };
                            out.findings.push(Finding {
                                severity: if has_barrier {
                                    Severity::Error
                                } else {
                                    Severity::Warning
                                },
                                kind: if write_write {
                                    FindingKind::RaceWriteWrite
                                } else {
                                    FindingKind::RaceReadWrite
                                },
                                pc: Some(sa.pc),
                                message: format!(
                                    "{flavor} race on '{}' between pc {:#x} ({}) and pc {:#x} ({}), {scope}: {text}{note}",
                                    array.name,
                                    sa.pc,
                                    sa.kind_str(),
                                    sb.pc,
                                    sb.kind_str(),
                                ),
                            });
                            if witness.is_none() {
                                witness = Some(text);
                            }
                            PairVerdict::Proven
                        }
                    };
                }
                out.pairs.push(RacePairReport {
                    array: sa.array,
                    array_name: array.name.clone(),
                    pc_a: sa.pc,
                    kind_a: sa.kind_str().to_string(),
                    pc_b: sb.pc,
                    kind_b: sb.kind_str().to_string(),
                    same_block: verdicts[0],
                    inter_block: verdicts[1],
                    witness,
                });
            }
        }
    }
    out.certified = certified;
    out
}

// ---------------------------------------------------------------------
// Site collection: one record per access, with its predicate path, loop
// stack, and barrier-phase expression.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct SiteLoop {
    trip: Trip,
    /// Largest per-thread trip count (iterations run in `[0, max_trip)`).
    max_trip: u64,
    ragged: bool,
}

struct Site {
    pc: u64,
    array: usize,
    kind: AccessKind,
    index: IndexExpr,
    preds: Vec<(Pred, bool)>,
    loops: Vec<SiteLoop>,
    /// Barriers passed before this site, outside any enclosing loop.
    phase_base: i128,
    /// Barriers per iteration of each enclosing loop (0 for uncounted).
    phase_coefs: Vec<i128>,
}

impl Site {
    fn kind_str(&self) -> &'static str {
        match self.kind {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        }
    }
}

/// Trip count when it is the same for every thread.
fn const_trip(trip: &Trip) -> Option<u64> {
    match *trip {
        Trip::Const(n) => Some(n as u64),
        Trip::Hashed { base, spread, .. } if spread <= 1 => Some(base as u64),
        Trip::Hashed { .. } => None,
    }
}

/// Counted barriers in one iteration of `stmts`: unconditional syncs,
/// including those of nested constant-trip loops. Conditional barriers
/// and barriers under ragged loops never count (they are deadlocks the
/// divergence analysis reports, not phase boundaries).
fn barriers_per_iter(stmts: &[Stmt]) -> i128 {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Sync => 1,
            Stmt::Loop { trip, body } => match const_trip(trip) {
                Some(n) => n as i128 * barriers_per_iter(body),
                None => 0,
            },
            _ => 0,
        })
        .sum()
}

struct Collector {
    sites: Vec<Site>,
    preds: Vec<(Pred, bool)>,
    loops: Vec<SiteLoop>,
    phase_coefs: Vec<i128>,
    phase_base: i128,
    has_barrier: bool,
}

impl Collector {
    fn walk(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Access(acc) => self.sites.push(Site {
                    pc: acc.pc.0,
                    array: acc.array,
                    kind: acc.kind,
                    index: acc.index.clone(),
                    preds: self.preds.clone(),
                    loops: self.loops.clone(),
                    phase_base: self.phase_base,
                    phase_coefs: self.phase_coefs.clone(),
                }),
                Stmt::Sync => {
                    if self.preds.is_empty() && self.loops.iter().all(|l| !l.ragged) {
                        self.phase_base += 1;
                        self.has_barrier = true;
                    }
                }
                Stmt::Loop { trip, body } => {
                    let (max_trip, ragged) = match *trip {
                        Trip::Const(n) => (n as u64, false),
                        Trip::Hashed { base, spread, .. } => {
                            (base as u64 + spread.saturating_sub(1) as u64, spread > 1)
                        }
                    };
                    let countable =
                        self.preds.is_empty() && !ragged && self.loops.iter().all(|l| !l.ragged);
                    let bpi = if countable {
                        barriers_per_iter(body)
                    } else {
                        0
                    };
                    if bpi > 0 {
                        self.has_barrier = true;
                    }
                    self.loops.push(SiteLoop {
                        trip: trip.clone(),
                        max_trip,
                        ragged,
                    });
                    self.phase_coefs.push(bpi);
                    let saved = self.phase_base;
                    self.walk(body);
                    self.loops.pop();
                    self.phase_coefs.pop();
                    // A completed constant-trip loop advances the phase
                    // by its total barrier count.
                    self.phase_base = saved + bpi * const_trip(trip).unwrap_or(0) as i128;
                }
                Stmt::If {
                    pred,
                    then_body,
                    else_body,
                } => {
                    self.preds.push((pred.clone(), true));
                    self.walk(then_body);
                    self.preds.pop();
                    self.preds.push((pred.clone(), false));
                    self.walk(else_body);
                    self.preds.pop();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-site affine view: the index rewritten over (block, warp-in-block,
// lane, iterators), refined by the consumable predicates on the path.
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Geom {
    tpb: i128,
    ws: i128,
    wpb: i128,
    nb: i128,
}

impl Geom {
    /// Exclusive upper bound on lane values across the launch.
    fn lanes(&self) -> i128 {
        self.ws.min(self.tpb)
    }
}

struct AffView {
    /// Constant term (the raw affine base; warp/lane pins are folded in
    /// later, per pair).
    k: i128,
    /// Coefficient of the block id (`tid = b·tpb + w·ws + l` and
    /// `warp_global = b·wpb + w`, so the DSL's tid/warp/block
    /// coefficients decompose exactly over `(b, w, l)`).
    b: i128,
    /// Coefficient of the warp-in-block index.
    w: i128,
    /// Coefficient of the lane.
    l: i128,
    /// Coefficient per enclosing loop depth (dense).
    iters: Vec<i128>,
    /// Warp-in-block pinned by a consumed `TidMod` predicate.
    w_pin: Option<i128>,
    /// Lane range after consuming `LaneLt`/`TidMod` predicates.
    l_lo: i128,
    l_hi: i128,
    /// The site can execute at all (predicates satisfiable, trips > 0).
    reachable: bool,
    /// The refined index box stays inside `[0, elems)`: no wrapping.
    in_bounds: bool,
}

impl AffView {
    fn of(site: &Site, g: Geom, elems: i128) -> Option<AffView> {
        let IndexExpr::Affine {
            base,
            tid_coef,
            lane_coef,
            warp_coef,
            block_coef,
            iter_coefs,
        } = &site.index
        else {
            return None;
        };
        let mut iters = vec![0i128; site.loops.len()];
        for &(d, c) in iter_coefs {
            iters[d as usize] += c as i128;
        }
        let mut v = AffView {
            k: *base as i128,
            b: *tid_coef as i128 * g.tpb + *warp_coef as i128 * g.wpb + *block_coef as i128,
            w: *tid_coef as i128 * g.ws + *warp_coef as i128,
            l: *tid_coef as i128 + *lane_coef as i128,
            iters,
            w_pin: None,
            l_lo: 0,
            l_hi: g.lanes() - 1,
            reachable: site.loops.iter().all(|lp| lp.max_trip > 0),
            in_bounds: false,
        };
        let total = g.nb * g.tpb;
        for (pred, pol) in &site.preds {
            v.apply_pred(pred, *pol, g, total);
        }
        if v.l_lo > v.l_hi {
            v.reachable = false;
        }
        if v.reachable && elems > 0 {
            let mut iv = Interval::point(v.k)
                + Interval::new(0, g.nb - 1).scale(v.b)
                + match v.w_pin {
                    Some(p) => Interval::point(p),
                    None => Interval::new(0, g.wpb - 1),
                }
                .scale(v.w)
                + Interval::new(v.l_lo, v.l_hi).scale(v.l);
            for (d, &c) in v.iters.iter().enumerate() {
                let hi = site.loops[d].max_trip.saturating_sub(1) as i128;
                iv = iv + Interval::new(0, hi).scale(c);
            }
            v.in_bounds = iv.within(elems);
        }
        Some(v)
    }

    /// Consumes one `(pred, polarity)` step into the view's ranges when
    /// the predicate is expressible there; predicates that are not
    /// consumable are simply left for the concrete leaf validation (the
    /// box stays a sound superset of the reachable threads).
    fn apply_pred(&mut self, pred: &Pred, pol: bool, g: Geom, total: i128) {
        match *pred {
            Pred::LaneLt(n) => {
                let n = (n as i128).min(g.lanes());
                if pol {
                    self.l_hi = self.l_hi.min(n - 1);
                } else {
                    self.l_lo = self.l_lo.max(n);
                }
            }
            Pred::TidLt(n) => {
                let n = n as i128;
                if pol {
                    if n <= 0 {
                        self.reachable = false;
                    }
                    // n >= total is trivially true; mid-range predicates
                    // are left for concrete validation.
                } else if n >= total {
                    self.reachable = false;
                }
            }
            Pred::TidMod { m, r } => {
                let (m, r) = (m as i128, r as i128);
                if m == 0 {
                    // The executor evaluates a zero modulus as false.
                    if pol {
                        self.reachable = false;
                    }
                } else if m == 1 {
                    if (r == 0) != pol {
                        self.reachable = false;
                    }
                } else if pol && r >= m {
                    self.reachable = false;
                } else if pol && m == g.tpb {
                    // tid % tpb is exactly the thread-in-block index:
                    // pins both the warp and the lane.
                    let (wp, lp) = (r / g.ws, r % g.ws);
                    if self.w_pin.is_some_and(|p| p != wp) {
                        self.reachable = false;
                    }
                    self.w_pin = Some(wp);
                    if lp < self.l_lo || lp > self.l_hi {
                        self.reachable = false;
                    }
                    self.l_lo = lp;
                    self.l_hi = lp;
                } else if pol && m == g.ws && g.tpb % g.ws == 0 {
                    // Full-warp blocks: tid ≡ lane (mod warp size).
                    if r < self.l_lo || r > self.l_hi {
                        self.reachable = false;
                    }
                    self.l_lo = r;
                    self.l_hi = r;
                }
            }
            Pred::BlockMod { m, r } => {
                let (m, r) = (m as i128, r as i128);
                if m == 0 {
                    if pol {
                        self.reachable = false;
                    }
                } else if m == 1 {
                    if (r == 0) != pol {
                        self.reachable = false;
                    }
                } else if pol && r >= m {
                    self.reachable = false;
                }
            }
            Pred::Hashed { percent, .. } => {
                if percent == 0 {
                    if pol {
                        self.reachable = false;
                    }
                } else if percent >= 100 && !pol {
                    self.reachable = false;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pair-scope analysis.
// ---------------------------------------------------------------------

enum ScopeResult {
    Vacuous,
    Disjoint,
    Ordered,
    Potential(&'static str),
    Proven(Witness),
}

struct PairInput<'a> {
    g: Geom,
    sa: &'a Site,
    va: Option<&'a AffView>,
    sb: &'a Site,
    vb: Option<&'a AffView>,
    scope: RaceScope,
    elems: i128,
}

/// Abstract phase-difference check: true when no assignment of the two
/// sites' loop iterators can place them in the same barrier phase.
/// Exact for every kernel free of barrier-divergence errors, including
/// under unconsumed predicates: counted barriers are unconditional, so
/// the phase expression holds for *all* threads.
fn phase_ordered(sa: &Site, sb: &Site) -> bool {
    let mut ph = AbsVal::point(sa.phase_base - sb.phase_base);
    for (d, lp) in sa.loops.iter().enumerate() {
        ph = ph
            .add(AbsVal::range(0, lp.max_trip.saturating_sub(1) as i128).scale(sa.phase_coefs[d]));
    }
    for (d, lp) in sb.loops.iter().enumerate() {
        ph = ph
            .add(AbsVal::range(0, lp.max_trip.saturating_sub(1) as i128).scale(-sb.phase_coefs[d]));
    }
    ph.excludes_zero()
}

fn analyze_pair_scope(p: PairInput<'_>) -> ScopeResult {
    match p.scope {
        RaceScope::CrossWarpSameBlock if p.g.wpb < 2 => return ScopeResult::Vacuous,
        RaceScope::InterBlock if p.g.nb < 2 => return ScopeResult::Vacuous,
        _ => {}
    }
    let same_block = p.scope == RaceScope::CrossWarpSameBlock;
    let (Some(va), Some(vb)) = (p.va, p.vb) else {
        // Hashed index on at least one side: no element algebra, but the
        // barrier phases may still order the pair within a block.
        if same_block && phase_ordered(p.sa, p.sb) {
            return ScopeResult::Ordered;
        }
        return ScopeResult::Potential("irregular (hashed) index defeats disjointness reasoning");
    };
    if !va.reachable || !vb.reachable {
        return ScopeResult::Disjoint;
    }
    if same_block {
        if let (Some(pa), Some(pb)) = (va.w_pin, vb.w_pin) {
            if pa == pb {
                // Both sites pinned to one warp of each block: lock-step.
                return ScopeResult::Ordered;
            }
        }
    }
    if p.elems <= 0 || !va.in_bounds || !vb.in_bounds {
        if same_block && phase_ordered(p.sa, p.sb) {
            return ScopeResult::Ordered;
        }
        return ScopeResult::Potential("an index can leave the array and wrap");
    }
    solve_pair(&p, va, vb)
}

// ---------------------------------------------------------------------
// The symbolic difference over per-scope variables, its abstract
// evaluation, and the budgeted witness search.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Role {
    /// Common block id (same-block scope).
    SharedB,
    /// `b_a - b_b` when the block coefficients agree (inter-block).
    DeltaB,
    /// Independent block id of one side (inter-block, differing coefs).
    AbsB(usize),
    /// `w_a - w_b` when the warp coefficients agree and neither is pinned.
    DeltaW,
    /// Independent warp-in-block of one side.
    AbsW(usize),
    /// `l_a - l_b` when the lane coefficients and ranges agree.
    DeltaL,
    /// Independent lane of one side.
    AbsL(usize),
    /// Loop iterator `(side, depth)`.
    Iter(usize, usize),
}

#[derive(Clone, Copy)]
struct SVar {
    role: Role,
    /// Coefficient in the element-difference equation.
    coef: i128,
    lo: i128,
    hi: i128,
    /// The value 0 is excluded (distinctness deltas).
    nonzero: bool,
    /// Coefficient in the barrier-phase difference.
    phase_coef: i128,
    /// Reconstruction offset (shared lane lower bound for `DeltaL`).
    base: i128,
}

enum Stop {
    Found(Box<Witness>),
    Budget,
}

struct Witness {
    b_a: i128,
    w_a: i128,
    l_a: i128,
    it_a: Vec<u64>,
    b_b: i128,
    w_b: i128,
    l_b: i128,
    it_b: Vec<u64>,
    elem: i128,
    phase: Option<i128>,
}

impl Witness {
    fn describe(&self, array: &str) -> String {
        fn thread(b: i128, w: i128, l: i128, it: &[u64]) -> String {
            let mut s = format!("block {b} warp {w} lane {l}");
            if !it.is_empty() {
                s.push_str(&format!(" iters {it:?}"));
            }
            s
        }
        let mut s = format!(
            "{} and {} touch elem {} of '{}'",
            thread(self.b_a, self.w_a, self.l_a, &self.it_a),
            thread(self.b_b, self.w_b, self.l_b, &self.it_b),
            self.elem,
            array,
        );
        if let Some(p) = self.phase {
            s.push_str(&format!(" in barrier phase {p}"));
        }
        s
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

fn solve_pair(p: &PairInput<'_>, va: &AffView, vb: &AffView) -> ScopeResult {
    let g = p.g;
    let same_block = p.scope == RaceScope::CrossWarpSameBlock;
    let mut vars: Vec<SVar> = Vec::new();
    let mut k_diff = va.k - vb.k;
    let var = |role, coef, lo, hi, nonzero, phase_coef, base| SVar {
        role,
        coef,
        lo,
        hi,
        nonzero,
        phase_coef,
        base,
    };

    // Block coordinates.
    if same_block {
        vars.push(var(Role::SharedB, va.b - vb.b, 0, g.nb - 1, false, 0, 0));
    } else if va.b == vb.b {
        vars.push(var(Role::DeltaB, va.b, -(g.nb - 1), g.nb - 1, true, 0, 0));
    } else {
        vars.push(var(Role::AbsB(0), va.b, 0, g.nb - 1, false, 0, 0));
        vars.push(var(Role::AbsB(1), -vb.b, 0, g.nb - 1, false, 0, 0));
    }

    // Warp-in-block coordinates (pins fold into the constant).
    match (va.w_pin, vb.w_pin) {
        (Some(pa), Some(pb)) => k_diff += va.w * pa - vb.w * pb,
        (Some(pa), None) => {
            k_diff += va.w * pa;
            vars.push(var(Role::AbsW(1), -vb.w, 0, g.wpb - 1, false, 0, 0));
        }
        (None, Some(pb)) => {
            k_diff -= vb.w * pb;
            vars.push(var(Role::AbsW(0), va.w, 0, g.wpb - 1, false, 0, 0));
        }
        (None, None) => {
            if va.w == vb.w {
                vars.push(var(
                    Role::DeltaW,
                    va.w,
                    -(g.wpb - 1),
                    g.wpb - 1,
                    same_block,
                    0,
                    0,
                ));
            } else {
                vars.push(var(Role::AbsW(0), va.w, 0, g.wpb - 1, false, 0, 0));
                vars.push(var(Role::AbsW(1), -vb.w, 0, g.wpb - 1, false, 0, 0));
            }
        }
    }

    // Lanes.
    if va.l == vb.l && va.l_lo == vb.l_lo && va.l_hi == vb.l_hi {
        let span = va.l_hi - va.l_lo;
        vars.push(var(Role::DeltaL, va.l, -span, span, false, 0, va.l_lo));
    } else {
        vars.push(var(Role::AbsL(0), va.l, va.l_lo, va.l_hi, false, 0, 0));
        vars.push(var(Role::AbsL(1), -vb.l, vb.l_lo, vb.l_hi, false, 0, 0));
    }

    // Loop iterators, one per side and depth.
    for (d, lp) in p.sa.loops.iter().enumerate() {
        vars.push(var(
            Role::Iter(0, d),
            va.iters[d],
            0,
            lp.max_trip.saturating_sub(1) as i128,
            false,
            p.sa.phase_coefs[d],
            0,
        ));
    }
    for (d, lp) in p.sb.loops.iter().enumerate() {
        vars.push(var(
            Role::Iter(1, d),
            -vb.iters[d],
            0,
            lp.max_trip.saturating_sub(1) as i128,
            false,
            -p.sb.phase_coefs[d],
            0,
        ));
    }

    // Step 1: abstract disjointness in the interval × congruence product.
    // A distinctness delta splits into its positive and negative branch
    // (both must exclude zero); the congruence component is what decides
    // per-lane strided patterns.
    let eval = |restrict: Option<(usize, i128, i128)>| -> AbsVal {
        let mut acc = AbsVal::point(k_diff);
        for (i, v) in vars.iter().enumerate() {
            let (lo, hi) = match restrict {
                Some((ri, rlo, rhi)) if ri == i => (rlo, rhi),
                _ => (v.lo, v.hi),
            };
            acc = acc.add(AbsVal::range(lo, hi).scale(v.coef));
        }
        acc
    };
    let abstractly_disjoint = match vars.iter().position(|v| v.nonzero && v.coef != 0) {
        Some(i) => {
            let v = vars[i];
            (v.hi < 1 || eval(Some((i, 1, v.hi))).excludes_zero())
                && (v.lo > -1 || eval(Some((i, v.lo, -1))).excludes_zero())
        }
        None => eval(None).excludes_zero(),
    };
    if abstractly_disjoint {
        return ScopeResult::Disjoint;
    }

    // Step 2: abstract phase ordering (same-block only).
    if same_block && phase_ordered(p.sa, p.sb) {
        return ScopeResult::Ordered;
    }

    // Step 3: budgeted witness search. The widest variable with a
    // nonzero coefficient is solved analytically; the rest of the
    // constrained variables are enumerated smallest-domain-first with
    // interval and divisibility pruning on suffix contributions.
    let check_phase = same_block;
    let analytic = vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.coef != 0)
        .max_by_key(|(_, v)| v.hi - v.lo)
        .map(|(i, _)| i);
    let mut order: Vec<usize> = (0..vars.len())
        .filter(|&i| {
            Some(i) != analytic && (vars[i].coef != 0 || (check_phase && vars[i].phase_coef != 0))
        })
        .collect();
    order.sort_by_key(|&i| vars[i].hi - vars[i].lo);

    let n = order.len();
    let mut suffix_lo = vec![0i128; n + 1];
    let mut suffix_hi = vec![0i128; n + 1];
    let mut suffix_gcd = vec![0i128; n + 1];
    if let Some(ai) = analytic {
        let v = &vars[ai];
        let (a, b) = (v.coef * v.lo, v.coef * v.hi);
        suffix_lo[n] = a.min(b);
        suffix_hi[n] = a.max(b);
        suffix_gcd[n] = v.coef.abs();
    }
    for d in (0..n).rev() {
        let v = &vars[order[d]];
        let (a, b) = (v.coef * v.lo, v.coef * v.hi);
        suffix_lo[d] = suffix_lo[d + 1] + a.min(b);
        suffix_hi[d] = suffix_hi[d + 1] + a.max(b);
        suffix_gcd[d] = gcd(suffix_gcd[d + 1], v.coef.abs());
    }

    // Canonical defaults for unenumerated variables: the minimal valid
    // representative (1 for distinctness deltas — their domains reach 1
    // by the scope guards — otherwise 0 clamped into range).
    let assign: Vec<i128> = vars
        .iter()
        .map(|v| {
            if v.nonzero {
                1
            } else {
                0i128.clamp(v.lo, v.hi)
            }
        })
        .collect();
    let free_w = vars.iter().find_map(|v| match v.role {
        Role::AbsW(s) if v.coef == 0 => Some(s),
        _ => None,
    });
    let free_b = vars.iter().find_map(|v| match v.role {
        Role::AbsB(s) if v.coef == 0 => Some(s),
        _ => None,
    });
    let phase_const = p.sa.phase_base - p.sb.phase_base;

    let mut solver = Solver {
        g,
        sa: p.sa,
        va,
        sb: p.sb,
        vb,
        scope: p.scope,
        elems: p.elems,
        vars,
        assign,
        order,
        analytic,
        suffix_lo,
        suffix_hi,
        suffix_gcd,
        phase_const,
        check_phase,
        free_w,
        free_b,
        budget: SEARCH_BUDGET,
        saw_ordered: false,
        inexact_fail: false,
    };
    match solver.dfs(0, k_diff) {
        Err(Stop::Found(w)) => ScopeResult::Proven(*w),
        Err(Stop::Budget) => ScopeResult::Potential("witness search budget exhausted"),
        Ok(()) => {
            if solver.inexact_fail {
                ScopeResult::Potential(
                    "per-thread predicates or ragged trip counts defeat the search",
                )
            } else if solver.saw_ordered {
                ScopeResult::Ordered
            } else {
                ScopeResult::Disjoint
            }
        }
    }
}

struct Solver<'a> {
    g: Geom,
    sa: &'a Site,
    va: &'a AffView,
    sb: &'a Site,
    vb: &'a AffView,
    scope: RaceScope,
    elems: i128,
    vars: Vec<SVar>,
    assign: Vec<i128>,
    order: Vec<usize>,
    analytic: Option<usize>,
    suffix_lo: Vec<i128>,
    suffix_hi: Vec<i128>,
    suffix_gcd: Vec<i128>,
    phase_const: i128,
    check_phase: bool,
    free_w: Option<usize>,
    free_b: Option<usize>,
    budget: u64,
    /// Some element-colliding candidate was excluded purely by the
    /// barrier-phase constraint.
    saw_ordered: bool,
    /// Some candidate was rejected only by a check the variable encoding
    /// is not exact for (unconsumed predicates, ragged trips).
    inexact_fail: bool,
}

impl Solver<'_> {
    fn dfs(&mut self, d: usize, partial: i128) -> Result<(), Stop> {
        if d == self.order.len() {
            return self.finish(partial);
        }
        let vi = self.order[d];
        let v = self.vars[vi];
        let mut idx = 0u64;
        while let Some(x) = ordered_value(v.lo, v.hi, v.nonzero, idx) {
            idx += 1;
            if self.budget == 0 {
                return Err(Stop::Budget);
            }
            self.budget -= 1;
            let p2 = partial + v.coef * x;
            if p2 + self.suffix_lo[d + 1] > 0 || p2 + self.suffix_hi[d + 1] < 0 {
                continue;
            }
            let sg = self.suffix_gcd[d + 1];
            if (sg == 0 && p2 != 0) || (sg > 0 && p2 % sg != 0) {
                continue;
            }
            self.assign[vi] = x;
            self.dfs(d + 1, p2)?;
        }
        Ok(())
    }

    fn finish(&mut self, partial: i128) -> Result<(), Stop> {
        if let Some(ai) = self.analytic {
            let v = self.vars[ai];
            let target = -partial;
            if target % v.coef != 0 {
                return Ok(());
            }
            let x = target / v.coef;
            if x < v.lo || x > v.hi || (v.nonzero && x == 0) {
                return Ok(());
            }
            self.assign[ai] = x;
        } else if partial != 0 {
            return Ok(());
        }
        if self.check_phase {
            let ph = self.phase_const
                + self
                    .vars
                    .iter()
                    .zip(&self.assign)
                    .map(|(v, &x)| v.phase_coef * x)
                    .sum::<i128>();
            if ph != 0 {
                // Element collision, but barrier-separated.
                self.saw_ordered = true;
                return Ok(());
            }
        }
        self.validate()
    }

    /// Reconstructs minimal concrete coordinates from the assignment and
    /// validates them against everything the variable encoding abstracts
    /// away. The reconstruction is minimal in every component
    /// simultaneously, and thread-existence (`w·ws + l < tpb`) is
    /// anti-monotone in upward shifts — so a rejection here holds for
    /// *every* representative of the assignment and counts as algebraic.
    fn validate(&mut self) -> Result<(), Stop> {
        let g = self.g;
        let (mut b_a, mut b_b) = (0i128, 0i128);
        let mut w_a = self.va.w_pin.unwrap_or(0);
        let mut w_b = self.vb.w_pin.unwrap_or(0);
        let (mut l_a, mut l_b) = (self.va.l_lo, self.vb.l_lo);
        let mut it_a = vec![0i128; self.sa.loops.len()];
        let mut it_b = vec![0i128; self.sb.loops.len()];
        for (v, &x) in self.vars.iter().zip(&self.assign) {
            match v.role {
                Role::SharedB => {
                    b_a = x;
                    b_b = x;
                }
                Role::DeltaB => {
                    b_b = (-x).max(0);
                    b_a = b_b + x;
                }
                Role::AbsB(0) => b_a = x,
                Role::AbsB(_) => b_b = x,
                Role::DeltaW => {
                    w_b = (-x).max(0);
                    w_a = w_b + x;
                }
                Role::AbsW(0) => w_a = x,
                Role::AbsW(_) => w_b = x,
                Role::DeltaL => {
                    l_b = v.base + (-x).max(0);
                    l_a = l_b + x;
                }
                Role::AbsL(0) => l_a = x,
                Role::AbsL(_) => l_b = x,
                Role::Iter(0, d) => it_a[d] = x,
                Role::Iter(_, d) => it_b[d] = x,
            }
        }
        // Distinctness. A coordinate whose coefficient is 0 on one side
        // is free: pick any value different from the other side's.
        match self.scope {
            RaceScope::CrossWarpSameBlock => {
                if w_a == w_b {
                    match self.free_w {
                        Some(0) => w_a = if w_b == 0 { 1 } else { 0 },
                        Some(_) => w_b = if w_a == 0 { 1 } else { 0 },
                        None => return Ok(()),
                    }
                }
            }
            RaceScope::InterBlock => {
                if b_a == b_b {
                    match self.free_b {
                        Some(0) => b_a = if b_b == 0 { 1 } else { 0 },
                        Some(_) => b_b = if b_a == 0 { 1 } else { 0 },
                        None => return Ok(()),
                    }
                }
            }
        }
        // Thread existence in a possibly partial last warp.
        if w_a * g.ws + l_a >= g.tpb || w_b * g.ws + l_b >= g.tpb {
            return Ok(());
        }
        // Concrete validation of everything not consumed into ranges:
        // path predicates and per-thread trip counts.
        let it_a_u: Vec<u64> = it_a.iter().map(|&x| x as u64).collect();
        let it_b_u: Vec<u64> = it_b.iter().map(|&x| x as u64).collect();
        for (site, b, w, l, its) in [
            (self.sa, b_a, w_a, l_a, &it_a_u),
            (self.sb, b_b, w_b, l_b, &it_b_u),
        ] {
            let tid = (b * g.tpb + w * g.ws + l) as u64;
            let ctx = EvalCtx {
                tid,
                lane: l as u32,
                warp: (b * g.wpb + w) as u32,
                block: b as u32,
                iters: its,
            };
            for (pred, pol) in &site.preds {
                if pred.eval(&ctx) != *pol {
                    self.inexact_fail = true;
                    return Ok(());
                }
            }
            for (d, lp) in site.loops.iter().enumerate() {
                if its[d] >= lp.trip.count_for(tid) as u64 {
                    self.inexact_fail = true;
                    return Ok(());
                }
            }
        }
        let elem_of = |v: &AffView, b: i128, w: i128, l: i128, it: &[i128]| {
            v.k + v.b * b
                + v.w * w
                + v.l * l
                + v.iters.iter().zip(it).map(|(&c, &x)| c * x).sum::<i128>()
        };
        let elem = elem_of(self.va, b_a, w_a, l_a, &it_a);
        debug_assert_eq!(elem, elem_of(self.vb, b_b, w_b, l_b, &it_b));
        debug_assert!(elem >= 0 && elem < self.elems);
        let phase = if self.check_phase {
            Some(
                self.sa.phase_base
                    + self
                        .sa
                        .phase_coefs
                        .iter()
                        .zip(&it_a)
                        .map(|(&c, &x)| c * x)
                        .sum::<i128>(),
            )
        } else {
            None
        };
        Err(Stop::Found(Box::new(Witness {
            b_a,
            w_a,
            l_a,
            it_a: it_a_u,
            b_b,
            w_b,
            l_b,
            it_b: it_b_u,
            elem,
            phase,
        })))
    }
}

/// The `idx`-th value of `[lo, hi]` (minus 0 when `nonzero`) in
/// magnitude-ascending order: 0, 1, -1, 2, -2, ... — small deltas are by
/// far the most likely witnesses, and trying them first keeps proven
/// races cheap.
fn ordered_value(lo: i128, hi: i128, nonzero: bool, idx: u64) -> Option<i128> {
    if lo > hi {
        return None;
    }
    let idx = idx as i128;
    if lo >= 0 {
        let start = if nonzero && lo == 0 { 1 } else { lo };
        let v = start + idx;
        return (v <= hi).then_some(v);
    }
    if hi <= 0 {
        let start = if nonzero && hi == 0 { -1 } else { hi };
        let v = start - idx;
        return (v >= lo).then_some(v);
    }
    let mut i = idx;
    if !nonzero {
        if i == 0 {
            return Some(0);
        }
        i -= 1;
    }
    let both = hi.min(-lo);
    if i < 2 * both {
        let m = i / 2 + 1;
        return Some(if i % 2 == 0 { m } else { -m });
    }
    i -= 2 * both;
    if hi > -lo {
        let v = both + 1 + i;
        (v <= hi).then_some(v)
    } else {
        let v = -(both + 1 + i);
        (v >= lo).then_some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmap_gpu::kernel::{dsl, KernelBuilder};
    use gmap_gpu::race::dynamic_races;
    use gmap_gpu::workloads::{self, Scale};
    use gmap_trace::record::Pc;

    fn kinds(a: &RaceAnalysis) -> Vec<FindingKind> {
        a.findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn ordered_value_enumerates_magnitude_ascending() {
        let seq: Vec<i128> = (0..7)
            .map_while(|i| ordered_value(-3, 3, false, i))
            .collect();
        assert_eq!(seq, vec![0, 1, -1, 2, -2, 3, -3]);
        let nz: Vec<i128> = (0..6)
            .map_while(|i| ordered_value(-3, 2, true, i))
            .collect();
        assert_eq!(nz, vec![1, -1, 2, -2, -3]);
        let one_sided: Vec<i128> = (0..3)
            .map_while(|i| ordered_value(1, 3, false, i))
            .collect();
        assert_eq!(one_sided, vec![1, 2, 3]);
        assert_eq!(ordered_value(0, 0, true, 0), None);
    }

    #[test]
    fn tid_linear_write_is_certified() {
        let k = KernelBuilder::new("clean", 2u32, 64u32)
            .array("a", 128)
            .write(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
            .build()
            .expect("valid");
        let a = analyze_races(&k, 32);
        assert!(a.certified, "pairs: {:?}", a.pairs);
        assert!(a.findings.is_empty());
        assert_eq!(a.pairs.len(), 1);
        assert_eq!(a.pairs[0].same_block, PairVerdict::Disjoint);
        assert_eq!(a.pairs[0].inter_block, PairVerdict::Disjoint);
    }

    #[test]
    fn strided_parity_needs_the_congruence_domain() {
        // A[2·tid] and A[2·tid + 1]: the interval of the difference
        // straddles zero, only the parity argument separates them.
        let k = KernelBuilder::new("parity", 2u32, 64u32)
            .array("a", 256)
            .write(Pc(0x10), 0, IndexExpr::tid_linear(0, 2))
            .write(Pc(0x20), 0, IndexExpr::tid_linear(1, 2))
            .build()
            .expect("valid");
        let a = analyze_races(&k, 32);
        assert!(a.certified, "pairs: {:?}", a.pairs);
        let cross = a
            .pairs
            .iter()
            .find(|p| p.pc_a == 0x10 && p.pc_b == 0x20)
            .expect("cross pair");
        assert_eq!(cross.same_block, PairVerdict::Disjoint);
        assert_eq!(cross.inter_block, PairVerdict::Disjoint);
    }

    #[test]
    fn whole_block_writing_one_element_is_a_warning_without_barriers() {
        let k = KernelBuilder::new("hot", 1u32, 64u32)
            .array("a", 4)
            .write(Pc(0x10), 0, IndexExpr::tid_linear(0, 0))
            .build()
            .expect("valid");
        let a = analyze_races(&k, 32);
        assert!(!a.certified);
        assert_eq!(a.pairs[0].same_block, PairVerdict::Proven);
        assert_eq!(a.pairs[0].inter_block, PairVerdict::Vacuous);
        assert!(a.pairs[0].witness.is_some());
        assert_eq!(kinds(&a), vec![FindingKind::RaceWriteWrite]);
        assert_eq!(a.findings[0].severity, Severity::Warning);
        assert!(a.findings[0].message.contains("no barrier phases"));
    }

    #[test]
    fn barrier_orders_within_block_and_races_across_blocks() {
        // Phase 0 writes a[tid - 64·block] (block-local slot), phase 1
        // reads it back: within a block cross-warp pairs touch distinct
        // slots, but block 1 writes the same 64 elements as block 0 and
        // no barrier spans the grid.
        let idx = IndexExpr::Affine {
            base: 0,
            tid_coef: 1,
            lane_coef: 0,
            warp_coef: 0,
            block_coef: -64,
            iter_coefs: vec![],
        };
        let k = KernelBuilder::new("phased", 2u32, 64u32)
            .array("a", 64)
            .write(Pc(0x10), 0, idx.clone())
            .stmt(Stmt::Sync)
            .read(Pc(0x20), 0, idx)
            .build()
            .expect("valid");
        let a = analyze_races(&k, 32);
        assert!(!a.certified);
        assert_eq!(a.pairs.len(), 2);
        let ww = &a.pairs[0];
        assert_eq!((ww.pc_a, ww.pc_b), (0x10, 0x10));
        assert_eq!(ww.same_block, PairVerdict::Disjoint);
        assert_eq!(ww.inter_block, PairVerdict::Proven);
        let rw = &a.pairs[1];
        assert_eq!((rw.pc_a, rw.pc_b), (0x10, 0x20));
        assert_eq!(rw.same_block, PairVerdict::Disjoint);
        assert_eq!(rw.inter_block, PairVerdict::Proven);
        // The kernel declares a barrier, so proven races are errors.
        assert!(a.findings.iter().all(|f| f.severity == Severity::Error));
        assert!(kinds(&a).contains(&FindingKind::RaceWriteWrite));
        assert!(kinds(&a).contains(&FindingKind::RaceReadWrite));
        // Differential agreement with the dynamic checker: every dynamic
        // race maps to a statically proven pair.
        let dyn_races = dynamic_races(&k, &gmap_gpu::exec::execute_kernel(&k), 64);
        assert!(!dyn_races.is_empty());
        for r in &dyn_races {
            assert_eq!(r.scope, RaceScope::InterBlock);
            assert!(
                a.pairs
                    .iter()
                    .any(|p| (p.pc_a, p.pc_b) == (r.pc_lo, r.pc_hi)
                        && p.inter_block == PairVerdict::Proven),
                "dynamic race {r:?} has no static counterpart"
            );
        }
    }

    #[test]
    fn barriers_inside_loops_order_cross_iteration_conflicts() {
        // Each iteration writes a[tid + 32·i] after a barrier: the only
        // cross-thread collisions pair different iterations, which the
        // per-iteration barrier separates.
        let k = KernelBuilder::new("loop-phased", 1u32, 64u32)
            .array("a", 128)
            .stmt(dsl::loop_n(
                2,
                vec![
                    Stmt::Sync,
                    dsl::write(0x10, 0, dsl::affine(0, 1, vec![(0, 32)])),
                ],
            ))
            .build()
            .expect("valid");
        let a = analyze_races(&k, 32);
        assert_eq!(a.pairs[0].same_block, PairVerdict::Ordered);
        assert_eq!(a.pairs[0].inter_block, PairVerdict::Vacuous);
        assert!(a.certified, "pairs: {:?}", a.pairs);
        // The dynamic oracle agrees that the barrier discipline holds.
        let dyn_races = dynamic_races(&k, &gmap_gpu::exec::execute_kernel(&k), 64);
        assert!(dyn_races.is_empty(), "unexpected: {dyn_races:?}");
    }

    #[test]
    fn pred_pinned_sites_share_one_warp_and_are_ordered() {
        // tid % 64 == 0 and tid % 64 == 1 both pin warp 0 of each block:
        // intra-warp lock-step, never a race.
        let k = KernelBuilder::new("pinned", 1u32, 64u32)
            .array("a", 4)
            .stmt(Stmt::If {
                pred: Pred::TidMod { m: 64, r: 0 },
                then_body: vec![dsl::write(0x10, 0, IndexExpr::tid_linear(0, 0))],
                else_body: vec![],
            })
            .stmt(Stmt::If {
                pred: Pred::TidMod { m: 64, r: 1 },
                then_body: vec![dsl::write(0x20, 0, IndexExpr::tid_linear(0, 0))],
                else_body: vec![],
            })
            .build()
            .expect("valid");
        let a = analyze_races(&k, 32);
        assert!(a.certified, "pairs: {:?}", a.pairs);
        assert!(
            a.pairs
                .iter()
                .all(|p| p.same_block == PairVerdict::Ordered
                    && p.inter_block == PairVerdict::Vacuous)
        );
    }

    #[test]
    fn hashed_writes_are_potential_not_proven() {
        let k = KernelBuilder::new("scatter", 2u32, 64u32)
            .array("a", 1024)
            .write(Pc(0x10), 0, IndexExpr::Hashed { seed: 7 })
            .build()
            .expect("valid");
        let a = analyze_races(&k, 32);
        assert!(!a.certified);
        assert_eq!(a.pairs[0].same_block, PairVerdict::Potential);
        assert_eq!(a.pairs[0].inter_block, PairVerdict::Potential);
        assert!(a
            .findings
            .iter()
            .all(|f| f.kind == FindingKind::RacePotential && f.severity == Severity::Warning));
    }

    #[test]
    fn matrixmul_builtin_is_certified_race_free() {
        // The one builtin that uses barriers: reads of the input tiles
        // are read-only, the output write is tid-linear.
        let k = workloads::matrixmul(Scale::Tiny);
        let a = analyze_races(&k, 32);
        assert!(a.certified, "pairs: {:?}", a.pairs);
        assert!(a.findings.is_empty(), "findings: {:?}", a.findings);
    }
}
