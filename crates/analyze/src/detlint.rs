//! The workspace determinism lint.
//!
//! G-MAP's headline property is bit-reproducibility: the same spec and
//! seed must produce the same profile, clone and simulation result on
//! every run (`gmap-serve` hashes canonical specs into cache keys, and
//! the sweep engine dedups work by those keys). Iterating a `HashMap` or
//! `HashSet` breaks that silently — `RandomState` gives a fresh order
//! per process — so this lint scans the simulation crates and fails on
//! any *iteration* over a hash-ordered container unless the site is
//! allowlisted with a justification (e.g. the code sorts the keys before
//! use, or folds with an order-insensitive operation).
//!
//! The lint is a text heuristic, not a type checker: it tracks
//! identifiers bound with a `HashMap`/`HashSet` type annotation (both
//! `let` bindings and struct fields) per file and flags `for .. in`,
//! `.iter()`, `.keys()`, `.values()`, `.drain()` and friends applied to
//! them. `#[cfg(test)]` modules are exempt — test assertions routinely
//! iterate maps, and tests compare against sorted/summed views anyway.

use std::fmt;
use std::path::Path;

/// Iteration-producing method names that expose hash order.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// One allowlisted iteration site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// File the binding lives in (path suffix match, `/`-separated).
    pub file: String,
    /// The binding (variable or field) name.
    pub binding: String,
    /// Why the iteration is order-insensitive.
    pub justification: String,
}

/// One flagged iteration over a hash-ordered container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Label of the offending file (path as given to the linter).
    pub file: String,
    /// 1-based line of the iteration.
    pub line: usize,
    /// The binding that is iterated.
    pub binding: String,
    /// The offending source line, trimmed.
    pub source: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: iteration over hash-ordered `{}` ({}) — order is nondeterministic; \
             sort first, use BTreeMap/BTreeSet, or allowlist with a justification",
            self.file, self.line, self.binding, self.source
        )
    }
}

/// Parses the allowlist format: one `path/suffix.rs:binding  justification`
/// entry per line; `#` comments and blank lines are skipped.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((site, justification)) = line.split_once(char::is_whitespace) else {
            continue;
        };
        let Some((file, binding)) = site.split_once(':') else {
            continue;
        };
        out.push(AllowEntry {
            file: file.to_string(),
            binding: binding.to_string(),
            justification: justification.trim().to_string(),
        });
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds `needle` in `hay` at an identifier boundary (not inside a longer
/// identifier) and returns the byte offset of the first such occurrence.
fn find_ident(hay: &str, needle: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_char(hay[..at].chars().next_back().unwrap_or(' '));
        let after = hay[at + needle.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            return Some(at);
        }
        start = at + needle.len().max(1);
    }
    None
}

/// Collects identifiers bound with a `HashMap`/`HashSet` type in `source`:
/// `let name: HashMap<..> = ..`, `let mut name: HashSet<..>`, struct
/// fields `name: HashMap<..>,`, and `let name = HashMap::new()` /
/// `HashSet::with_capacity(..)` initializer forms.
fn hash_bindings(source: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for line in strip_comments(source) {
        let line = line.trim();
        if !(line.contains("HashMap") || line.contains("HashSet")) {
            continue;
        }
        // `let [mut] name: Hash… = …` or `let [mut] name = Hash…::new()`.
        let name = if let Some(rest) = line.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            rest.split(|c: char| !is_ident_char(c)).next()
        } else if let Some(colon) = line.find(": Hash") {
            // Struct field or function parameter: `name: HashMap<…>`.
            line[..colon].rsplit(|c: char| !is_ident_char(c)).next()
        } else {
            None
        };
        if let Some(name) = name {
            if !name.is_empty() && !out.iter().any(|n| n == name) {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// Yields the non-comment portion of each source line.
fn strip_comments(source: &str) -> impl Iterator<Item = &str> {
    source.lines().map(|l| {
        let code = l.split("//").next().unwrap_or(l);
        code
    })
}

/// Lints one file's source text. `label` is used in findings; `allow`
/// suppresses matching `(file-suffix, binding)` pairs.
pub fn lint_source(label: &str, source: &str, allow: &[AllowEntry]) -> Vec<LintFinding> {
    let bindings = hash_bindings(source);
    let raws: Vec<&str> = source.lines().collect();
    let codes: Vec<&str> = raws
        .iter()
        .map(|l| l.split("//").next().unwrap_or(l))
        .collect();
    let mut findings = Vec::new();
    let mut in_tests = false;
    let mut brace_depth_at_tests = 0usize;
    let mut depth = 0usize;
    for (idx, &raw) in raws.iter().enumerate() {
        let code = codes[idx];
        if !in_tests && code.trim_start().starts_with("#[cfg(test)]") {
            in_tests = true;
            brace_depth_at_tests = depth;
        }
        depth += code.matches('{').count();
        depth = depth.saturating_sub(code.matches('}').count());
        if in_tests {
            // The test module ends when the brace depth returns to where
            // the attribute appeared (after at least one open brace).
            if depth <= brace_depth_at_tests && code.contains('}') {
                in_tests = false;
            }
            continue;
        }
        for binding in &bindings {
            // Line-broken chains — `… = binding` / `    .iter()…` — put
            // the receiver and the call on different lines.
            let chained = ends_with_binding(code, binding)
                && codes
                    .get(idx + 1)
                    .is_some_and(|n| starts_with_iter_method(n));
            if !iterates_binding(code, binding) && !chained {
                continue;
            }
            let allowed = allow
                .iter()
                .any(|a| a.binding == *binding && (label.ends_with(&a.file) || a.file == "*"));
            if !allowed {
                findings.push(LintFinding {
                    file: label.to_string(),
                    line: idx + 1,
                    binding: binding.clone(),
                    source: raw.trim().to_string(),
                });
            }
        }
    }
    findings
}

/// Whether `code` ends with `binding` at an identifier boundary — the
/// receiver half of a line-broken method chain.
fn ends_with_binding(code: &str, binding: &str) -> bool {
    let t = code.trim_end();
    if !t.ends_with(binding) {
        return false;
    }
    let at = t.len() - binding.len();
    at == 0 || !is_ident_char(t[..at].chars().next_back().unwrap_or(' '))
}

/// Whether `code` begins (modulo indentation) with `.<iter-method>(` —
/// the call half of a line-broken method chain.
fn starts_with_iter_method(code: &str) -> bool {
    let Some(rest) = code.trim_start().strip_prefix('.') else {
        return false;
    };
    let method: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
    ITER_METHODS.contains(&method.as_str()) && rest[method.len()..].starts_with('(')
}

/// Whether `code` iterates `binding`'s hash order: `for … in [&[mut]] b`
/// (optionally `b.iter()`-style) or `b.<iter-method>()`.
fn iterates_binding(code: &str, binding: &str) -> bool {
    let Some(at) = find_ident(code, binding) else {
        return false;
    };
    // Method-call forms: `binding.iter()`, `binding.keys()` …
    let after = &code[at + binding.len()..];
    if let Some(rest) = after.strip_prefix('.') {
        let method: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        if ITER_METHODS.contains(&method.as_str()) && rest[method.len()..].starts_with('(') {
            return true;
        }
    }
    // `for (k, v) in &binding {` / `for x in self.binding {` — the
    // iterated expression (up to the body brace) ends in the binding.
    if let Some(in_pos) = code.find(" in ") {
        if at > in_pos {
            let mut expr = code[in_pos + 4..].trim();
            if let Some(brace) = expr.find('{') {
                expr = expr[..brace].trim();
            }
            let expr = expr
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .trim();
            if expr == binding || expr.ends_with(&format!(".{binding}")) {
                return true;
            }
        }
    }
    false
}

/// Lints every `.rs` file under each workspace-relative directory (e.g.
/// `crates/core/src`, or the binary's own `src`).
///
/// # Errors
///
/// Returns `Err` with a description when a directory cannot be read.
pub fn lint_dirs(
    workspace_root: &Path,
    dirs: &[&str],
    allow: &[AllowEntry],
) -> Result<Vec<LintFinding>, String> {
    let mut findings = Vec::new();
    for dir in dirs {
        let src = workspace_root.join(dir);
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)
            .map_err(|e| format!("reading {}: {e}", src.display()))?;
        files.sort();
        for path in files {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let label = path
                .strip_prefix(workspace_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            findings.extend(lint_source(&label, &text, allow));
        }
    }
    Ok(findings)
}

/// Lints every `.rs` file under `src/` of each listed crate directory.
///
/// # Errors
///
/// Returns `Err` with a description when a directory cannot be read.
pub fn lint_crates(
    workspace_root: &Path,
    crate_dirs: &[&str],
    allow: &[AllowEntry],
) -> Result<Vec<LintFinding>, String> {
    let dirs: Vec<String> = crate_dirs
        .iter()
        .map(|d| format!("crates/{d}/src"))
        .collect();
    let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
    lint_dirs(workspace_root, &dir_refs, allow)
}

/// Allowlist entries that no longer suppress anything.
///
/// `findings` must come from a lint run with an **empty** allowlist — the
/// ground truth of what the lint currently flags. An entry is stale when
/// no finding matches its `(file, binding)` pair: the site was fixed,
/// renamed, or moved, and the entry has rotted into a blanket permission
/// for whatever next reuses the name. Stale entries should be deleted.
pub fn stale_entries(findings: &[LintFinding], allow: &[AllowEntry]) -> Vec<AllowEntry> {
    allow
        .iter()
        .filter(|a| {
            !findings
                .iter()
                .any(|f| f.binding == a.binding && (f.file.ends_with(&a.file) || a.file == "*"))
        })
        .cloned()
        .collect()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLAGGED: &str = r#"
use std::collections::HashMap;
fn f() {
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for (k, v) in &counts {
        println!("{k} {v}");
    }
    let total: u64 = counts.values().sum();
}
"#;

    #[test]
    fn flags_iteration_over_hashmap() {
        let findings = lint_source("crates/x/src/lib.rs", FLAGGED, &[]);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].binding, "counts");
        assert_eq!(findings[0].line, 5);
        assert_eq!(findings[1].line, 8);
    }

    #[test]
    fn allowlist_suppresses_by_file_and_binding() {
        let allow =
            parse_allowlist("# comment\ncrates/x/src/lib.rs:counts  keys are sorted before use\n");
        assert_eq!(allow.len(), 1);
        assert!(allow[0].justification.contains("sorted"));
        let findings = lint_source("crates/x/src/lib.rs", FLAGGED, &allow);
        assert!(findings.is_empty(), "{findings:?}");
        // A different file with the same binding is still flagged.
        let other = lint_source("crates/y/src/lib.rs", FLAGGED, &allow);
        assert_eq!(other.len(), 2);
    }

    #[test]
    fn non_iterating_uses_are_fine() {
        let src = r#"
fn f() {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(1);
    let n = seen.len();
    if seen.contains(&1) {}
}
"#;
        assert!(lint_source("a.rs", src, &[]).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = r#"
fn real() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        for x in m.keys() {}
    }
}
"#;
        assert!(lint_source("a.rs", src, &[]).is_empty());
    }

    #[test]
    fn struct_fields_are_tracked() {
        let src = r#"
struct S {
    by_slot: HashMap<usize, Vec<usize>>,
}
fn f(s: &S) {
    for (k, v) in &s.by_slot {
    }
}
"#;
        let findings = lint_source("a.rs", src, &[]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].binding, "by_slot");
    }

    #[test]
    fn comments_do_not_flag() {
        let src = r#"
fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    // for x in m.keys() {} — documented, not executed
    let _ = m.len();
}
"#;
        assert!(lint_source("a.rs", src, &[]).is_empty());
    }

    #[test]
    fn line_broken_method_chains_are_flagged() {
        // rustfmt routinely splits `receiver.method()` across lines; the
        // receiver line carries the finding.
        let src = r#"
fn f() {
    let mut votes: HashMap<u64, u32> = HashMap::new();
    let best = votes
        .iter()
        .max_by_key(|(k, &c)| (c, std::cmp::Reverse(*k)));
    let fine = votes.len();
}
"#;
        let findings = lint_source("a.rs", src, &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].binding, "votes");
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn stale_entries_are_those_suppressing_nothing() {
        // Ground truth: lint with an empty allowlist.
        let findings = lint_source("crates/x/src/lib.rs", FLAGGED, &[]);
        assert!(!findings.is_empty());
        let allow = parse_allowlist(
            "crates/x/src/lib.rs:counts  summed, order-free\n\
             crates/x/src/lib.rs:gone  binding was renamed away\n\
             crates/y/src/lib.rs:counts  same name, wrong file\n",
        );
        let stale = stale_entries(&findings, &allow);
        assert_eq!(stale.len(), 2, "{stale:?}");
        assert!(stale.iter().any(|e| e.binding == "gone"));
        assert!(stale
            .iter()
            .any(|e| e.file == "crates/y/src/lib.rs" && e.binding == "counts"));
        // A wildcard-file entry is live as long as any file flags the
        // binding.
        let wild = parse_allowlist("*:counts  folded commutatively everywhere\n");
        assert!(stale_entries(&findings, &wild).is_empty());
    }

    #[test]
    fn for_in_with_method_chain_is_flagged() {
        let src = r#"
fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    for x in m.drain() {}
}
"#;
        assert_eq!(lint_source("a.rs", src, &[]).len(), 1);
    }
}
