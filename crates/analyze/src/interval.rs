//! The interval abstract domain the analyzer runs on.
//!
//! Element indices are abstracted as closed integer intervals `[lo, hi]`.
//! All arithmetic happens in `i128`: the DSL's coefficients are `i64` and
//! the coordinate ranges are `u64`, so every product and sum of the terms
//! of one affine expression fits comfortably in `i128` with no overflow —
//! which is exactly what makes the bounds check *sound* rather than a
//! best-effort heuristic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A closed integer interval `[lo, hi]` (`lo <= hi` by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
}

impl Interval {
    /// The interval containing exactly `v`.
    pub fn point(v: i128) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The interval `[lo, hi]`; panics if `lo > hi`.
    pub fn new(lo: i128, hi: i128) -> Self {
        assert!(lo <= hi, "interval [{lo}, {hi}] is empty");
        Interval { lo, hi }
    }

    /// Scale by a constant; a negative coefficient flips the bounds.
    pub fn scale(self, coef: i128) -> Interval {
        let (a, b) = (self.lo * coef, self.hi * coef);
        Interval {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Smallest interval containing both operands (the lattice join).
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Whether the interval lies entirely inside `[0, n)`.
    pub fn within(self, n: i128) -> bool {
        self.lo >= 0 && self.hi < n
    }

    /// Number of integers covered.
    pub fn width(self) -> i128 {
        self.hi - self.lo + 1
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Interval sum: `[a+c, b+d]`.
    fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Inclusive byte-address range of an access site, serializable for the
/// wire API (addresses are `u64` by construction: they come from wrapped
/// in-bounds element indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteRange {
    /// First byte any lane of any thread can touch.
    pub lo: u64,
    /// Last byte any lane of any thread can touch.
    pub hi: u64,
}

impl ByteRange {
    /// Whether `addr` lies inside the range.
    pub fn contains(self, addr: u64) -> bool {
        self.lo <= addr && addr <= self.hi
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_flips_on_negative_coefficients() {
        let i = Interval::new(2, 5);
        assert_eq!(i.scale(3), Interval::new(6, 15));
        assert_eq!(i.scale(-3), Interval::new(-15, -6));
        assert_eq!(i.scale(0), Interval::point(0));
    }

    #[test]
    fn add_and_join() {
        let a = Interval::new(-1, 4);
        let b = Interval::new(10, 20);
        assert_eq!(a + b, Interval::new(9, 24));
        assert_eq!(a.join(b), Interval::new(-1, 20));
        assert_eq!(a.width(), 6);
    }

    #[test]
    fn within_is_half_open() {
        assert!(Interval::new(0, 9).within(10));
        assert!(!Interval::new(0, 10).within(10));
        assert!(!Interval::new(-1, 5).within(10));
    }

    #[test]
    fn byte_range_contains_is_inclusive() {
        let r = ByteRange {
            lo: 0x100,
            hi: 0x1ff,
        };
        assert!(r.contains(0x100));
        assert!(r.contains(0x1ff));
        assert!(!r.contains(0x200));
    }
}
