//! Analyzer fixtures: small kernels that each trip exactly one analyzer
//! check (the [`NAMES`] negatives), plus race-free *positive* kernels
//! ([`phased_stencil`], [`phased_reduction`], [`clean_streaming`]) the
//! detector must certify. Used by the test suite, the CLI
//! (`gmap analyze --fixture`) and the serve smoke test (a guaranteed-422
//! spec).

use gmap_gpu::hierarchy::LaunchConfig;
use gmap_gpu::kernel::dsl::{loop_n, read, write};
use gmap_gpu::kernel::{ArrayDesc, IndexExpr, KernelBuilder, KernelDesc, Pred, Stmt};
use gmap_trace::record::{ByteAddr, Pc};

/// Names of all negative fixtures, in [`by_name`] order.
pub const NAMES: [&str; 8] = [
    "oob-affine",
    "uncoalesced",
    "barrier-divergent",
    "overlapping-write",
    "race-ww",
    "race-rw",
    "race-interblock",
    "race-ww-interblock",
];

/// An affine read whose index provably leaves `[0, elems)`: 1024 threads
/// reading `data[tid * 2]` from a 1024-element array — tids above 511
/// wrap. The executor runs this "fine"; the analyzer must flag PC 0x10.
pub fn oob_affine() -> KernelDesc {
    KernelBuilder::new("oob-affine", 8u32, 128u32)
        .array("data", 1024)
        .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 2))
        .build()
        .expect("fixture is structurally valid")
}

/// A fully uncoalesced streaming write: adjacent lanes are 128 bytes
/// apart (32 elems x 4 B), so a full warp touches 32 distinct segments —
/// coalescing degree 32 at PC 0x20.
pub fn uncoalesced() -> KernelDesc {
    let threads = 4u64 * 128;
    KernelBuilder::new("uncoalesced", 4u32, 128u32)
        .array("out", threads * 32)
        .write(Pc(0x20), 0, IndexExpr::tid_linear(0, 32))
        .build()
        .expect("fixture is structurally valid")
}

/// A barrier under a block-divergent branch: half of each warp takes the
/// `then` side and waits at a `__syncthreads()` the other half never
/// reaches. Real hardware deadlocks; the analyzer must flag it.
pub fn barrier_divergent() -> KernelDesc {
    KernelBuilder::new("barrier-divergent", 2u32, 64u32)
        .array("data", 4096)
        .stmt(Stmt::If {
            pred: Pred::LaneLt(16),
            then_body: vec![read(0x30, 0, IndexExpr::tid_linear(0, 1)), Stmt::Sync],
            else_body: vec![],
        })
        .build()
        .expect("fixture is structurally valid")
}

/// Two arrays whose byte ranges alias, with a write into one of them —
/// a layout [`KernelBuilder`] can never produce, so it is hand-built.
pub fn overlapping_write() -> KernelDesc {
    let k = KernelDesc {
        name: "overlapping-write".into(),
        launch: LaunchConfig::new(2u32, 64u32),
        arrays: vec![
            ArrayDesc {
                name: "a".into(),
                base: ByteAddr(0),
                elems: 1024,
                elem_size: 4,
            },
            // Starts halfway inside `a`.
            ArrayDesc {
                name: "b".into(),
                base: ByteAddr(2048),
                elems: 1024,
                elem_size: 4,
            },
        ],
        body: vec![
            read(0x40, 0, IndexExpr::tid_linear(0, 1)),
            write(0x48, 1, IndexExpr::tid_linear(0, 1)),
        ],
    };
    k.validate().expect("fixture is structurally valid");
    k
}

/// Every thread of a block writes the block's slot of `acc` in the same
/// barrier phase: a textbook cross-warp write-write race. The leading
/// tid-linear write and the barrier are innocent — the kernel *claims*
/// phase discipline, so the proven race at PC 0x18 is an error.
pub fn race_ww() -> KernelDesc {
    KernelBuilder::new("race-ww", 2u32, 64u32)
        .array("data", 128)
        .array("acc", 2)
        .write(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
        .stmt(Stmt::Sync)
        .write(
            Pc(0x18),
            1,
            IndexExpr::Affine {
                base: 0,
                tid_coef: 0,
                lane_coef: 0,
                warp_coef: 0,
                block_coef: 1,
                iter_coefs: vec![],
            },
        )
        .build()
        .expect("fixture is structurally valid")
}

/// Each warp reads the *other* warp's freshly written tile elements with
/// no barrier in between (the sync comes only after the read): a
/// cross-warp read-write race at PCs 0x10/0x20. The read index mirrors
/// the warps: `32 + lane - 32*warp_global + 64*block`, which block 0's
/// warps resolve to the opposite warp's write range.
pub fn race_rw() -> KernelDesc {
    KernelBuilder::new("race-rw", 2u32, 64u32)
        .array("tile", 128)
        .write(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
        .read(
            Pc(0x20),
            0,
            IndexExpr::Affine {
                base: 32,
                tid_coef: 0,
                lane_coef: 1,
                warp_coef: -32,
                block_coef: 64,
                iter_coefs: vec![],
            },
        )
        .stmt(Stmt::Sync)
        .build()
        .expect("fixture is structurally valid")
}

/// Block-local barrier discipline is perfect, but every block reads the
/// *same* 64 elements block 0 writes (`out[tid - 64*block]`): the barrier
/// cannot order different blocks, so the read-write pair races
/// inter-block while staying disjoint within each block.
pub fn race_interblock() -> KernelDesc {
    KernelBuilder::new("race-interblock", 2u32, 64u32)
        .array("out", 128)
        .write(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
        .stmt(Stmt::Sync)
        .read(
            Pc(0x20),
            0,
            IndexExpr::Affine {
                base: 0,
                tid_coef: 1,
                lane_coef: 0,
                warp_coef: 0,
                block_coef: -64,
                iter_coefs: vec![],
            },
        )
        .build()
        .expect("fixture is structurally valid")
}

/// Every block writes the same 64 `out` elements (`out[tid - 64*block]`):
/// a write-write race between blocks, with the intra-block pattern fully
/// disjoint — only the inter-block scope is wrong.
pub fn race_ww_interblock() -> KernelDesc {
    KernelBuilder::new("race-ww-interblock", 2u32, 64u32)
        .array("out", 64)
        .write(
            Pc(0x10),
            0,
            IndexExpr::Affine {
                base: 0,
                tid_coef: 1,
                lane_coef: 0,
                warp_coef: 0,
                block_coef: -64,
                iter_coefs: vec![],
            },
        )
        .stmt(Stmt::Sync)
        .build()
        .expect("fixture is structurally valid")
}

/// A *positive* race fixture: a phased stencil that writes the block's
/// tile, syncs, then has every warp read the first warp's elements. The
/// cross-warp read-write conflict is real but barrier-ordered, and the
/// blocks touch disjoint tiles — the detector must certify it.
pub fn phased_stencil() -> KernelDesc {
    KernelBuilder::new("phased-stencil", 2u32, 64u32)
        .array("tile", 128)
        .write(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
        .stmt(Stmt::Sync)
        .read(
            Pc(0x20),
            0,
            IndexExpr::Affine {
                base: 0,
                tid_coef: 0,
                lane_coef: 1,
                warp_coef: 0,
                block_coef: 64,
                iter_coefs: vec![],
            },
        )
        .build()
        .expect("fixture is structurally valid")
}

/// A *positive* race fixture: a phased block reduction. All threads
/// write their slot, sync, then one pinned thread per block sweeps the
/// block's 64 slots and accumulates into `result[block]`. The sweep
/// crosses warps but the barrier orders it; the accumulator is written by
/// one thread per block only — certified race-free.
pub fn phased_reduction() -> KernelDesc {
    KernelBuilder::new("phased-reduction", 2u32, 64u32)
        .array("slots", 128)
        .array("result", 2)
        .write(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
        .stmt(Stmt::Sync)
        .stmt(Stmt::If {
            pred: Pred::TidMod { m: 64, r: 0 },
            then_body: vec![loop_n(
                64,
                vec![
                    read(
                        0x20,
                        0,
                        IndexExpr::Affine {
                            base: 0,
                            tid_coef: 0,
                            lane_coef: 0,
                            warp_coef: 0,
                            block_coef: 64,
                            iter_coefs: vec![(0, 1)],
                        },
                    ),
                    write(
                        0x28,
                        1,
                        IndexExpr::Affine {
                            base: 0,
                            tid_coef: 0,
                            lane_coef: 0,
                            warp_coef: 0,
                            block_coef: 1,
                            iter_coefs: vec![],
                        },
                    ),
                ],
            )],
            else_body: vec![],
        })
        .build()
        .expect("fixture is structurally valid")
}

/// A well-formed kernel with a long inner loop, used by tests that need a
/// *clean* hand-rolled spec (e.g. the serve happy-path smoke case).
pub fn clean_streaming() -> KernelDesc {
    let threads = 4u64 * 128;
    KernelBuilder::new("clean-streaming", 4u32, 128u32)
        .array("src", threads * 8)
        .array("dst", threads * 8)
        .stmt(loop_n(
            8,
            vec![
                read(
                    0x50,
                    0,
                    IndexExpr::Affine {
                        base: 0,
                        tid_coef: 1,
                        lane_coef: 0,
                        warp_coef: 0,
                        block_coef: 0,
                        iter_coefs: vec![(0, threads as i64)],
                    },
                ),
                write(
                    0x58,
                    1,
                    IndexExpr::Affine {
                        base: 0,
                        tid_coef: 1,
                        lane_coef: 0,
                        warp_coef: 0,
                        block_coef: 0,
                        iter_coefs: vec![(0, threads as i64)],
                    },
                ),
            ],
        ))
        .build()
        .expect("fixture is structurally valid")
}

/// Looks up a negative fixture by its [`NAMES`] entry.
pub fn by_name(name: &str) -> Option<KernelDesc> {
    Some(match name {
        "oob-affine" => oob_affine(),
        "uncoalesced" => uncoalesced(),
        "barrier-divergent" => barrier_divergent(),
        "overlapping-write" => overlapping_write(),
        "race-ww" => race_ww(),
        "race-rw" => race_rw(),
        "race-interblock" => race_interblock(),
        "race-ww-interblock" => race_ww_interblock(),
        "phased-stencil" => phased_stencil(),
        "phased-reduction" => phased_reduction(),
        "clean-streaming" => clean_streaming(),
        _ => return None,
    })
}

/// All negative fixtures with their names.
pub fn all() -> Vec<(&'static str, KernelDesc)> {
    NAMES
        .iter()
        .map(|n| (*n, by_name(n).expect("known fixture")))
        .collect()
}
