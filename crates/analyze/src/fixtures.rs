//! Negative fixtures: small kernels that each trip exactly one analyzer
//! check, used by the test suite, the CLI (`gmap analyze --fixture`) and
//! the serve smoke test (a guaranteed-422 spec).

use gmap_gpu::hierarchy::LaunchConfig;
use gmap_gpu::kernel::dsl::{loop_n, read, write};
use gmap_gpu::kernel::{ArrayDesc, IndexExpr, KernelBuilder, KernelDesc, Pred, Stmt};
use gmap_trace::record::{ByteAddr, Pc};

/// Names of all negative fixtures, in [`by_name`] order.
pub const NAMES: [&str; 4] = [
    "oob-affine",
    "uncoalesced",
    "barrier-divergent",
    "overlapping-write",
];

/// An affine read whose index provably leaves `[0, elems)`: 1024 threads
/// reading `data[tid * 2]` from a 1024-element array — tids above 511
/// wrap. The executor runs this "fine"; the analyzer must flag PC 0x10.
pub fn oob_affine() -> KernelDesc {
    KernelBuilder::new("oob-affine", 8u32, 128u32)
        .array("data", 1024)
        .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 2))
        .build()
        .expect("fixture is structurally valid")
}

/// A fully uncoalesced streaming write: adjacent lanes are 128 bytes
/// apart (32 elems x 4 B), so a full warp touches 32 distinct segments —
/// coalescing degree 32 at PC 0x20.
pub fn uncoalesced() -> KernelDesc {
    let threads = 4u64 * 128;
    KernelBuilder::new("uncoalesced", 4u32, 128u32)
        .array("out", threads * 32)
        .write(Pc(0x20), 0, IndexExpr::tid_linear(0, 32))
        .build()
        .expect("fixture is structurally valid")
}

/// A barrier under a block-divergent branch: half of each warp takes the
/// `then` side and waits at a `__syncthreads()` the other half never
/// reaches. Real hardware deadlocks; the analyzer must flag it.
pub fn barrier_divergent() -> KernelDesc {
    KernelBuilder::new("barrier-divergent", 2u32, 64u32)
        .array("data", 4096)
        .stmt(Stmt::If {
            pred: Pred::LaneLt(16),
            then_body: vec![read(0x30, 0, IndexExpr::tid_linear(0, 1)), Stmt::Sync],
            else_body: vec![],
        })
        .build()
        .expect("fixture is structurally valid")
}

/// Two arrays whose byte ranges alias, with a write into one of them —
/// a layout [`KernelBuilder`] can never produce, so it is hand-built.
pub fn overlapping_write() -> KernelDesc {
    let k = KernelDesc {
        name: "overlapping-write".into(),
        launch: LaunchConfig::new(2u32, 64u32),
        arrays: vec![
            ArrayDesc {
                name: "a".into(),
                base: ByteAddr(0),
                elems: 1024,
                elem_size: 4,
            },
            // Starts halfway inside `a`.
            ArrayDesc {
                name: "b".into(),
                base: ByteAddr(2048),
                elems: 1024,
                elem_size: 4,
            },
        ],
        body: vec![
            read(0x40, 0, IndexExpr::tid_linear(0, 1)),
            write(0x48, 1, IndexExpr::tid_linear(0, 1)),
        ],
    };
    k.validate().expect("fixture is structurally valid");
    k
}

/// A well-formed kernel with a long inner loop, used by tests that need a
/// *clean* hand-rolled spec (e.g. the serve happy-path smoke case).
pub fn clean_streaming() -> KernelDesc {
    let threads = 4u64 * 128;
    KernelBuilder::new("clean-streaming", 4u32, 128u32)
        .array("src", threads * 8)
        .array("dst", threads * 8)
        .stmt(loop_n(
            8,
            vec![
                read(
                    0x50,
                    0,
                    IndexExpr::Affine {
                        base: 0,
                        tid_coef: 1,
                        lane_coef: 0,
                        warp_coef: 0,
                        block_coef: 0,
                        iter_coefs: vec![(0, threads as i64)],
                    },
                ),
                write(
                    0x58,
                    1,
                    IndexExpr::Affine {
                        base: 0,
                        tid_coef: 1,
                        lane_coef: 0,
                        warp_coef: 0,
                        block_coef: 0,
                        iter_coefs: vec![(0, threads as i64)],
                    },
                ),
            ],
        ))
        .build()
        .expect("fixture is structurally valid")
}

/// Looks up a negative fixture by its [`NAMES`] entry.
pub fn by_name(name: &str) -> Option<KernelDesc> {
    Some(match name {
        "oob-affine" => oob_affine(),
        "uncoalesced" => uncoalesced(),
        "barrier-divergent" => barrier_divergent(),
        "overlapping-write" => overlapping_write(),
        "clean-streaming" => clean_streaming(),
        _ => return None,
    })
}

/// All negative fixtures with their names.
pub fn all() -> Vec<(&'static str, KernelDesc)> {
    NAMES
        .iter()
        .map(|n| (*n, by_name(n).expect("known fixture")))
        .collect()
}
