//! `gmap-analyze`: a static verifier for the G-MAP kernel DSL.
//!
//! The G-MAP pipeline (profile → clone → simulate) trusts its input
//! specs: the SIMT executor wraps out-of-range indices silently, runs
//! barriers under divergence without blinking, and will happily stream a
//! fully uncoalesced kernel through the cache model. This crate closes
//! that gap *before* execution:
//!
//! - [`analyze_kernel`] abstractly interprets a
//!   [`KernelDesc`](gmap_gpu::kernel::KernelDesc) and produces a
//!   [`StaticReport`]: per-PC address intervals (exact for in-bounds
//!   affine sites, whole-array for wrapping/hashed ones), 128-byte
//!   coalescing degrees, lane/warp/loop stride signatures, divergence
//!   reachability, and error findings for out-of-bounds affine indices,
//!   overlapping written arrays, size overflows and barriers that
//!   deadlock under divergence.
//! - [`verify_against_trace`] is the self-check used by `gmap-core`'s
//!   admission gate: every address the executor emits must lie inside
//!   the static interval for its PC.
//! - [`detlint`] is the workspace determinism lint: it scans the
//!   simulation crates for iteration over hash-ordered containers
//!   (`HashMap`/`HashSet`), the classic way bit-reproducibility rots.
//!
//! Severity is two-level by design: **errors** are correctness hazards
//! and make a spec inadmissible (`gmap-serve` answers 422); **warnings**
//! are performance hazards — e.g. the kmeans workload is fully
//! uncoalesced *on purpose* (its 136 B lane stride exceeds the 128 B
//! transaction size) and must stay admissible.

#![warn(missing_docs)]

pub mod analyzer;
pub mod congruence;
pub mod detlint;
pub mod fixtures;
pub mod interval;
pub mod races;
pub mod report;

pub use analyzer::{analyze_kernel, analyze_kernel_with, verify_against_trace, SelfCheckViolation};
pub use congruence::{AbsVal, Congruence};
pub use interval::{ByteRange, Interval};
pub use races::{PairVerdict, RacePairReport};
pub use report::{Finding, FindingKind, PatternKind, Severity, SiteReport, StaticReport};
