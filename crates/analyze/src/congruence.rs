//! The congruence abstract domain `r + m·Z`, and its reduced product
//! with the interval domain.
//!
//! Intervals alone cannot prove that `A[2·tid]` and `A[2·tid + 1]` are
//! disjoint: their ranges interleave, so the interval of the difference
//! always straddles zero. The congruence domain captures exactly the
//! missing fact — the difference is *odd* — by abstracting every value
//! as a residue class `r (mod m)` (Granger's arithmetical congruences).
//! The race detector evaluates the symbolic difference of two access
//! sites in the product [`AbsVal`] = interval × congruence: if either
//! component excludes zero, no pair of threads can collide, which is
//! precisely the modular-arithmetic disjointness proof the
//! barrier-phase detector needs for per-lane strided writes.
//!
//! Conventions: `modulus == 0` encodes a constant (`γ = {residue}`),
//! `modulus == 1` is ⊤ (all integers). For `modulus > 1` the residue is
//! normalized into `[0, modulus)`. All arithmetic is `i128`, like
//! [`crate::interval::Interval`], so sums/products of DSL coefficients
//! and coordinate ranges cannot overflow.

use crate::interval::Interval;
use std::fmt;

/// A congruence class `residue + modulus·Z` over `i128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Congruence {
    /// The stride of the class; `0` means the singleton `{residue}`.
    modulus: i128,
    /// Normalized representative (`0 <= residue < modulus` when
    /// `modulus > 0`; the exact value when `modulus == 0`).
    residue: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Congruence {
    /// The class containing exactly `v`.
    pub fn point(v: i128) -> Self {
        Congruence {
            modulus: 0,
            residue: v,
        }
    }

    /// ⊤: every integer (`0 + 1·Z`).
    pub fn top() -> Self {
        Congruence {
            modulus: 1,
            residue: 0,
        }
    }

    /// The class `residue + modulus·Z` (normalizing the residue).
    pub fn new(residue: i128, modulus: i128) -> Self {
        let modulus = modulus.abs();
        if modulus == 0 {
            Congruence::point(residue)
        } else {
            Congruence {
                modulus,
                residue: residue.rem_euclid(modulus),
            }
        }
    }

    /// The modulus (`0` for constants).
    pub fn modulus(&self) -> i128 {
        self.modulus
    }

    /// The normalized residue.
    pub fn residue(&self) -> i128 {
        self.residue
    }

    /// Abstract addition: `(r1 + m1·Z) + (r2 + m2·Z) =
    /// (r1 + r2) + gcd(m1, m2)·Z`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Congruence) -> Congruence {
        Congruence::new(
            self.residue + other.residue,
            gcd(self.modulus, other.modulus),
        )
    }

    /// Abstract scaling: `c·(r + m·Z) = c·r + |c·m|·Z`.
    pub fn scale(self, coef: i128) -> Congruence {
        if coef == 0 {
            return Congruence::point(0);
        }
        Congruence::new(self.residue * coef, self.modulus * coef)
    }

    /// Lattice join: the smallest class containing both operands,
    /// `gcd(m1, m2, |r1 - r2|)`.
    pub fn join(self, other: Congruence) -> Congruence {
        let m = gcd(
            gcd(self.modulus, other.modulus),
            self.residue - other.residue,
        );
        Congruence::new(self.residue, m)
    }

    /// Whether `v` is in the concretization.
    pub fn contains(&self, v: i128) -> bool {
        if self.modulus == 0 {
            v == self.residue
        } else {
            (v - self.residue).rem_euclid(self.modulus) == 0
        }
    }
}

impl fmt::Display for Congruence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.modulus == 0 {
            write!(f, "{{{}}}", self.residue)
        } else {
            write!(f, "{} + {}Z", self.residue, self.modulus)
        }
    }
}

/// The reduced product of the interval and congruence domains: one
/// abstract value tracked in both, queried jointly. The race detector
/// builds the symbolic difference of two access-site indices as an
/// `AbsVal` and asks [`AbsVal::excludes_zero`] — either domain alone
/// suffices to prove two sites disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Interval component.
    pub iv: Interval,
    /// Congruence component.
    pub cg: Congruence,
}

impl AbsVal {
    /// The constant `v` in both domains.
    pub fn point(v: i128) -> Self {
        AbsVal {
            iv: Interval::point(v),
            cg: Congruence::point(v),
        }
    }

    /// A bounded variable `[lo, hi]` with no known stride (congruence ⊤,
    /// or a constant when the range is a single point).
    pub fn range(lo: i128, hi: i128) -> Self {
        AbsVal {
            iv: Interval::new(lo, hi),
            cg: if lo == hi {
                Congruence::point(lo)
            } else {
                Congruence::top()
            },
        }
    }

    /// Componentwise abstract sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv + other.iv,
            cg: self.cg.add(other.cg),
        }
    }

    /// Componentwise abstract scaling. This is where the congruence
    /// component earns its keep: `coef · [lo, hi]` has stride `|coef|`.
    pub fn scale(self, coef: i128) -> AbsVal {
        AbsVal {
            iv: self.iv.scale(coef),
            cg: self.cg.scale(coef),
        }
    }

    /// Whether the concretization provably misses zero — the reduced
    /// product query: zero must lie in *both* components to be feasible.
    pub fn excludes_zero(&self) -> bool {
        !self.iv.contains(0) || !self.cg.contains(0)
    }
}

impl fmt::Display for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ∩ {}", self.iv, self.cg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_and_top() {
        let p = Congruence::point(7);
        assert!(p.contains(7));
        assert!(!p.contains(8));
        let t = Congruence::top();
        assert!(t.contains(0));
        assert!(t.contains(-12345));
    }

    #[test]
    fn new_normalizes_residue() {
        let c = Congruence::new(-3, 8);
        assert_eq!(c.residue(), 5);
        assert_eq!(c.modulus(), 8);
        assert!(c.contains(13));
        assert!(c.contains(-3));
        assert!(!c.contains(0));
    }

    #[test]
    fn add_takes_gcd_of_moduli() {
        let a = Congruence::new(1, 6);
        let b = Congruence::new(2, 4);
        let s = a.add(b);
        assert_eq!(s.modulus(), 2);
        assert_eq!(s.residue(), 1);
        // Constant + class keeps the class stride.
        let shifted = Congruence::point(5).add(Congruence::new(0, 8));
        assert_eq!((shifted.modulus(), shifted.residue()), (8, 5));
    }

    #[test]
    fn scale_multiplies_stride() {
        let c = Congruence::new(1, 3).scale(4);
        assert_eq!((c.modulus(), c.residue()), (12, 4));
        assert_eq!(Congruence::new(1, 3).scale(0), Congruence::point(0));
        let neg = Congruence::new(1, 3).scale(-2);
        assert_eq!(neg.modulus(), 6);
        assert!(neg.contains(-2));
        assert!(neg.contains(4));
    }

    #[test]
    fn join_is_an_upper_bound() {
        let a = Congruence::new(1, 8);
        let b = Congruence::new(5, 8);
        let j = a.join(b);
        assert_eq!(j.modulus(), 4);
        assert!(j.contains(1) && j.contains(5) && j.contains(9));
        assert!(!j.contains(2));
        // Joining equal constants stays constant.
        let c = Congruence::point(3).join(Congruence::point(3));
        assert_eq!(c, Congruence::point(3));
    }

    #[test]
    fn strided_difference_excludes_zero() {
        // A[2·x] vs A[2·y + 1]: difference = 2·x - 2·y - 1, interval
        // straddles zero but the congruence is odd.
        let diff = AbsVal::point(-1)
            .add(AbsVal::range(0, 100).scale(2))
            .add(AbsVal::range(0, 100).scale(-2));
        assert!(diff.iv.contains(0), "interval alone cannot prove this");
        assert!(diff.excludes_zero(), "congruence proves oddness");
    }

    #[test]
    fn interval_component_still_decides_offsets() {
        // x + 64 with x in [0, 63]: congruence is top, interval excludes 0.
        let diff = AbsVal::point(64).add(AbsVal::range(0, 63));
        assert!(diff.excludes_zero());
        // x - 32 with x in [0, 63]: neither component helps.
        let stride = AbsVal::point(-32).add(AbsVal::range(0, 63));
        assert!(!stride.excludes_zero());
    }

    #[test]
    fn single_point_range_is_constant() {
        let v = AbsVal::range(5, 5);
        assert_eq!(v.cg, Congruence::point(5));
    }
}
