//! Structured output of the static analyzer: per-site facts and findings.

use crate::interval::ByteRange;
use crate::races::PairVerdict;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
///
/// The admission gate (gmap-core, gmap-serve) rejects kernels with
/// [`Severity::Error`] findings only: warnings describe *performance*
/// hazards (e.g. fully uncoalesced accesses) that shipped workloads such
/// as kmeans exhibit by design, while errors describe *correctness*
/// hazards (out-of-bounds indices that the SIMT executor would silently
/// wrap, aliasing writes, barriers that would deadlock real hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Performance hazard; the kernel is admissible.
    Warning,
    /// Correctness hazard; the kernel is rejected by the admission gate.
    Error,
}

/// The class of a finding.
///
/// Serialized (and displayed) as stable kebab-case strings — e.g.
/// `"race-write-write"` — which CI gates and API clients match on;
/// renaming a variant's wire string is a breaking change. The serde
/// impls are hand-written (the vendored derive ignores rename
/// attributes) so the JSON string always equals the [`fmt::Display`]
/// string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// The spec failed structural validation ([`gmap_gpu::kernel::KernelDesc::validate`]).
    SpecError,
    /// `elems * elem_size` or `base + size` overflows `u64`.
    ArraySizeOverflow,
    /// An affine index can leave `[0, elems)`; the executor would wrap it
    /// silently (`rem_euclid`), touching addresses the author never wrote.
    OutOfBounds,
    /// Two arrays with overlapping byte ranges, at least one written.
    OverlappingWrite,
    /// A `__syncthreads()` reachable under block-divergent control flow:
    /// deadlock on real hardware.
    BarrierDivergence,
    /// A full warp touches one 128-byte segment per lane (degree =
    /// warp size): fully uncoalesced.
    Uncoalesced,
    /// Two writes to the same array element from threads the execution
    /// model leaves unordered (no barrier between them, or different
    /// blocks), with a concrete witness pair of threads.
    RaceWriteWrite,
    /// A read and a write of the same array element from unordered
    /// threads, with a concrete witness pair of threads.
    RaceReadWrite,
    /// A conflicting pair the detector could neither prove disjoint /
    /// barrier-ordered nor witness concretely (irregular indices,
    /// unresolved predicates, or search budget exhausted).
    RacePotential,
}

impl FindingKind {
    /// The stable wire/display string of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::SpecError => "spec-error",
            FindingKind::ArraySizeOverflow => "array-size-overflow",
            FindingKind::OutOfBounds => "out-of-bounds",
            FindingKind::OverlappingWrite => "overlapping-write",
            FindingKind::BarrierDivergence => "barrier-divergence",
            FindingKind::Uncoalesced => "uncoalesced",
            FindingKind::RaceWriteWrite => "race-write-write",
            FindingKind::RaceReadWrite => "race-read-write",
            FindingKind::RacePotential => "race-potential",
        }
    }

    /// Every kind, in declaration order — the full wire vocabulary.
    pub const ALL: [FindingKind; 9] = [
        FindingKind::SpecError,
        FindingKind::ArraySizeOverflow,
        FindingKind::OutOfBounds,
        FindingKind::OverlappingWrite,
        FindingKind::BarrierDivergence,
        FindingKind::Uncoalesced,
        FindingKind::RaceWriteWrite,
        FindingKind::RaceReadWrite,
        FindingKind::RacePotential,
    ];
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for FindingKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for FindingKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => Self::ALL
                .into_iter()
                .find(|k| k.as_str() == s)
                .ok_or_else(|| serde::DeError::custom(format!("unknown finding kind {s:?}"))),
            other => Err(serde::DeError::custom(format!(
                "expected a finding-kind string, got {other:?}"
            ))),
        }
    }
}

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Error or warning.
    pub severity: Severity,
    /// What class of problem this is.
    pub kind: FindingKind,
    /// PC of the offending access, when the finding is attributable to
    /// one (barrier findings carry the PC of the nearest preceding
    /// access, if any).
    pub pc: Option<u64>,
    /// Human-readable diagnosis.
    pub message: String,
}

/// The access pattern class of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternKind {
    /// Affine in the thread coordinates and loop iterators.
    Affine,
    /// Hashed per `(thread, iteration)` — irregular.
    Hashed,
    /// Hashed per thread only — irregular but iteration-stable.
    HashedPerThread,
}

impl fmt::Display for PatternKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PatternKind::Affine => "affine",
            PatternKind::Hashed => "hashed",
            PatternKind::HashedPerThread => "hashed/thread",
        })
    }
}

/// Per-access-site (PC) static facts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteReport {
    /// PC of the access.
    pub pc: u64,
    /// Index of the accessed array in the kernel's array table.
    pub array: usize,
    /// Name of the accessed array.
    pub array_name: String,
    /// `"R"` or `"W"`.
    pub kind: String,
    /// Pattern class of the index expression.
    pub pattern: PatternKind,
    /// Sound inclusive byte-address bounds of every address the site can
    /// emit (covers the whole array once the index can wrap or is
    /// hashed).
    pub addrs: ByteRange,
    /// Whether the affine index stays inside `[0, elems)` for every
    /// thread and iteration (hashed indices always wrap by design).
    pub in_bounds: bool,
    /// Coalescing degree of a full warp at 128-byte granularity:
    /// distinct segments touched by warp 0's first execution.
    pub degree: u32,
    /// Element-to-element stride between adjacent lanes of a warp, in
    /// bytes (`None` for hashed patterns).
    pub lane_stride_bytes: Option<i64>,
    /// First-address stride between consecutive warps of a block, in
    /// bytes (`None` for hashed patterns).
    pub inter_warp_stride_bytes: Option<i64>,
    /// Intra-thread strides contributed by each enclosing loop:
    /// `(loop depth, stride bytes per iteration)`.
    pub iter_strides_bytes: Vec<(u8, i64)>,
    /// Whether the site executes under warp-divergent control flow.
    pub divergent: bool,
}

/// The full result of statically analyzing one kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticReport {
    /// Kernel name.
    pub name: String,
    /// Warp size the analysis assumed.
    pub warp_size: u32,
    /// Per-site facts, in first-appearance order.
    pub sites: Vec<SiteReport>,
    /// Diagnostics, errors first.
    pub findings: Vec<Finding>,
    /// Per-(array, PC-pair) race verdicts from the barrier-phase
    /// detector, in site order. Defaults to empty when deserializing
    /// reports produced before race analysis existed.
    #[serde(default)]
    pub races: Vec<crate::races::RacePairReport>,
    /// Whether the barrier-phase detector certified the kernel free of
    /// data races: every conflicting pair is provably disjoint or
    /// barrier-ordered in every scope. Defaults to `false` (unknown) for
    /// pre-race-analysis reports.
    #[serde(default)]
    pub race_certified: bool,
}

impl StaticReport {
    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// The error findings.
    pub fn errors(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
    }

    /// The warning findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
    }

    /// Human-readable findings table plus per-site facts, for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "static analysis of '{}': {} sites, {} errors, {} warnings\n",
            self.name,
            self.sites.len(),
            self.errors().count(),
            self.warnings().count()
        ));
        if !self.sites.is_empty() {
            out.push_str(&format!(
                "\n{:<10} {:<12} {:>4} {:>13} {:>7} {:>11} {:>11} {:>9}  {}\n",
                "PC",
                "array",
                "kind",
                "pattern",
                "degree",
                "lane-stride",
                "warp-stride",
                "bounds",
                "addr-range"
            ));
            for s in &self.sites {
                out.push_str(&format!(
                    "{:<10} {:<12} {:>4} {:>13} {:>7} {:>11} {:>11} {:>9}  {}\n",
                    format!("{:#x}", s.pc),
                    s.array_name,
                    s.kind,
                    format!("{}{}", s.pattern, if s.divergent { "/div" } else { "" }),
                    s.degree,
                    s.lane_stride_bytes
                        .map_or("-".to_string(), |v| format!("{v}B")),
                    s.inter_warp_stride_bytes
                        .map_or("-".to_string(), |v| format!("{v}B")),
                    if s.in_bounds { "ok" } else { "WRAPS" },
                    s.addrs
                ));
            }
        }
        if !self.races.is_empty() {
            out.push('\n');
            out.push_str(&self.render_races());
        }
        if self.findings.is_empty() {
            out.push_str("\nno findings: the spec is clean\n");
        } else {
            render_findings_tail(self, &mut out);
        }
        out
    }

    /// Only the race-verdict section: the summary line, the per-pair
    /// table with one verdict per scope, and any witness schedules.
    /// Embedded in [`Self::render`]; shown alone by
    /// `gmap analyze --races`.
    pub fn render_races(&self) -> String {
        let mut out = String::new();
        if self.races.is_empty() {
            out.push_str(&format!(
                "race analysis of '{}': no conflicting pairs — {}\n",
                self.name,
                if self.race_certified {
                    "certified race-free"
                } else {
                    "not certified (spec invalid or analysis skipped)"
                }
            ));
            return out;
        }
        out.push_str(&format!(
            "race analysis of '{}': {} conflicting pair{} — {}\n",
            self.name,
            self.races.len(),
            if self.races.len() == 1 { "" } else { "s" },
            if self.race_certified {
                "certified race-free".to_string()
            } else {
                let proven = self
                    .races
                    .iter()
                    .filter(|p| {
                        p.same_block == PairVerdict::Proven || p.inter_block == PairVerdict::Proven
                    })
                    .count();
                let potential = self
                    .races
                    .iter()
                    .filter(|p| {
                        p.same_block == PairVerdict::Potential
                            || p.inter_block == PairVerdict::Potential
                    })
                    .count();
                format!("{proven} proven, {potential} potential")
            }
        ));
        out.push_str(&format!(
            "{:<12} {:<18} {:<18} {:<12} {:<12}\n",
            "array", "site A", "site B", "same-block", "inter-block"
        ));
        for p in &self.races {
            out.push_str(&format!(
                "{:<12} {:<18} {:<18} {:<12} {:<12}\n",
                p.array_name,
                format!("{:#x} ({})", p.pc_a, p.kind_a),
                format!("{:#x} ({})", p.pc_b, p.kind_b),
                p.same_block.to_string(),
                p.inter_block.to_string(),
            ));
            if let Some(w) = &p.witness {
                out.push_str(&format!("    witness: {w}\n"));
            }
        }
        out
    }
}

/// The findings table at the end of [`StaticReport::render`].
fn render_findings_tail(report: &StaticReport, out: &mut String) {
    out.push('\n');
    for f in &report.findings {
        out.push_str(&format!(
            "{:<7} {:<20} {:<10} {}\n",
            match f.severity {
                Severity::Error => "ERROR",
                Severity::Warning => "warning",
            },
            f.kind.to_string(),
            f.pc.map_or("-".to_string(), |pc| format!("{pc:#x}")),
            f.message
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(sev: Severity) -> Finding {
        Finding {
            severity: sev,
            kind: FindingKind::OutOfBounds,
            pc: Some(0x10),
            message: "m".into(),
        }
    }

    #[test]
    fn error_detection_and_counts() {
        let r = StaticReport {
            name: "k".into(),
            warp_size: 32,
            sites: vec![],
            findings: vec![finding(Severity::Warning), finding(Severity::Error)],
            races: vec![],
            race_certified: false,
        };
        assert!(r.has_errors());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        let clean = StaticReport {
            name: "k".into(),
            warp_size: 32,
            sites: vec![],
            findings: vec![finding(Severity::Warning)],
            races: vec![],
            race_certified: true,
        };
        assert!(!clean.has_errors());
    }

    #[test]
    fn render_mentions_pcs_and_severity() {
        let r = StaticReport {
            name: "k".into(),
            warp_size: 32,
            sites: vec![],
            findings: vec![finding(Severity::Error)],
            races: vec![],
            race_certified: false,
        };
        let text = r.render();
        assert!(text.contains("ERROR"));
        assert!(text.contains("0x10"));
        assert!(text.contains("out-of-bounds"));
    }

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
    }
}
