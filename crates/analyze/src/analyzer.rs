//! Abstract interpretation of [`KernelDesc`] programs.
//!
//! The analyzer walks the kernel body once, carrying three pieces of
//! abstract state: the enclosing *loop stack* (per-depth iteration
//! intervals), the *divergence context* (can threads of one warp / one
//! block disagree about reaching this statement?), and the array table.
//! For every access site it derives, without executing anything:
//!
//! - a **sound byte-address interval**: if the affine element interval
//!   stays inside `[0, elems)` the interval is exact; otherwise the
//!   executor's `rem_euclid` wrap widens it to the whole array and the
//!   wrap itself is reported as an out-of-bounds error,
//! - the **coalescing degree** of a full warp at the 128-byte
//!   transaction granularity (CUDA guide §G.4.2), by evaluating the
//!   index expression for warp 0's lanes — the same arithmetic
//!   `gmap_gpu::exec` uses, so the degree matches `coalesce.rs` exactly
//!   on uniform warps,
//! - **stride signatures**: lane-to-lane, warp-to-warp and per-loop
//!   intra-thread strides in bytes (the quantities the G-MAP profiler
//!   measures dynamically as `P_E`/`P_A`),
//! - **divergence reachability**, and for every barrier whether it can
//!   be reached under block-divergent control — the static signature of
//!   a `__syncthreads()` deadlock.
//!
//! [`verify_against_trace`] is the self-check: every address the SIMT
//! executor emits must lie inside the analyzer's per-PC interval.

use crate::interval::{ByteRange, Interval};
use crate::report::{Finding, FindingKind, PatternKind, Severity, SiteReport, StaticReport};
use gmap_gpu::exec::{AppTrace, WarpEvent};
use gmap_gpu::kernel::{AccessDesc, EvalCtx, IndexExpr, KernelDesc, Pred, Stmt, Trip};
use gmap_trace::record::AccessKind;
use std::collections::BTreeMap;

/// The coalescing granularity the degree is computed at (128-byte
/// transactions, matching `gmap_core::COALESCE_BYTES`).
pub const SEGMENT_BYTES: u64 = 128;

/// Analyzes a kernel with the default 32-thread warps.
pub fn analyze_kernel(kernel: &KernelDesc) -> StaticReport {
    analyze_kernel_with(kernel, 32)
}

/// Analyzes a kernel assuming an explicit warp size.
///
/// Never panics: structurally invalid kernels produce a report with a
/// single [`FindingKind::SpecError`] error instead of sites.
pub fn analyze_kernel_with(kernel: &KernelDesc, warp_size: u32) -> StaticReport {
    let warp_size = warp_size.clamp(1, 64);
    let mut report = StaticReport {
        name: kernel.name.clone(),
        warp_size,
        sites: Vec::new(),
        findings: Vec::new(),
        races: Vec::new(),
        race_certified: false,
    };
    if let Err(e) = kernel.validate() {
        use gmap_gpu::kernel::ValidateKernelError;
        let kind = match e {
            ValidateKernelError::ArraySizeOverflow { .. } => FindingKind::ArraySizeOverflow,
            _ => FindingKind::SpecError,
        };
        report.findings.push(Finding {
            severity: Severity::Error,
            kind,
            pc: None,
            message: format!("spec failed validation: {e}"),
        });
        return report;
    }
    let mut walker = Walker {
        kernel,
        warp_size,
        sites: Vec::new(),
        findings: Vec::new(),
        loops: Vec::new(),
        warp_div: false,
        block_div: false,
        last_pc: None,
        written: vec![false; kernel.arrays.len()],
    };
    walker.walk(&kernel.body);
    report.sites = walker.sites;
    report.findings = walker.findings;
    check_overlaps(kernel, &walker.written, &mut report.findings);
    // Barrier-phase race detection: per-(array, PC-pair) verdicts plus
    // findings for proven/potential races.
    let race = crate::races::analyze_races(kernel, warp_size);
    report.findings.extend(race.findings);
    report.races = race.pairs;
    report.race_certified = race.certified;
    // Errors first, then warnings, preserving discovery order within
    // each class.
    report
        .findings
        .sort_by_key(|f| std::cmp::Reverse(f.severity));
    report
}

/// Flags pairs of arrays whose byte ranges intersect when at least one
/// of the pair is written: the layouts the builder produces are always
/// disjoint, so an overlap means a hand-written spec aliases two
/// logically distinct regions. Size overflow is reported here too, since
/// a wrapped size makes every bounds statement meaningless.
fn check_overlaps(kernel: &KernelDesc, written: &[bool], findings: &mut Vec<Finding>) {
    let mut spans: Vec<Option<(u64, u64)>> = Vec::with_capacity(kernel.arrays.len());
    for a in &kernel.arrays {
        let span = a
            .checked_size_bytes()
            .and_then(|size| a.base.0.checked_add(size).map(|end| (a.base.0, end)));
        if span.is_none() {
            findings.push(Finding {
                severity: Severity::Error,
                kind: FindingKind::ArraySizeOverflow,
                pc: None,
                message: format!(
                    "array '{}': {} elems x {} bytes overflows the address space",
                    a.name, a.elems, a.elem_size
                ),
            });
        }
        spans.push(span);
    }
    for i in 0..kernel.arrays.len() {
        for j in (i + 1)..kernel.arrays.len() {
            let (Some((ab, ae)), Some((bb, be))) = (spans[i], spans[j]) else {
                continue;
            };
            if ab < be && bb < ae && (written[i] || written[j]) {
                findings.push(Finding {
                    severity: Severity::Error,
                    kind: FindingKind::OverlappingWrite,
                    pc: None,
                    message: format!(
                        "arrays '{}' [{ab:#x}, {ae:#x}) and '{}' [{bb:#x}, {be:#x}) overlap and at least one is written",
                        kernel.arrays[i].name, kernel.arrays[j].name
                    ),
                });
            }
        }
    }
}

/// One enclosing loop in the walk.
struct LoopCtx {
    /// Largest iteration value any thread can see (trip count - 1).
    max_iter: u64,
    /// Whether per-thread trip counts can differ (hashed trips).
    ragged: bool,
}

struct Walker<'a> {
    kernel: &'a KernelDesc,
    warp_size: u32,
    sites: Vec<SiteReport>,
    findings: Vec<Finding>,
    loops: Vec<LoopCtx>,
    /// Lanes of one warp can disagree about reaching this point.
    warp_div: bool,
    /// Threads of one block can disagree about reaching this point.
    block_div: bool,
    last_pc: Option<u64>,
    written: Vec<bool>,
}

/// How a predicate partitions the threads of a launch.
struct PredClass {
    warp_div: bool,
    block_div: bool,
}

fn classify_pred(pred: &Pred, kernel: &KernelDesc, warp_size: u32) -> PredClass {
    let uniform = PredClass {
        warp_div: false,
        block_div: false,
    };
    let divergent = PredClass {
        warp_div: true,
        block_div: true,
    };
    let total = kernel.launch.total_threads();
    let tpb = kernel.launch.threads_per_block().max(1) as u64;
    let ws = warp_size as u64;
    match *pred {
        Pred::TidLt(n) => {
            let n = n as u64;
            if n == 0 || n >= total {
                return uniform;
            }
            let block_div = !n.is_multiple_of(tpb);
            PredClass {
                // A warp holds contiguous tids, so the cut is warp-
                // aligned only when both n and the block size are.
                warp_div: block_div && !(n.is_multiple_of(ws) && tpb.is_multiple_of(ws)),
                block_div,
            }
        }
        Pred::TidMod { m, .. } => {
            if m <= 1 {
                uniform
            } else {
                divergent
            }
        }
        Pred::LaneLt(n) => {
            if n == 0 || n >= warp_size {
                uniform
            } else {
                divergent
            }
        }
        Pred::BlockMod { .. } => uniform,
        Pred::Hashed { percent, .. } => {
            if percent == 0 || percent >= 100 {
                uniform
            } else {
                divergent
            }
        }
    }
}

impl Walker<'_> {
    fn walk(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Access(acc) => self.visit_access(acc),
                Stmt::Loop { trip, body } => {
                    let (max_trip, ragged) = match *trip {
                        Trip::Const(n) => (n as u64, false),
                        Trip::Hashed { base, spread, .. } => {
                            (base as u64 + spread.saturating_sub(1) as u64, spread > 1)
                        }
                    };
                    self.loops.push(LoopCtx {
                        max_iter: max_trip.saturating_sub(1),
                        ragged,
                    });
                    self.walk(body);
                    self.loops.pop();
                }
                Stmt::If {
                    pred,
                    then_body,
                    else_body,
                } => {
                    let class = classify_pred(pred, self.kernel, self.warp_size);
                    let (saved_w, saved_b) = (self.warp_div, self.block_div);
                    self.warp_div |= class.warp_div;
                    self.block_div |= class.block_div;
                    self.walk(then_body);
                    self.walk(else_body);
                    self.warp_div = saved_w;
                    self.block_div = saved_b;
                }
                Stmt::Sync => self.visit_sync(),
            }
        }
    }

    fn visit_sync(&mut self) {
        // `__syncthreads()` waits for every thread of the block. Two
        // static signatures make that wait unsatisfiable: the barrier
        // sits under a branch that splits a block, or inside a loop
        // whose trip count differs per thread (threads reach it a
        // different number of times). The SIMT executor here tolerates
        // both; real hardware hangs — hence Error, not Warning.
        if self.block_div {
            self.findings.push(Finding {
                severity: Severity::Error,
                kind: FindingKind::BarrierDivergence,
                pc: self.last_pc,
                message: "barrier under a block-divergent branch: threads that took the other side never arrive (deadlock)".into(),
            });
        }
        if let Some(ragged) = self.loops.iter().position(|l| l.ragged) {
            self.findings.push(Finding {
                severity: Severity::Error,
                kind: FindingKind::BarrierDivergence,
                pc: self.last_pc,
                message: format!(
                    "barrier inside loop at depth {ragged} with per-thread (hashed) trip counts: threads reach it a different number of times (deadlock)"
                ),
            });
        }
    }

    fn visit_access(&mut self, acc: &AccessDesc) {
        self.last_pc = Some(acc.pc.0);
        let array = &self.kernel.arrays[acc.array];
        if acc.kind == AccessKind::Write {
            self.written[acc.array] = true;
        }
        let elems = array.elems;
        let pattern = match acc.index {
            IndexExpr::Affine { .. } => PatternKind::Affine,
            IndexExpr::Hashed { .. } => PatternKind::Hashed,
            IndexExpr::HashedPerThread { .. } => PatternKind::HashedPerThread,
        };

        // --- Element interval and bounds. -------------------------------
        let (elem_iv, in_bounds) = match &acc.index {
            IndexExpr::Affine { .. } => {
                let iv = self.affine_interval(&acc.index);
                let inside = elems > 0 && iv.within(elems as i128);
                if !inside {
                    self.findings.push(Finding {
                        severity: Severity::Error,
                        kind: FindingKind::OutOfBounds,
                        pc: Some(acc.pc.0),
                        message: if elems == 0 {
                            format!(
                                "access to array '{}' which has zero elements",
                                array.name
                            )
                        } else {
                            format!(
                                "affine index spans {iv} but array '{}' has {elems} elems; the executor wraps out-of-range indices silently",
                                array.name
                            )
                        },
                    });
                }
                (iv, inside)
            }
            // Hashed indices cover [0, 2^63) and are wrapped into the
            // array by construction — irregular, not a bug.
            IndexExpr::Hashed { .. } | IndexExpr::HashedPerThread { .. } => {
                (Interval::new(0, elems.max(1) as i128 - 1), false)
            }
        };
        // Sound byte interval of emitted (first-byte) addresses: exact
        // when the index cannot wrap, the whole array otherwise.
        let esize = array.elem_size as u64;
        let addrs = if in_bounds {
            ByteRange {
                lo: array.base.0 + elem_iv.lo as u64 * esize,
                hi: array.base.0 + elem_iv.hi as u64 * esize,
            }
        } else {
            ByteRange {
                lo: array.base.0,
                hi: array.base.0 + elems.max(1).saturating_sub(1).saturating_mul(esize),
            }
        };

        // --- Coalescing degree: probe warp 0 lane by lane. --------------
        let lanes = self
            .warp_size
            .min(self.kernel.launch.threads_per_block().max(1));
        let iters = vec![0u64; self.loops.len()];
        let mut segments: Vec<u64> = (0..lanes)
            .map(|lane| {
                let ctx = EvalCtx {
                    tid: lane as u64,
                    lane,
                    warp: 0,
                    block: 0,
                    iters: &iters,
                };
                let elem = acc.index.eval(&ctx).rem_euclid(elems.max(1) as i64) as u64;
                (array.base.0 + elem * esize) / SEGMENT_BYTES
            })
            .collect();
        segments.sort_unstable();
        segments.dedup();
        let degree = segments.len() as u32;
        if degree == self.warp_size && self.warp_size > 1 {
            self.findings.push(Finding {
                severity: Severity::Warning,
                kind: FindingKind::Uncoalesced,
                pc: Some(acc.pc.0),
                message: format!(
                    "fully uncoalesced {} access: a warp touches {degree} separate {SEGMENT_BYTES}B segments (one per lane)",
                    pattern
                ),
            });
        }

        // --- Stride signatures. -----------------------------------------
        let (lane_stride, warp_stride, iter_strides) = match &acc.index {
            IndexExpr::Affine {
                tid_coef,
                lane_coef,
                warp_coef,
                iter_coefs,
                ..
            } => {
                let es = array.elem_size as i64;
                (
                    Some(tid_coef.saturating_add(*lane_coef).saturating_mul(es)),
                    Some(
                        tid_coef
                            .saturating_mul(self.warp_size as i64)
                            .saturating_add(*warp_coef)
                            .saturating_mul(es),
                    ),
                    iter_coefs
                        .iter()
                        .map(|&(d, c)| (d, c.saturating_mul(es)))
                        .collect(),
                )
            }
            _ => (None, None, Vec::new()),
        };

        self.sites.push(SiteReport {
            pc: acc.pc.0,
            array: acc.array,
            array_name: array.name.clone(),
            kind: match acc.kind {
                AccessKind::Read => "R".into(),
                AccessKind::Write => "W".into(),
            },
            pattern,
            addrs,
            in_bounds,
            degree,
            lane_stride_bytes: lane_stride,
            inter_warp_stride_bytes: warp_stride,
            iter_strides_bytes: iter_strides,
            divergent: self.warp_div || self.loops.iter().any(|l| l.ragged),
        });
    }

    /// Interval of an affine index over every thread coordinate and
    /// every enclosing-loop iteration. All arithmetic in `i128`, so the
    /// bound itself cannot overflow.
    fn affine_interval(&self, index: &IndexExpr) -> Interval {
        let IndexExpr::Affine {
            base,
            tid_coef,
            lane_coef,
            warp_coef,
            block_coef,
            iter_coefs,
        } = index
        else {
            unreachable!("caller checked the pattern");
        };
        let launch = &self.kernel.launch;
        let ws = self.warp_size;
        let range = |n: u64| Interval::new(0, n.max(1) as i128 - 1);
        let mut iv = Interval::point(*base as i128)
            + range(launch.total_threads()).scale(*tid_coef as i128)
            + range(ws.min(launch.threads_per_block().max(1)) as u64).scale(*lane_coef as i128)
            + range(launch.total_warps(ws) as u64).scale(*warp_coef as i128)
            + range(launch.num_blocks() as u64).scale(*block_coef as i128);
        for &(depth, coef) in iter_coefs {
            let max_iter = self.loops.get(depth as usize).map_or(0, |l| l.max_iter);
            iv = iv + Interval::new(0, max_iter as i128).scale(coef as i128);
        }
        iv
    }
}

/// One disagreement between the static report and a dynamic trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfCheckViolation {
    /// PC of the offending access.
    pub pc: u64,
    /// The dynamically emitted address.
    pub addr: u64,
    /// The static interval it was supposed to lie in (`None` when the
    /// PC has no static site at all).
    pub expected: Option<ByteRange>,
}

impl std::fmt::Display for SelfCheckViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.expected {
            Some(r) => write!(
                f,
                "pc {:#x}: dynamic address {:#x} escapes static interval {r}",
                self.pc, self.addr
            ),
            None => write!(f, "pc {:#x}: no static site covers this access", self.pc),
        }
    }
}

/// The self-check: diffs a [`StaticReport`] against a dynamic execution
/// trace. Sound analysis means an empty result — every address the SIMT
/// executor emitted lies inside the per-PC static interval. Returns at
/// most `limit` violations (the first ones found).
pub fn verify_against_trace(
    report: &StaticReport,
    trace: &AppTrace,
    limit: usize,
) -> Vec<SelfCheckViolation> {
    // A PC can occur at several statements (several sites); its sound
    // interval is the join.
    let mut per_pc: BTreeMap<u64, ByteRange> = BTreeMap::new();
    for s in &report.sites {
        per_pc
            .entry(s.pc)
            .and_modify(|r| {
                r.lo = r.lo.min(s.addrs.lo);
                r.hi = r.hi.max(s.addrs.hi);
            })
            .or_insert(s.addrs);
    }
    let mut out = Vec::new();
    for warp in &trace.warps {
        for ev in &warp.events {
            let WarpEvent::Access { pc, lane_addrs, .. } = ev else {
                continue;
            };
            let expected = per_pc.get(&pc.0).copied();
            for &(_, addr) in lane_addrs {
                let ok = expected.is_some_and(|r| r.contains(addr.0));
                if !ok {
                    out.push(SelfCheckViolation {
                        pc: pc.0,
                        addr: addr.0,
                        expected,
                    });
                    if out.len() >= limit {
                        return out;
                    }
                }
            }
        }
    }
    out
}
