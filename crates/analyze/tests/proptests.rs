//! Differential properties: the static analyzer versus the SIMT executor.
//!
//! Soundness is the whole point of the abstract domain, so it is tested
//! as a property over *arbitrary* kernels, not hand-picked ones: every
//! address the executor emits must lie inside the analyzer's static
//! per-PC interval, and the static coalescing degree must equal what
//! `coalesce.rs` measures on a uniform warp.

use gmap_analyze::{analyze_kernel, verify_against_trace};
use gmap_gpu::coalesce::coalesce_addrs;
use gmap_gpu::exec::{execute_kernel, WarpEvent};
use gmap_gpu::kernel::{dsl, IndexExpr, KernelBuilder, Pred, Stmt, Trip};
use gmap_trace::record::Pc;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every address emitted by `exec` lies inside the analyzer's static
    /// per-PC interval — for arbitrary affine coefficients (including
    /// wrapping ones), hashed patterns, loops with constant and hashed
    /// trips, and divergent branches.
    #[test]
    fn static_intervals_cover_every_dynamic_address(
        blocks in 1u32..4,
        tpb in 1u32..160,
        elems in 1u64..5000,
        base in -3000i64..3000,
        tid_coef in -40i64..40,
        lane_coef in -5i64..5,
        warp_coef in -70i64..70,
        block_coef in -100i64..100,
        iter_coef in -600i64..600,
        trip_sel in 0u8..3,
        spread in 0u32..4,
        pred_sel in 0u8..5,
        n in 0u32..300,
        seed in 0u64..1000,
    ) {
        let trip = match trip_sel {
            0 => Trip::Const(1),
            1 => Trip::Const(4),
            _ => Trip::Hashed { seed, base: 1, spread },
        };
        let pred = match pred_sel {
            0 => Pred::TidLt(n),
            1 => Pred::TidMod { m: n % 7 + 1, r: n % 3 },
            2 => Pred::LaneLt(n % 40),
            3 => Pred::BlockMod { m: n % 3 + 1, r: 0 },
            _ => Pred::Hashed { seed, percent: (n % 120) as u8 },
        };
        let k = KernelBuilder::new("prop", blocks, tpb)
            .array("a", elems)
            .array("b", elems + 7)
            .stmt(Stmt::Loop {
                trip,
                body: vec![
                    dsl::read(0x10, 0, IndexExpr::Affine {
                        base,
                        tid_coef,
                        lane_coef,
                        warp_coef,
                        block_coef,
                        iter_coefs: vec![(0, iter_coef)],
                    }),
                    Stmt::If {
                        pred,
                        then_body: vec![dsl::read(0x20, 1, IndexExpr::Hashed { seed })],
                        else_body: vec![dsl::write(0x28, 1, IndexExpr::HashedPerThread { seed })],
                    },
                ],
            })
            .stmt(dsl::read(0x30, 0, IndexExpr::tid_linear(base, tid_coef)))
            .build()
            .expect("structurally valid");
        let report = analyze_kernel(&k);
        let app = execute_kernel(&k);
        let violations = verify_against_trace(&report, &app, 5);
        prop_assert!(violations.is_empty(), "soundness violations: {violations:?}");
    }

    /// On uniform warps (no divergence), the static coalescing degree of
    /// each site equals the transaction count `coalesce_addrs` produces
    /// for warp 0's first execution of that PC — affine or hashed.
    #[test]
    fn static_degree_matches_dynamic_coalescing(
        tpb in 32u32..129,
        stride in -48i64..48,
        base in 0i64..64,
        elems in 1024u64..10000,
        use_hashed in any::<bool>(),
        seed in 0u64..1000,
        trip in 1u32..4,
        iter_coef in -200i64..200,
    ) {
        let index = if use_hashed {
            IndexExpr::Hashed { seed }
        } else {
            IndexExpr::Affine {
                base,
                tid_coef: stride,
                lane_coef: 0,
                warp_coef: 0,
                block_coef: 0,
                iter_coefs: vec![(0, iter_coef)],
            }
        };
        let k = KernelBuilder::new("prop", 2u32, tpb)
            .array("a", elems)
            .stmt(dsl::loop_n(trip, vec![dsl::read(0x10, 0, index)]))
            .build()
            .expect("structurally valid");
        let report = analyze_kernel(&k);
        let site = report.sites.iter().find(|s| s.pc == 0x10).expect("site");
        let app = execute_kernel(&k);
        let w0 = app
            .warps
            .iter()
            .find(|w| w.block == 0 && w.warp.0 == 0)
            .expect("warp 0");
        let first = w0
            .events
            .iter()
            .find_map(|e| match e {
                WarpEvent::Access { pc, lane_addrs, .. } if *pc == Pc(0x10) => Some(lane_addrs),
                _ => None,
            })
            .expect("warp 0 executes pc 0x10");
        let addrs: Vec<_> = first.iter().map(|&(_, a)| a).collect();
        let dynamic = coalesce_addrs(&addrs, 128).len() as u32;
        prop_assert_eq!(
            site.degree, dynamic,
            "static degree {} != dynamic transactions {}", site.degree, dynamic
        );
    }
}
