//! Differential properties: the static analyzer versus the SIMT executor.
//!
//! Soundness is the whole point of the abstract domain, so it is tested
//! as a property over *arbitrary* kernels, not hand-picked ones: every
//! address the executor emits must lie inside the analyzer's static
//! per-PC interval, and the static coalescing degree must equal what
//! `coalesce.rs` measures on a uniform warp.

use gmap_analyze::{analyze_kernel, verify_against_trace, PairVerdict, StaticReport};
use gmap_gpu::coalesce::coalesce_addrs;
use gmap_gpu::exec::{execute_kernel, WarpEvent};
use gmap_gpu::kernel::{dsl, IndexExpr, KernelBuilder, KernelDesc, Pred, Stmt, Trip};
use gmap_gpu::race::{dynamic_races, RaceScope};
use gmap_trace::record::Pc;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every address emitted by `exec` lies inside the analyzer's static
    /// per-PC interval — for arbitrary affine coefficients (including
    /// wrapping ones), hashed patterns, loops with constant and hashed
    /// trips, and divergent branches.
    #[test]
    fn static_intervals_cover_every_dynamic_address(
        blocks in 1u32..4,
        tpb in 1u32..160,
        elems in 1u64..5000,
        base in -3000i64..3000,
        tid_coef in -40i64..40,
        lane_coef in -5i64..5,
        warp_coef in -70i64..70,
        block_coef in -100i64..100,
        iter_coef in -600i64..600,
        trip_sel in 0u8..3,
        spread in 0u32..4,
        pred_sel in 0u8..5,
        n in 0u32..300,
        seed in 0u64..1000,
    ) {
        let trip = match trip_sel {
            0 => Trip::Const(1),
            1 => Trip::Const(4),
            _ => Trip::Hashed { seed, base: 1, spread },
        };
        let pred = match pred_sel {
            0 => Pred::TidLt(n),
            1 => Pred::TidMod { m: n % 7 + 1, r: n % 3 },
            2 => Pred::LaneLt(n % 40),
            3 => Pred::BlockMod { m: n % 3 + 1, r: 0 },
            _ => Pred::Hashed { seed, percent: (n % 120) as u8 },
        };
        let k = KernelBuilder::new("prop", blocks, tpb)
            .array("a", elems)
            .array("b", elems + 7)
            .stmt(Stmt::Loop {
                trip,
                body: vec![
                    dsl::read(0x10, 0, IndexExpr::Affine {
                        base,
                        tid_coef,
                        lane_coef,
                        warp_coef,
                        block_coef,
                        iter_coefs: vec![(0, iter_coef)],
                    }),
                    Stmt::If {
                        pred,
                        then_body: vec![dsl::read(0x20, 1, IndexExpr::Hashed { seed })],
                        else_body: vec![dsl::write(0x28, 1, IndexExpr::HashedPerThread { seed })],
                    },
                ],
            })
            .stmt(dsl::read(0x30, 0, IndexExpr::tid_linear(base, tid_coef)))
            .build()
            .expect("structurally valid");
        let report = analyze_kernel(&k);
        let app = execute_kernel(&k);
        let violations = verify_against_trace(&report, &app, 5);
        prop_assert!(violations.is_empty(), "soundness violations: {violations:?}");
    }

    /// On uniform warps (no divergence), the static coalescing degree of
    /// each site equals the transaction count `coalesce_addrs` produces
    /// for warp 0's first execution of that PC — affine or hashed.
    #[test]
    fn static_degree_matches_dynamic_coalescing(
        tpb in 32u32..129,
        stride in -48i64..48,
        base in 0i64..64,
        elems in 1024u64..10000,
        use_hashed in any::<bool>(),
        seed in 0u64..1000,
        trip in 1u32..4,
        iter_coef in -200i64..200,
    ) {
        let index = if use_hashed {
            IndexExpr::Hashed { seed }
        } else {
            IndexExpr::Affine {
                base,
                tid_coef: stride,
                lane_coef: 0,
                warp_coef: 0,
                block_coef: 0,
                iter_coefs: vec![(0, iter_coef)],
            }
        };
        let k = KernelBuilder::new("prop", 2u32, tpb)
            .array("a", elems)
            .stmt(dsl::loop_n(trip, vec![dsl::read(0x10, 0, index)]))
            .build()
            .expect("structurally valid");
        let report = analyze_kernel(&k);
        let site = report.sites.iter().find(|s| s.pc == 0x10).expect("site");
        let app = execute_kernel(&k);
        let w0 = app
            .warps
            .iter()
            .find(|w| w.block == 0 && w.warp.0 == 0)
            .expect("warp 0");
        let first = w0
            .events
            .iter()
            .find_map(|e| match e {
                WarpEvent::Access { pc, lane_addrs, .. } if *pc == Pc(0x10) => Some(lane_addrs),
                _ => None,
            })
            .expect("warp 0 executes pc 0x10");
        let addrs: Vec<_> = first.iter().map(|&(_, a)| a).collect();
        let dynamic = coalesce_addrs(&addrs, 128).len() as u32;
        prop_assert_eq!(
            site.degree, dynamic,
            "static degree {} != dynamic transactions {}", site.degree, dynamic
        );
    }
}

/// Checks the two differential race invariants on one kernel:
///
/// 1. a certified kernel exhibits **zero** dynamic races (soundness of
///    the certificate), and
/// 2. every dynamic race maps to a static pair whose verdict in that
///    scope is proven or potential (the detector never calls a really
///    racing pair safe).
fn assert_race_differential(kernel: &KernelDesc, report: &StaticReport) {
    let trace = execute_kernel(kernel);
    let dynamic = dynamic_races(kernel, &trace, 4096);
    if report.race_certified {
        assert!(
            dynamic.is_empty(),
            "{}: certified but dynamically racy: {:?}",
            kernel.name,
            dynamic
        );
    }
    for r in &dynamic {
        let hit = report.races.iter().any(|p| {
            let pcs_match = (p.pc_a.min(p.pc_b), p.pc_a.max(p.pc_b))
                == (r.pc_lo.min(r.pc_hi), r.pc_lo.max(r.pc_hi));
            let verdict = match r.scope {
                RaceScope::CrossWarpSameBlock => p.same_block,
                RaceScope::InterBlock => p.inter_block,
            };
            pcs_match && matches!(verdict, PairVerdict::Proven | PairVerdict::Potential)
        });
        assert!(
            hit,
            "{}: dynamic race {:?} has no static proven/potential pair in {:?}",
            kernel.name, r, report.races
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Differential soundness of the race detector over arbitrary phased
    /// kernels: two writes and a read of one array with random affine
    /// coefficients, optional barriers between them and an optional
    /// enclosing loop. Whatever the verdicts, a certificate implies a
    /// dynamically race-free execution, and every observed race is a
    /// statically proven/potential pair.
    #[test]
    fn race_certificates_agree_with_the_dynamic_checker(
        blocks in 1u32..4,
        tpb in 1u32..130,
        elems in 1u64..4096,
        base_a in 0i64..8,
        tid_a in -3i64..4,
        lane_a in -2i64..3,
        warp_a in -4i64..5,
        block_a in -8i64..9,
        base_b in 0i64..8,
        tid_b in -3i64..4,
        block_b in -8i64..9,
        iter_coef in -4i64..5,
        trip in 1u32..4,
        sync_ab in any::<bool>(),
        sync_bc in any::<bool>(),
        wrap_in_loop in any::<bool>(),
    ) {
        let idx_a = IndexExpr::Affine {
            base: base_a,
            tid_coef: tid_a,
            lane_coef: lane_a,
            warp_coef: warp_a,
            block_coef: block_a,
            iter_coefs: if wrap_in_loop { vec![(0, iter_coef)] } else { vec![] },
        };
        let idx_b = IndexExpr::Affine {
            base: base_b,
            tid_coef: tid_b,
            lane_coef: 0,
            warp_coef: 0,
            block_coef: block_b,
            iter_coefs: vec![],
        };
        let mut body = vec![dsl::write(0x10, 0, idx_a.clone())];
        if sync_ab {
            body.push(Stmt::Sync);
        }
        body.push(dsl::write(0x20, 0, idx_b));
        if sync_bc {
            body.push(Stmt::Sync);
        }
        body.push(dsl::read(0x30, 0, idx_a));
        if wrap_in_loop {
            body = vec![dsl::loop_n(trip, body)];
        }
        let mut builder = KernelBuilder::new("race-prop", blocks, tpb).array("a", elems);
        for stmt in body {
            builder = builder.stmt(stmt);
        }
        let k = builder.build().expect("structurally valid");
        let report = analyze_kernel(&k);
        assert_race_differential(&k, &report);
    }
}

/// Every built-in workload at every scale runs through the differential
/// race check: the detector's verdicts must agree with the executor on
/// all 18 models, and certified builtins must execute without a single
/// dynamic race.
#[test]
fn builtin_workloads_pass_the_race_differential() {
    use gmap_gpu::workloads::{self, Scale};

    let mut certified = Vec::new();
    for scale in [Scale::Tiny, Scale::Small] {
        for kernel in workloads::all(scale) {
            let report = analyze_kernel(&kernel);
            // Race findings never escalate a builtin to an error: the
            // racy models (reduction-style accumulations) declare no
            // barrier phases, so their proven races stay warnings.
            assert!(
                !report.has_errors(),
                "{} @ {scale:?}: {:?}",
                kernel.name,
                report.findings
            );
            assert_race_differential(&kernel, &report);
            if scale == Scale::Tiny && report.race_certified {
                certified.push(kernel.name.clone());
            }
        }
    }
    // The truly race-free builtins must actually earn their certificate;
    // matrixmul is the only one that needs barrier reasoning for it.
    assert!(
        certified.iter().any(|n| n == "matrixmul"),
        "matrixmul lost its certificate: {certified:?}"
    );
}
