//! The analyzer over every shipped workload, plus the negative fixtures.
//!
//! All 18 built-in workload models at all three scales must be *clean*:
//! zero error findings (warnings are fine — kmeans is fully uncoalesced
//! by design). Each negative fixture must trip exactly the check it was
//! built for, with a PC-level diagnostic.

use gmap_analyze::{analyze_kernel, fixtures, FindingKind, Severity};
use gmap_gpu::workloads::{self, Scale};

#[test]
fn all_workloads_all_scales_are_error_free() {
    for scale in [Scale::Tiny, Scale::Small, Scale::Default] {
        for kernel in workloads::all(scale) {
            let report = analyze_kernel(&kernel);
            let errors: Vec<_> = report.errors().collect();
            assert!(
                errors.is_empty(),
                "{} @ {scale:?}: unexpected errors {errors:?}",
                kernel.name
            );
            assert!(
                !report.sites.is_empty(),
                "{}: no access sites analyzed",
                kernel.name
            );
        }
    }
}

#[test]
fn every_site_of_every_workload_has_a_positive_degree() {
    for kernel in workloads::all(Scale::Small) {
        let report = analyze_kernel(&kernel);
        for site in &report.sites {
            assert!(
                site.degree >= 1 && site.degree <= 32,
                "{} pc {:#x}: degree {} out of range",
                kernel.name,
                site.pc,
                site.degree
            );
            assert!(
                site.addrs.lo <= site.addrs.hi,
                "{} pc {:#x}: empty address range",
                kernel.name,
                site.pc
            );
        }
    }
}

#[test]
fn kmeans_is_flagged_fully_uncoalesced_but_admissible() {
    // Table 1 of the paper: kmeans' feature walk strides 34 elements
    // (136 B) between adjacent lanes — more than one 128 B transaction
    // per lane, i.e. degree 32. A warning, never an error.
    let kernel = workloads::by_name("kmeans", Scale::Small).expect("known");
    let report = analyze_kernel(&kernel);
    assert!(!report.has_errors());
    assert!(
        report
            .warnings()
            .any(|f| f.kind == FindingKind::Uncoalesced),
        "kmeans should carry an uncoalesced warning: {:?}",
        report.findings
    );
}

#[test]
fn oob_fixture_is_detected_with_pc() {
    let report = analyze_kernel(&fixtures::oob_affine());
    let f = report
        .errors()
        .find(|f| f.kind == FindingKind::OutOfBounds)
        .expect("out-of-bounds finding");
    assert_eq!(f.pc, Some(0x10), "diagnostic must name the access PC");
    assert!(f.message.contains("wraps"), "message: {}", f.message);
    // The site itself reports the wrap.
    let site = &report.sites[0];
    assert!(!site.in_bounds);
}

#[test]
fn uncoalesced_fixture_has_degree_32_at_pc() {
    let report = analyze_kernel(&fixtures::uncoalesced());
    assert_eq!(report.sites.len(), 1);
    let site = &report.sites[0];
    assert_eq!(site.pc, 0x20);
    assert_eq!(site.degree, 32, "one 128B segment per lane");
    assert_eq!(site.lane_stride_bytes, Some(128));
    let f = report
        .warnings()
        .find(|f| f.kind == FindingKind::Uncoalesced)
        .expect("uncoalesced warning");
    assert_eq!(f.pc, Some(0x20));
    // Fully uncoalesced alone is a performance hazard, not an error.
    assert!(!report.has_errors());
}

#[test]
fn barrier_divergence_fixture_is_an_error() {
    let report = analyze_kernel(&fixtures::barrier_divergent());
    let f = report
        .errors()
        .find(|f| f.kind == FindingKind::BarrierDivergence)
        .expect("barrier-divergence finding");
    // The barrier itself has no PC; the diagnostic anchors to the
    // nearest preceding access.
    assert_eq!(f.pc, Some(0x30));
    assert!(f.message.contains("deadlock"));
}

#[test]
fn overlapping_write_fixture_is_an_error() {
    let report = analyze_kernel(&fixtures::overlapping_write());
    let f = report
        .errors()
        .find(|f| f.kind == FindingKind::OverlappingWrite)
        .expect("overlapping-write finding");
    assert!(f.message.contains('a') && f.message.contains('b'));
}

#[test]
fn array_size_overflow_is_reported_as_its_own_kind() {
    // build() rejects such specs outright, so analyze a hand-built
    // (unvalidated) descriptor the way a wire request would arrive.
    let desc = gmap_gpu::kernel::KernelDesc {
        name: "huge".into(),
        launch: gmap_gpu::hierarchy::LaunchConfig::new(1u32, 32u32),
        arrays: vec![gmap_gpu::kernel::ArrayDesc {
            name: "big".into(),
            base: gmap_trace::record::ByteAddr(0),
            elems: u64::MAX / 2,
            elem_size: 8,
        }],
        body: vec![],
    };
    let report = analyze_kernel(&desc);
    assert!(report.has_errors());
    assert_eq!(
        report.errors().next().unwrap().kind,
        FindingKind::ArraySizeOverflow
    );
}

#[test]
fn clean_fixture_really_is_clean() {
    let report = analyze_kernel(&fixtures::clean_streaming());
    assert!(
        report.findings.is_empty(),
        "expected no findings: {:?}",
        report.findings
    );
    assert!(report.sites.iter().all(|s| s.in_bounds));
}

#[test]
fn all_fixtures_have_errors_and_render_mentions_them() {
    for (name, kernel) in fixtures::all() {
        let report = analyze_kernel(&kernel);
        let has_problem = if name == "uncoalesced" {
            report
                .findings
                .iter()
                .any(|f| f.severity >= Severity::Warning)
        } else {
            report.has_errors()
        };
        assert!(has_problem, "fixture {name} produced no findings");
        let text = report.render();
        assert!(text.contains(name), "render names the kernel");
    }
}

#[test]
fn reports_serialize_round_trip() {
    let report = analyze_kernel(&fixtures::oob_affine());
    let json = serde_json::to_string(&report).expect("serialize");
    let back: gmap_analyze::StaticReport = serde_json::from_str(&json).expect("parse");
    assert_eq!(back, report);
}

/// Dynamic races observed when executing `kernel`, with a generous cap.
fn observed_races(kernel: &gmap_gpu::KernelDesc) -> Vec<gmap_gpu::DynamicRace> {
    let trace = gmap_gpu::exec::execute_kernel(kernel);
    gmap_gpu::dynamic_races(kernel, &trace, 1024)
}

#[test]
fn positive_race_fixtures_are_certified_and_dynamically_clean() {
    for kernel in [
        fixtures::phased_stencil(),
        fixtures::phased_reduction(),
        fixtures::clean_streaming(),
    ] {
        let report = analyze_kernel(&kernel);
        assert!(
            report.race_certified,
            "{}: expected certification, pairs {:?}",
            kernel.name, report.races
        );
        assert!(
            !report.has_errors(),
            "{}: unexpected errors {:?}",
            kernel.name,
            report.findings
        );
        let dynamic = observed_races(&kernel);
        assert!(
            dynamic.is_empty(),
            "{}: certified kernel shows dynamic races {dynamic:?}",
            kernel.name
        );
    }
}

#[test]
fn racy_fixtures_are_caught_statically_and_dynamically() {
    use gmap_analyze::PairVerdict;

    // (fixture, expected array name, proven same-block?, proven inter-block?)
    let cases = [
        ("race-ww", "acc", true, false),
        ("race-rw", "tile", true, true),
        ("race-interblock", "out", false, true),
        ("race-ww-interblock", "out", false, true),
    ];
    for (name, array, same_block, inter_block) in cases {
        let kernel = fixtures::by_name(name).expect("known fixture");
        let report = analyze_kernel(&kernel);
        assert!(!report.race_certified, "{name}: must not be certified");
        assert!(
            report.errors().any(|f| matches!(
                f.kind,
                FindingKind::RaceWriteWrite | FindingKind::RaceReadWrite
            )),
            "{name}: expected an error-severity race finding, got {:?}",
            report.findings
        );
        let pair = report
            .races
            .iter()
            .find(|p| {
                p.array_name == array
                    && (p.same_block == PairVerdict::Proven || p.inter_block == PairVerdict::Proven)
            })
            .unwrap_or_else(|| panic!("{name}: no proven pair on '{array}': {:?}", report.races));
        assert_eq!(
            pair.same_block == PairVerdict::Proven,
            same_block,
            "{name}: same-block verdict {:?}",
            pair.same_block
        );
        assert_eq!(
            pair.inter_block == PairVerdict::Proven,
            inter_block,
            "{name}: inter-block verdict {:?}",
            pair.inter_block
        );
        assert!(
            pair.witness.is_some(),
            "{name}: proven pair needs a witness"
        );

        // The dynamic oracle agrees, and every dynamic race maps back to
        // a statically proven pair on the same (array, PC-pair, scope).
        let dynamic = observed_races(&kernel);
        assert!(!dynamic.is_empty(), "{name}: dynamic checker saw nothing");
        for r in &dynamic {
            let hit = report.races.iter().any(|p| {
                (p.pc_a, p.pc_b) == (r.pc_lo, r.pc_hi)
                    && match r.scope {
                        gmap_gpu::RaceScope::CrossWarpSameBlock => {
                            p.same_block == PairVerdict::Proven
                        }
                        gmap_gpu::RaceScope::InterBlock => p.inter_block == PairVerdict::Proven,
                    }
            });
            assert!(hit, "{name}: dynamic race {r:?} not statically proven");
        }
    }
}
