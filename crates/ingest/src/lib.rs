//! Bounded-memory streaming trace ingestion for G-MAP.
//!
//! The paper's premise is compressing *real* GPU access streams into
//! statistical models — but real traces from binary instrumentation run
//! to many gigabytes and cannot be materialized as a `Vec<TraceEntry>`.
//! This crate profiles such traces in **one streaming pass** with a
//! resident trace buffer that is constant in trace length, and emits —
//! from the same pass — an online per-PC pattern classification (the
//! gem-forge `MemoryAccessPattern` hierarchy) and a CUTHERMO-style
//! per-array heat-map report.
//!
//! Layers:
//!
//! - [`reader`] — incremental parsing of both trace formats: the
//!   push-based [`ChunkParser`] and the pull-based [`TraceReader`]
//!   iterator, byte-identical in output and errors to the materializing
//!   `gmap_trace::io` readers.
//! - [`ingestor`] — the push-based [`Ingestor`]: bounded per-warp lane
//!   queues feed the *shared* warp-reconstruction step
//!   (`gmap_core::ingest::pop_warp_instruction`) incrementally, so the
//!   resulting [`GmapProfile`](gmap_core::profile::GmapProfile) is
//!   byte-identical to the materialize-then-profile path (differentially
//!   tested).
//! - [`classify`] — the monotone per-PC FSM (UNKNOWN → CONSTANT → LINEAR
//!   → QUADRIC → INDIRECT → RANDOM) with conditional-access tracking.
//! - [`report`] — the adaptive heat histogram, array detection, and
//!   text/JSON rendering.
//!
//! # Quickstart
//!
//! ```
//! use gmap_ingest::{Ingestor, IngestConfig};
//! use gmap_gpu::hierarchy::LaunchConfig;
//!
//! // A tiny text trace: one warp, unit stride.
//! let mut trace = String::new();
//! for tid in 0..32u32 {
//!     trace.push_str(&format!("{tid} 0x42 R {:#x}\n", 0x1000 + tid * 4));
//! }
//! let launch = LaunchConfig::new(1u32, 32u32);
//! let mut ing = Ingestor::new("demo", launch, IngestConfig::default());
//! for chunk in trace.as_bytes().chunks(7) {
//!     ing.push_bytes(chunk).expect("well-formed");
//! }
//! let outcome = ing.finish().expect("non-empty");
//! assert_eq!(outcome.profile.num_slots(), 1);
//! println!("{}", outcome.report.render_text());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classify;
pub mod ingestor;
pub mod reader;
pub mod report;

pub use classify::{ClassifierConfig, OnlineClassifier, PatternClass, PatternFsm, PcSummary};
pub use ingestor::{
    ingest_reader, IngestConfig, IngestError, IngestOutcome, IngestStats, Ingestor, OverflowPolicy,
};
pub use reader::{ChunkParser, TraceFormat, TraceReader, DEFAULT_CHUNK_BYTES};
pub use report::{AdaptiveHeat, ArraySummary, TraceReport};
