//! Incremental, bounded-memory parsing of both trace formats.
//!
//! [`ChunkParser`] is a push-based parser: feed it byte chunks of any
//! size (network reads, file blocks, single bytes) and drain complete
//! [`TraceEntry`] records as they become available. It sniffs the format
//! from the first four bytes (`GMTR` → binary, anything else → text) and
//! delegates the per-line / per-record decoding to `gmap_trace::io`
//! ([`parse_text_line`], [`decode_record`]), so its output is
//! byte-identical to the materializing `read_text`/`read_binary` readers —
//! including error indices: text errors carry the physical 1-based line
//! number, binary errors the 1-based record number.
//!
//! Only a partial trailing line or record is ever buffered (bounded by
//! [`MAX_LINE_BYTES`]); completed entries are handed to the caller.
//! [`TraceReader`] wraps the parser into a pull-based iterator over any
//! `Read` source.

use gmap_trace::io::{
    decode_record, parse_text_line, ParseTraceError, TraceEntry, HEADER_BYTES, MAGIC, RECORD_BYTES,
};
use std::io::Read;

/// Longest accepted text line (including comments). A well-formed entry
/// line is under 100 bytes; the bound only exists to keep the carry
/// buffer — and thus parser memory — constant in trace length.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Default chunk size for the pull-based [`TraceReader`].
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Which on-disk format the parser detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// `tid pc kind addr` lines.
    Text,
    /// `GMTR` magic + count + fixed records.
    Binary,
}

impl TraceFormat {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TraceFormat::Text => "text",
            TraceFormat::Binary => "binary",
        }
    }
}

#[derive(Debug)]
enum State {
    /// Accumulating the first 4 bytes to decide the format.
    Sniff,
    Text,
    /// Saw the magic; accumulating the 8-byte record count.
    BinaryHeader,
    BinaryRecords,
    /// All declared records decoded; any further byte is an error.
    BinaryDone,
}

/// Push-based incremental trace parser. See the module docs.
#[derive(Debug)]
pub struct ChunkParser {
    state: State,
    /// Partial trailing line (text) or partial header/record (binary).
    carry: Vec<u8>,
    /// Physical 1-based line counter (text format).
    line_no: usize,
    /// Records decoded so far (binary format).
    records: u64,
    /// Record count declared by the binary header.
    declared: u64,
    out: Vec<TraceEntry>,
    failed: bool,
}

impl Default for ChunkParser {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkParser {
    /// A parser in the format-sniffing state.
    pub fn new() -> Self {
        ChunkParser {
            state: State::Sniff,
            carry: Vec::new(),
            line_no: 0,
            records: 0,
            declared: 0,
            out: Vec::new(),
            failed: false,
        }
    }

    /// The detected format, once at least 4 bytes have been seen.
    pub fn format(&self) -> Option<TraceFormat> {
        match self.state {
            State::Sniff => None,
            State::Text => Some(TraceFormat::Text),
            _ => Some(TraceFormat::Binary),
        }
    }

    /// Bytes currently buffered (partial line/record). Bounded by
    /// [`MAX_LINE_BYTES`]; this is the parser's entire variable memory
    /// besides undrained output entries.
    pub fn buffered_bytes(&self) -> usize {
        self.carry.len()
    }

    /// Feeds one chunk. Completed entries accumulate until [`Self::drain`]
    /// (`ChunkParser::drain`) is called.
    ///
    /// # Errors
    ///
    /// Returns the same [`ParseTraceError`]s the materializing readers
    /// produce, at the same indices. After an error the parser is
    /// poisoned: further pushes fail.
    pub fn push(&mut self, chunk: &[u8]) -> Result<(), ParseTraceError> {
        if self.failed {
            return Err(poisoned());
        }
        let r = self.push_inner(chunk);
        self.failed = r.is_err();
        r
    }

    /// Signals end of input, flushing a final unterminated text line and
    /// validating binary completeness.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError::Malformed`] for a truncated binary
    /// header or a partial/missing final record, mirroring `read_binary`.
    pub fn finish(&mut self) -> Result<(), ParseTraceError> {
        if self.failed {
            return Err(poisoned());
        }
        let r = self.finish_inner();
        self.failed = r.is_err();
        r
    }

    /// Removes and returns the entries parsed so far.
    pub fn drain(&mut self) -> std::vec::Drain<'_, TraceEntry> {
        self.out.drain(..)
    }

    fn push_inner(&mut self, mut chunk: &[u8]) -> Result<(), ParseTraceError> {
        if let State::Sniff = self.state {
            self.carry.extend_from_slice(chunk);
            if self.carry.len() < MAGIC.len() {
                return Ok(());
            }
            let data = std::mem::take(&mut self.carry);
            self.state = if data.starts_with(MAGIC) {
                State::BinaryHeader
            } else {
                State::Text
            };
            // Re-enter with the sniffed bytes: the header branch below
            // re-accumulates the magic + count, the text branch parses.
            return self.push_inner(&data);
        }
        if let State::BinaryHeader = self.state {
            // Carry holds magic + partial count; complete it to 12 bytes.
            let need = HEADER_BYTES - self.carry.len();
            let take = need.min(chunk.len());
            self.carry.extend_from_slice(&chunk[..take]);
            chunk = &chunk[take..];
            if self.carry.len() < HEADER_BYTES {
                return Ok(());
            }
            let count: [u8; 8] = self.carry[MAGIC.len()..HEADER_BYTES]
                .try_into()
                .expect("fixed slice");
            self.declared = u64::from_le_bytes(count);
            self.carry.clear();
            self.state = if self.declared == 0 {
                State::BinaryDone
            } else {
                State::BinaryRecords
            };
        }
        self.dispatch(chunk)
    }

    fn dispatch(&mut self, chunk: &[u8]) -> Result<(), ParseTraceError> {
        match self.state {
            State::Text => self.push_text(chunk),
            State::BinaryRecords => self.push_records(chunk),
            State::BinaryDone => {
                if chunk.is_empty() {
                    Ok(())
                } else {
                    Err(trailing_data(self.declared))
                }
            }
            // Re-entered only via push_inner, which consumes these states.
            State::Sniff | State::BinaryHeader => {
                debug_assert!(chunk.is_empty());
                Ok(())
            }
        }
    }

    fn push_text(&mut self, mut chunk: &[u8]) -> Result<(), ParseTraceError> {
        while let Some(nl) = chunk.iter().position(|&b| b == b'\n') {
            let (line, rest) = chunk.split_at(nl);
            chunk = &rest[1..];
            self.line_no += 1;
            if self.carry.is_empty() {
                self.parse_line_bytes(line)?;
            } else {
                self.carry.extend_from_slice(line);
                let full = std::mem::take(&mut self.carry);
                self.parse_line_bytes(&full)?;
            }
        }
        if self.carry.len() + chunk.len() > MAX_LINE_BYTES {
            return Err(ParseTraceError::Malformed {
                index: self.line_no + 1,
                field: "line",
                reason: format!("line exceeds {MAX_LINE_BYTES} bytes"),
            });
        }
        self.carry.extend_from_slice(chunk);
        Ok(())
    }

    fn parse_line_bytes(&mut self, mut line: &[u8]) -> Result<(), ParseTraceError> {
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let text = std::str::from_utf8(line).map_err(|e| ParseTraceError::Malformed {
            index: self.line_no,
            field: "line",
            reason: format!("invalid utf-8: {e}"),
        })?;
        if let Some(entry) = parse_text_line(text, self.line_no)? {
            self.out.push(entry);
        }
        Ok(())
    }

    fn push_records(&mut self, mut chunk: &[u8]) -> Result<(), ParseTraceError> {
        // Complete a partial record from the previous chunk first.
        if !self.carry.is_empty() {
            let need = RECORD_BYTES - self.carry.len();
            let take = need.min(chunk.len());
            self.carry.extend_from_slice(&chunk[..take]);
            chunk = &chunk[take..];
            if self.carry.len() < RECORD_BYTES {
                return Ok(());
            }
            let rec: [u8; RECORD_BYTES] = self.carry[..].try_into().expect("fixed slice");
            self.carry.clear();
            self.decode(&rec)?;
        }
        while self.records < self.declared && chunk.len() >= RECORD_BYTES {
            let (rec, rest) = chunk.split_at(RECORD_BYTES);
            chunk = rest;
            self.decode(rec.try_into().expect("fixed slice"))?;
        }
        if self.records == self.declared {
            self.state = State::BinaryDone;
            if !chunk.is_empty() {
                return Err(trailing_data(self.declared));
            }
            return Ok(());
        }
        self.carry.extend_from_slice(chunk);
        Ok(())
    }

    fn decode(&mut self, rec: &[u8; RECORD_BYTES]) -> Result<(), ParseTraceError> {
        self.out.push(decode_record(rec));
        self.records += 1;
        Ok(())
    }

    fn finish_inner(&mut self) -> Result<(), ParseTraceError> {
        match self.state {
            // Fewer than 4 bytes total: cannot be binary. An empty input
            // is an empty text trace; a fragment parses as a final line.
            State::Sniff => {
                let data = std::mem::take(&mut self.carry);
                self.state = State::Text;
                if !data.is_empty() {
                    self.line_no += 1;
                    self.parse_line_bytes(&data)?;
                }
                Ok(())
            }
            State::Text => {
                if !self.carry.is_empty() {
                    let data = std::mem::take(&mut self.carry);
                    self.line_no += 1;
                    self.parse_line_bytes(&data)?;
                }
                Ok(())
            }
            State::BinaryHeader => Err(ParseTraceError::Malformed {
                index: 0,
                field: "count",
                reason: "truncated header (record count)".into(),
            }),
            State::BinaryRecords => Err(ParseTraceError::Malformed {
                index: self.records as usize + 1,
                field: "record",
                reason: "truncated record".into(),
            }),
            State::BinaryDone => Ok(()),
        }
    }
}

fn trailing_data(declared: u64) -> ParseTraceError {
    ParseTraceError::Malformed {
        index: declared as usize + 1,
        field: "record",
        reason: "trailing data after declared record count".into(),
    }
}

fn poisoned() -> ParseTraceError {
    ParseTraceError::Malformed {
        index: 0,
        field: "stream",
        reason: "parser already failed".into(),
    }
}

/// Pull-based streaming reader: iterates [`TraceEntry`] records from any
/// `Read` source in fixed-size chunks, holding at most one chunk plus one
/// partial line/record in memory.
pub struct TraceReader<R: Read> {
    inner: R,
    parser: ChunkParser,
    buf: Vec<u8>,
    pending: std::collections::VecDeque<TraceEntry>,
    done: bool,
}

impl<R: Read> std::fmt::Debug for TraceReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceReader")
            .field("parser", &self.parser)
            .field("pending", &self.pending.len())
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<R: Read> TraceReader<R> {
    /// Wraps `inner` with the default chunk size.
    pub fn new(inner: R) -> Self {
        Self::with_chunk_size(inner, DEFAULT_CHUNK_BYTES)
    }

    /// Wraps `inner`, reading `chunk_size` bytes at a time.
    pub fn with_chunk_size(inner: R, chunk_size: usize) -> Self {
        TraceReader {
            inner,
            parser: ChunkParser::new(),
            buf: vec![0u8; chunk_size.max(1)],
            pending: std::collections::VecDeque::new(),
            done: false,
        }
    }

    /// The detected format, once at least 4 bytes have been read.
    pub fn format(&self) -> Option<TraceFormat> {
        self.parser.format()
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceEntry, ParseTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(e) = self.pending.pop_front() {
                return Some(Ok(e));
            }
            if self.done {
                return None;
            }
            match self.inner.read(&mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    if let Err(e) = self.parser.finish() {
                        return Some(Err(e));
                    }
                    self.pending.extend(self.parser.drain());
                }
                Ok(n) => {
                    let chunk = &self.buf[..n];
                    if let Err(e) = self.parser.push(chunk) {
                        self.done = true;
                        return Some(Err(e));
                    }
                    self.pending.extend(self.parser.drain());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.done = true;
                    return Some(Err(ParseTraceError::Io(e)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmap_trace::io::{read_binary, read_text, write_binary, write_text};
    use gmap_trace::record::{ByteAddr, MemAccess, Pc, ThreadId};

    fn sample(n: u32) -> Vec<TraceEntry> {
        (0..n)
            .map(|i| {
                let acc = if i % 3 == 0 {
                    MemAccess::write(
                        Pc(0x100 + u64::from(i % 7)),
                        ByteAddr(0x4000 + u64::from(i) * 4),
                    )
                } else {
                    MemAccess::read(Pc(0x200), ByteAddr(0x9000 + u64::from(i) * 8))
                };
                (ThreadId(i % 64), acc)
            })
            .collect()
    }

    fn push_all(bytes: &[u8], step: usize) -> Result<Vec<TraceEntry>, ParseTraceError> {
        let mut p = ChunkParser::new();
        let mut out = Vec::new();
        for chunk in bytes.chunks(step.max(1)) {
            p.push(chunk)?;
            out.extend(p.drain());
        }
        p.finish()?;
        out.extend(p.drain());
        Ok(out)
    }

    #[test]
    fn text_chunked_matches_materialized_at_every_step() {
        let entries = sample(100);
        let mut buf = Vec::new();
        write_text(&mut buf, &entries).expect("write");
        let whole = read_text(&buf[..]).expect("read");
        for step in [1, 2, 3, 7, 64, 1 << 20] {
            assert_eq!(push_all(&buf, step).expect("parse"), whole, "step {step}");
        }
    }

    #[test]
    fn binary_chunked_matches_materialized_at_every_step() {
        let entries = sample(100);
        let mut buf = Vec::new();
        write_binary(&mut buf, &entries).expect("write");
        let whole = read_binary(&buf[..]).expect("read");
        for step in [1, 2, 5, 20, 21, 22, 1 << 20] {
            assert_eq!(push_all(&buf, step).expect("parse"), whole, "step {step}");
        }
    }

    #[test]
    fn text_final_line_without_newline_parses() {
        let got = push_all(b"0 0x10 R 0x80", 4).expect("parse");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.pc, Pc(0x10));
    }

    #[test]
    fn text_error_carries_physical_line_number() {
        let err = push_all(b"# c\n0 0x10 R 0x80\n0 0x10 Q 0x80\n", 5).unwrap_err();
        assert!(
            matches!(
                err,
                ParseTraceError::Malformed {
                    index: 3,
                    field: "kind",
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn binary_truncated_final_record_reported() {
        let entries = sample(3);
        let mut buf = Vec::new();
        write_binary(&mut buf, &entries).expect("write");
        buf.truncate(buf.len() - 5);
        let err = push_all(&buf, 8).unwrap_err();
        assert!(
            matches!(
                err,
                ParseTraceError::Malformed {
                    index: 3,
                    field: "record",
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn binary_trailing_bytes_reported() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample(2)).expect("write");
        buf.push(0xAB);
        let err = push_all(&buf, 7).unwrap_err();
        assert!(err.to_string().contains("trailing data"), "got {err}");
    }

    #[test]
    fn binary_truncated_header_reported() {
        let err = push_all(b"GMTR\x05\x00", 3).unwrap_err();
        assert!(
            matches!(&err, ParseTraceError::Malformed { field: "count", .. }),
            "got {err}"
        );
    }

    #[test]
    fn empty_input_is_empty_text_trace() {
        assert_eq!(push_all(b"", 1).expect("parse"), vec![]);
        let mut p = ChunkParser::new();
        p.finish().expect("finish");
        assert_eq!(p.format(), Some(TraceFormat::Text));
    }

    #[test]
    fn carry_stays_bounded() {
        let entries = sample(1000);
        let mut buf = Vec::new();
        write_text(&mut buf, &entries).expect("write");
        let mut p = ChunkParser::new();
        let mut peak = 0;
        for chunk in buf.chunks(13) {
            p.push(chunk).expect("push");
            p.drain();
            peak = peak.max(p.buffered_bytes());
        }
        p.finish().expect("finish");
        assert!(peak < 128, "carry held a whole trace: {peak}");
    }

    #[test]
    fn pull_reader_round_trips_both_formats() {
        let entries = sample(257);
        for write in [
            (|b: &mut Vec<u8>, e: &[TraceEntry]| write_text(b, e).expect("write"))
                as fn(&mut Vec<u8>, &[TraceEntry]),
            |b, e| write_binary(b, e).expect("write"),
        ] {
            let mut buf = Vec::new();
            write(&mut buf, &entries);
            let got: Result<Vec<_>, _> = TraceReader::with_chunk_size(&buf[..], 11).collect();
            assert_eq!(got.expect("read"), entries);
        }
    }
}
