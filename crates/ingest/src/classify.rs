//! Online per-PC access-pattern classification.
//!
//! A streaming port of the gem-forge `MemoryAccessPattern` idea: each
//! static memory instruction (PC) carries a small finite-state machine
//! that starts at the most specific hypothesis and only ever *relaxes*
//! down a fixed hierarchy as observed addresses contradict it:
//!
//! ```text
//! UNKNOWN → CONSTANT → LINEAR → QUADRIC → INDIRECT → RANDOM
//! ```
//!
//! - **CONSTANT**: every access hits the same address.
//! - **LINEAR**: `addr(i) = base + i · stride` (affine in one induction
//!   variable).
//! - **QUADRIC**: `addr(j, i) = base + j · strideJ + i · strideI` with
//!   `i < ni` — a rectangular nested loop (gem-forge's QUADRIC).
//! - **INDIRECT**: not affine, but confined to a bounded region — the
//!   signature of `a[b[i]]` gathers over a resident array. Traces carry no
//!   data values, so indirection is inferred from *bounded non-affinity*:
//!   the footprint span stays under `indirect_max_span`.
//! - **RANDOM**: not affine and unbounded (footprint span exceeded the
//!   limit). Terminal.
//!
//! gem-forge places INDIRECT outside its linear hierarchy; here it sits
//! between QUADRIC and RANDOM so the whole classification is a single
//! monotone rank — a property the test suite asserts: `rank` never
//! decreases over any input sequence.
//!
//! Classification rides the warp-reconstruction pass: each warp-level
//! instruction feeds the FSM of its `(pc, warp)` pair (per-warp streams
//! are affine; interleaving warps would destroy the pattern), and a PC's
//! verdict is the weakest (highest-rank) verdict across its tracked
//! warps. Conditional accesses — gem-forge's `ConditionalAccessPattern` —
//! are tracked orthogonally: a PC is conditional when some instruction
//! executed with fewer participating lanes than the warp has live lanes,
//! or when some active warp never executed the PC at all.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The monotone pattern hierarchy. Order matters: derived `Ord` is the
/// relaxation order, and [`PatternClass::rank`] is the numeric position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PatternClass {
    /// No access observed yet.
    Unknown,
    /// Single address.
    Constant,
    /// One affine induction variable.
    Linear,
    /// Two nested affine induction variables.
    Quadric,
    /// Non-affine but confined to a bounded region.
    Indirect,
    /// Non-affine, unbounded footprint.
    Random,
}

impl PatternClass {
    /// Position in the hierarchy; never decreases for a given stream.
    pub fn rank(self) -> u8 {
        self as u8
    }

    /// Stable uppercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PatternClass::Unknown => "UNKNOWN",
            PatternClass::Constant => "CONSTANT",
            PatternClass::Linear => "LINEAR",
            PatternClass::Quadric => "QUADRIC",
            PatternClass::Indirect => "INDIRECT",
            PatternClass::Random => "RANDOM",
        }
    }
}

/// Tuning knobs for the classifier. All bounds exist to keep classifier
/// memory constant in trace length.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Distinct PCs tracked; further PCs are counted but not classified.
    pub max_pcs: usize,
    /// Per PC, distinct warp FSMs tracked; further warps still update
    /// counts and footprint but not pattern state.
    pub max_warp_fsms: usize,
    /// Footprint span (max − min address) above which a non-affine
    /// stream is RANDOM rather than INDIRECT.
    pub indirect_max_span: u64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            max_pcs: 256,
            max_warp_fsms: 32,
            indirect_max_span: 64 << 20,
        }
    }
}

/// Per-stream pattern FSM in the gem-forge hierarchy.
#[derive(Debug, Clone)]
pub struct PatternFsm {
    class: PatternClass,
    /// First address of the stream; affine hypotheses are anchored here.
    base: u64,
    /// Inner (LINEAR) stride and index.
    stride_i: i64,
    i: u64,
    /// QUADRIC inner trip count, outer stride, outer index.
    ni: u64,
    stride_j: i64,
    j: u64,
    /// Observed footprint.
    lo: u64,
    hi: u64,
    count: u64,
    indirect_max_span: u64,
}

impl PatternFsm {
    /// A fresh FSM (UNKNOWN until the first access).
    pub fn new(indirect_max_span: u64) -> Self {
        PatternFsm {
            class: PatternClass::Unknown,
            base: 0,
            stride_i: 0,
            i: 0,
            ni: 0,
            stride_j: 0,
            j: 0,
            lo: u64::MAX,
            hi: 0,
            count: 0,
            indirect_max_span,
        }
    }

    /// Current verdict.
    pub fn class(&self) -> PatternClass {
        self.class
    }

    /// Accesses observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The LINEAR stride, meaningful for LINEAR and QUADRIC verdicts.
    pub fn stride(&self) -> i64 {
        self.stride_i
    }

    /// `(inner_len, outer_stride)`, meaningful for QUADRIC verdicts.
    pub fn quadric(&self) -> (u64, i64) {
        (self.ni, self.stride_j)
    }

    fn affine(base: u64, j: u64, sj: i64, i: u64, si: i64) -> u64 {
        base.wrapping_add((j as i64).wrapping_mul(sj) as u64)
            .wrapping_add((i as i64).wrapping_mul(si) as u64)
    }

    /// Feeds one address; the verdict only ever relaxes down the
    /// hierarchy.
    pub fn observe(&mut self, addr: u64) {
        self.count += 1;
        self.lo = self.lo.min(addr);
        self.hi = self.hi.max(addr);
        match self.class {
            PatternClass::Unknown => {
                self.base = addr;
                self.class = PatternClass::Constant;
            }
            PatternClass::Constant => {
                if addr != self.base {
                    // First deviation defines the linear stride; this
                    // access is element i = 1.
                    self.stride_i = addr.wrapping_sub(self.base) as i64;
                    self.i = 1;
                    self.class = PatternClass::Linear;
                }
            }
            PatternClass::Linear => {
                let expect = Self::affine(self.base, 0, 0, self.i + 1, self.stride_i);
                if addr == expect {
                    self.i += 1;
                } else {
                    // Promote to a nested loop: the linear run so far is
                    // the inner dimension (trip count i+1), this access
                    // starts outer iteration j = 1.
                    self.ni = self.i + 1;
                    self.stride_j = addr.wrapping_sub(self.base) as i64;
                    self.j = 1;
                    self.i = 0;
                    self.class = PatternClass::Quadric;
                }
            }
            PatternClass::Quadric => {
                let next_i =
                    Self::affine(self.base, self.j, self.stride_j, self.i + 1, self.stride_i);
                let next_j = Self::affine(self.base, self.j + 1, self.stride_j, 0, self.stride_i);
                if self.i + 1 < self.ni && addr == next_i {
                    self.i += 1;
                } else if addr == next_j {
                    self.j += 1;
                    self.i = 0;
                } else {
                    self.relax_nonaffine();
                }
            }
            PatternClass::Indirect => {
                if self.hi - self.lo > self.indirect_max_span {
                    self.class = PatternClass::Random;
                }
            }
            PatternClass::Random => {}
        }
    }

    fn relax_nonaffine(&mut self) {
        self.class = if self.hi - self.lo > self.indirect_max_span {
            PatternClass::Random
        } else {
            PatternClass::Indirect
        };
    }
}

/// Aggregated per-PC statistics and verdict, emitted by
/// [`OnlineClassifier::finish`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcSummary {
    /// The static instruction address.
    pub pc: u64,
    /// `"R"`, `"W"`, or `"RW"` when both kinds were seen.
    pub kind: String,
    /// The weakest verdict across tracked warps.
    pub class: PatternClass,
    /// LINEAR stride (also the QUADRIC inner stride), when affine.
    pub stride: Option<i64>,
    /// QUADRIC inner trip count.
    pub inner_len: Option<u64>,
    /// QUADRIC outer stride.
    pub outer_stride: Option<i64>,
    /// Warp-level dynamic instructions at this PC.
    pub instructions: u64,
    /// Coalesced line transactions issued.
    pub transactions: u64,
    /// Distinct warps that executed the PC.
    pub warps: u64,
    /// Conditional access: partial lane participation, or not every
    /// active warp executed this PC.
    pub conditional: bool,
    /// Instructions that executed with fewer lanes than the warp has.
    pub partial_lane_instructions: u64,
    /// Footprint bounds over raw line addresses.
    pub min_addr: u64,
    /// See `min_addr`.
    pub max_addr: u64,
}

#[derive(Debug)]
struct PcState {
    reads: u64,
    writes: u64,
    instructions: u64,
    transactions: u64,
    partial_lane_instructions: u64,
    lo: u64,
    hi: u64,
    warps: std::collections::BTreeSet<u32>,
    fsms: BTreeMap<u32, PatternFsm>,
}

impl PcState {
    fn new() -> Self {
        PcState {
            reads: 0,
            writes: 0,
            instructions: 0,
            transactions: 0,
            partial_lane_instructions: 0,
            lo: u64::MAX,
            hi: 0,
            warps: std::collections::BTreeSet::new(),
            fsms: BTreeMap::new(),
        }
    }
}

/// The streaming classifier: one bounded `PcState` per tracked PC.
#[derive(Debug)]
pub struct OnlineClassifier {
    cfg: ClassifierConfig,
    pcs: BTreeMap<u64, PcState>,
    /// Instructions at PCs beyond the `max_pcs` bound (counted, not
    /// classified).
    untracked_instructions: u64,
    active_warps: std::collections::BTreeSet<u32>,
}

impl OnlineClassifier {
    /// A classifier with the given bounds.
    pub fn new(cfg: ClassifierConfig) -> Self {
        OnlineClassifier {
            cfg,
            pcs: BTreeMap::new(),
            untracked_instructions: 0,
            active_warps: std::collections::BTreeSet::new(),
        }
    }

    /// Feeds one warp-level instruction: `lines` are its coalesced line
    /// addresses, `participants` the lanes that executed it, `live` the
    /// lanes the warp has under the launch geometry.
    pub fn observe(
        &mut self,
        warp: u32,
        pc: u64,
        is_write: bool,
        lines: &[u64],
        participants: u32,
        live: u32,
    ) {
        self.active_warps.insert(warp);
        let tracked = self.pcs.contains_key(&pc) || self.pcs.len() < self.cfg.max_pcs;
        if !tracked {
            self.untracked_instructions += 1;
            return;
        }
        let st = self.pcs.entry(pc).or_insert_with(PcState::new);
        if is_write {
            st.writes += 1;
        } else {
            st.reads += 1;
        }
        st.instructions += 1;
        st.transactions += lines.len() as u64;
        if participants < live {
            st.partial_lane_instructions += 1;
        }
        st.warps.insert(warp);
        for &l in lines {
            st.lo = st.lo.min(l);
            st.hi = st.hi.max(l);
        }
        // Pattern state rides the per-warp stream: the first coalesced
        // line of each instruction is the warp's representative address
        // (per-lane detail is already folded by coalescing).
        if let Some(&first) = lines.first() {
            let max_fsms = self.cfg.max_warp_fsms;
            let span = self.cfg.indirect_max_span;
            if st.fsms.contains_key(&warp) || st.fsms.len() < max_fsms {
                st.fsms
                    .entry(warp)
                    .or_insert_with(|| PatternFsm::new(span))
                    .observe(first);
            }
        }
    }

    /// Number of PCs currently tracked.
    pub fn tracked_pcs(&self) -> usize {
        self.pcs.len()
    }

    /// Instructions observed at PCs beyond the tracking bound.
    pub fn untracked_instructions(&self) -> u64 {
        self.untracked_instructions
    }

    /// Final verdicts, ordered by descending transaction count then PC —
    /// the hottest instructions first.
    pub fn finish(self) -> Vec<PcSummary> {
        let total_warps = self.active_warps.len() as u64;
        let mut out: Vec<PcSummary> = self
            .pcs
            .into_iter()
            .map(|(pc, st)| {
                // The PC's verdict is the weakest across its warps: one
                // irregular warp makes the instruction irregular.
                let worst = st.fsms.values().max_by_key(|f| f.class().rank()).cloned();
                let class = worst.as_ref().map_or(PatternClass::Unknown, |f| f.class());
                let affine = matches!(class, PatternClass::Linear | PatternClass::Quadric);
                let stride = worst.as_ref().and_then(|f| affine.then(|| f.stride()));
                let (inner_len, outer_stride) = worst
                    .as_ref()
                    .filter(|_| class == PatternClass::Quadric)
                    .map_or((None, None), |f| {
                        let (ni, sj) = f.quadric();
                        (Some(ni), Some(sj))
                    });
                let kind = match (st.reads > 0, st.writes > 0) {
                    (true, true) => "RW",
                    (false, true) => "W",
                    _ => "R",
                };
                PcSummary {
                    pc,
                    kind: kind.to_string(),
                    class,
                    stride,
                    inner_len,
                    outer_stride,
                    instructions: st.instructions,
                    transactions: st.transactions,
                    warps: st.warps.len() as u64,
                    conditional: st.partial_lane_instructions > 0
                        || (st.warps.len() as u64) < total_warps,
                    partial_lane_instructions: st.partial_lane_instructions,
                    min_addr: st.lo,
                    max_addr: st.hi,
                }
            })
            .collect();
        out.sort_by(|a, b| b.transactions.cmp(&a.transactions).then(a.pc.cmp(&b.pc)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(addrs: impl IntoIterator<Item = u64>) -> PatternFsm {
        let mut f = PatternFsm::new(ClassifierConfig::default().indirect_max_span);
        for a in addrs {
            f.observe(a);
        }
        f
    }

    #[test]
    fn constant_stream() {
        let f = feed(std::iter::repeat(0x8000).take(50));
        assert_eq!(f.class(), PatternClass::Constant);
    }

    #[test]
    fn linear_stream_and_stride() {
        let f = feed((0..100).map(|i| 0x1000 + i * 128));
        assert_eq!(f.class(), PatternClass::Linear);
        assert_eq!(f.stride(), 128);
    }

    #[test]
    fn negative_stride_is_linear() {
        let f = feed((0..50).map(|i| 0x100_0000 - i * 64));
        assert_eq!(f.class(), PatternClass::Linear);
        assert_eq!(f.stride(), -64);
    }

    #[test]
    fn quadric_stream() {
        // for j in 0..8 { for i in 0..16 { touch(base + j*0x10000 + i*128) } }
        let addrs = (0..8u64).flat_map(|j| (0..16u64).map(move |i| 0x2000 + j * 0x10000 + i * 128));
        let f = feed(addrs);
        assert_eq!(f.class(), PatternClass::Quadric);
        assert_eq!(f.stride(), 128);
        assert_eq!(f.quadric(), (16, 0x10000));
    }

    #[test]
    fn bounded_gather_is_indirect() {
        // Pseudo-random within a 256 KiB array.
        let mut x = 12345u64;
        let addrs = (0..200).map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            0x10_0000 + (x % (256 * 1024 / 8)) * 8
        });
        let f = feed(addrs.collect::<Vec<_>>());
        assert_eq!(f.class(), PatternClass::Indirect);
    }

    #[test]
    fn unbounded_drift_is_random() {
        let mut x = 99u64;
        let addrs = (0..200).map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x % (1 << 40)
        });
        let f = feed(addrs.collect::<Vec<_>>());
        assert_eq!(f.class(), PatternClass::Random);
    }

    #[test]
    fn conditional_flagged_on_partial_participation() {
        let mut c = OnlineClassifier::new(ClassifierConfig::default());
        c.observe(0, 0x10, false, &[0x1000], 32, 32);
        c.observe(0, 0x20, false, &[0x2000], 8, 32);
        let out = c.finish();
        let by_pc = |pc| out.iter().find(|s| s.pc == pc).expect("tracked");
        assert!(!by_pc(0x10).conditional);
        assert!(by_pc(0x20).conditional);
    }

    #[test]
    fn conditional_flagged_on_missing_warps() {
        let mut c = OnlineClassifier::new(ClassifierConfig::default());
        for w in 0..4 {
            c.observe(w, 0x10, false, &[0x1000 + u64::from(w) * 128], 32, 32);
        }
        c.observe(0, 0x20, false, &[0x9000], 32, 32);
        let out = c.finish();
        let by_pc = |pc: u64| out.iter().find(|s| s.pc == pc).expect("tracked");
        assert!(!by_pc(0x10).conditional, "all warps executed 0x10");
        assert!(by_pc(0x20).conditional, "only warp 0 executed 0x20");
    }

    #[test]
    fn pc_bound_is_enforced() {
        let mut c = OnlineClassifier::new(ClassifierConfig {
            max_pcs: 4,
            ..ClassifierConfig::default()
        });
        for pc in 0..100u64 {
            c.observe(0, pc, false, &[0x1000], 32, 32);
        }
        assert_eq!(c.tracked_pcs(), 4);
    }
}
