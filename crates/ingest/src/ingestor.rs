//! The push-based streaming ingestor.
//!
//! [`Ingestor`] accepts raw trace bytes chunk by chunk and produces, in a
//! single pass, the same [`GmapProfile`] the materializing
//! `read_* → profile_thread_trace` path produces — byte-identical — plus
//! the online classifier verdicts and the heat-map report, while keeping
//! the resident *trace* buffer bounded:
//!
//! - the chunk parser holds at most one partial line/record;
//! - per-thread entries go straight into per-warp, per-lane queues;
//! - a warp-level instruction is popped (via the shared
//!   [`pop_warp_instruction`] step) as soon as **every geometry-live lane
//!   of the warp has a queued access** — safe because the front of a
//!   non-empty queue can never change (arrivals only append), so the
//!   majority vote is exactly the one the materialized path would take at
//!   the same step. Lanes the trace never exercises stall this rule;
//!   those queues drain at [`Ingestor::finish`] with the identical loop,
//!   so the result is still exact.
//!
//! For lane-interleaved traces (the order lockstep tracers emit) the
//! queues stay O(1) deep. Thread-major traces (all of thread 0, then
//! thread 1, ...) would buffer a whole warp's worth of accesses, so each
//! lane queue is bounded by `max_lane_queue` with an [`OverflowPolicy`]:
//!
//! - [`OverflowPolicy::ForceDrain`] (default) pops a majority instruction
//!   among the currently non-empty lanes. For single-lane-per-warp traces
//!   (e.g. `gmap clone` output, which attributes each warp transaction to
//!   lane 0) this is still exact — majority-of-one pops entries in order.
//!   For genuinely divergent thread-major traces it degrades gracefully,
//!   mirroring the module-level majority semantics; `forced_drains` in
//!   [`IngestStats`] reports when it happened.
//! - [`OverflowPolicy::Error`] is strict backpressure: fail the ingest
//!   instead of approximating.
//!
//! What stays bounded is the *raw trace*: the reconstructed coalesced
//! warp streams (the profiler's input, typically 32× smaller than the
//! per-thread trace and independent of its interleaving) are still
//! materialized, because `profile_streams` is multi-pass.

use crate::classify::{ClassifierConfig, OnlineClassifier};
use crate::reader::{ChunkParser, TraceFormat};
use crate::report::{build_arrays, AdaptiveHeat, TraceReport};
use gmap_core::ingest::{live_lanes, pop_warp_instruction, warp_lane_of};
use gmap_core::profile::GmapProfile;
use gmap_core::profiler::{profile_streams, ProfilerConfig};
use gmap_core::GmapError;
use gmap_gpu::hierarchy::LaunchConfig;
use gmap_gpu::schedule::{WarpStream, WarpStreamEvent};
use gmap_trace::io::{ParseTraceError, TraceEntry};
use gmap_trace::record::{MemAccess, WarpId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// What to do when a lane queue hits `max_lane_queue`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Pop a majority instruction among the non-empty lanes (exact for
    /// single-lane-per-warp traces; approximate otherwise).
    ForceDrain,
    /// Fail the ingest with [`IngestError::LaneQueueOverflow`].
    Error,
}

/// Configuration for an ingest pass.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Threads per warp (the profiler contract is 32).
    pub warp_size: u32,
    /// Profiler settings; `profiler.line_size` also drives coalescing.
    pub profiler: ProfilerConfig,
    /// Bound on each per-warp lane queue, in entries.
    pub max_lane_queue: usize,
    /// Behaviour at the bound.
    pub overflow: OverflowPolicy,
    /// Classifier bounds.
    pub classifier: ClassifierConfig,
    /// Initial heat-histogram page size as a shift (12 → 4 KiB pages).
    pub heat_page_shift: u32,
    /// Heat-histogram page budget before coarsening.
    pub heat_max_pages: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            warp_size: 32,
            profiler: ProfilerConfig::default(),
            max_lane_queue: 4096,
            overflow: OverflowPolicy::ForceDrain,
            classifier: ClassifierConfig::default(),
            heat_page_shift: 12,
            heat_max_pages: 2048,
        }
    }
}

/// Errors an ingest pass can produce.
#[derive(Debug)]
pub enum IngestError {
    /// The byte stream failed to parse.
    Parse(ParseTraceError),
    /// A lane queue hit the bound under [`OverflowPolicy::Error`].
    LaneQueueOverflow {
        /// The warp whose lane overflowed.
        warp: u32,
        /// The overflowing lane.
        lane: usize,
        /// The configured bound.
        bound: usize,
    },
    /// Profiling failed (e.g. no entry fell inside the launch geometry).
    Profile(GmapError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Parse(e) => write!(f, "trace parse failed: {e}"),
            IngestError::LaneQueueOverflow { warp, lane, bound } => write!(
                f,
                "lane queue overflow: warp {warp} lane {lane} exceeded {bound} \
                 buffered accesses (trace interleaving too skewed for strict mode)"
            ),
            IngestError::Profile(e) => write!(f, "profiling failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Parse(e) => Some(e),
            IngestError::Profile(e) => Some(e),
            IngestError::LaneQueueOverflow { .. } => None,
        }
    }
}

impl From<ParseTraceError> for IngestError {
    fn from(e: ParseTraceError) -> Self {
        IngestError::Parse(e)
    }
}

impl From<GmapError> for IngestError {
    fn from(e: GmapError) -> Self {
        IngestError::Profile(e)
    }
}

/// Counters describing one ingest pass.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IngestStats {
    /// Raw bytes pushed.
    pub bytes: u64,
    /// Entries parsed.
    pub entries: u64,
    /// Entries outside the launch geometry.
    pub skipped: u64,
    /// Peak resident trace buffer: queued lane entries plus parser carry
    /// bytes (in entries-equivalents, see `peak_buffered_entries`).
    pub peak_buffered_entries: u64,
    /// Instructions popped by the overflow policy before their warp was
    /// fully fed.
    pub forced_drains: u64,
}

/// Everything one streaming pass produces.
#[derive(Debug)]
pub struct IngestOutcome {
    /// The statistical profile — byte-identical to the materialized path.
    pub profile: GmapProfile,
    /// Classifier verdicts + heat map.
    pub report: TraceReport,
    /// Pass counters.
    pub stats: IngestStats,
}

#[derive(Debug)]
struct WarpState {
    lanes: Vec<VecDeque<MemAccess>>,
    events: Vec<WarpStreamEvent>,
    live: u32,
}

/// Push-based streaming trace profiler. See the module docs.
#[derive(Debug)]
pub struct Ingestor {
    name: String,
    launch: LaunchConfig,
    cfg: IngestConfig,
    parser: ChunkParser,
    warps: BTreeMap<u32, WarpState>,
    classifier: OnlineClassifier,
    heat: AdaptiveHeat,
    buffered: u64,
    instructions: u64,
    transactions: u64,
    stats: IngestStats,
}

impl Ingestor {
    /// A fresh ingestor profiling under `launch`.
    pub fn new(name: impl Into<String>, launch: LaunchConfig, cfg: IngestConfig) -> Self {
        Ingestor {
            name: name.into(),
            launch,
            classifier: OnlineClassifier::new(cfg.classifier.clone()),
            heat: AdaptiveHeat::new(cfg.heat_page_shift, cfg.heat_max_pages),
            cfg,
            parser: ChunkParser::new(),
            warps: BTreeMap::new(),
            buffered: 0,
            instructions: 0,
            transactions: 0,
            stats: IngestStats::default(),
        }
    }

    /// Bytes accepted so far.
    pub fn bytes(&self) -> u64 {
        self.stats.bytes
    }

    /// Entries parsed so far.
    pub fn entries(&self) -> u64 {
        self.stats.entries
    }

    /// Current resident trace buffer in entries (lane queues; the parser
    /// carry adds at most one line/record).
    pub fn buffered_entries(&self) -> u64 {
        self.buffered
    }

    /// Peak of [`buffered_entries`](Self::buffered_entries) over the pass.
    pub fn peak_buffered_entries(&self) -> u64 {
        self.stats.peak_buffered_entries
    }

    /// The detected trace format, once sniffed.
    pub fn format(&self) -> Option<TraceFormat> {
        self.parser.format()
    }

    /// Feeds one chunk of raw trace bytes (any size, any alignment).
    ///
    /// # Errors
    ///
    /// Parse failures and, under [`OverflowPolicy::Error`], lane-queue
    /// overflow. The ingestor is unusable after an error.
    pub fn push_bytes(&mut self, chunk: &[u8]) -> Result<(), IngestError> {
        self.stats.bytes += chunk.len() as u64;
        self.parser.push(chunk)?;
        let entries: Vec<TraceEntry> = self.parser.drain().collect();
        for e in entries {
            self.push_entry(e)?;
        }
        Ok(())
    }

    /// Feeds one already-parsed entry (for callers that do their own
    /// decoding).
    ///
    /// # Errors
    ///
    /// Lane-queue overflow under [`OverflowPolicy::Error`].
    pub fn push_entry(&mut self, (tid, acc): TraceEntry) -> Result<(), IngestError> {
        self.stats.entries += 1;
        let Some((warp, lane)) = warp_lane_of(tid.0, &self.launch, self.cfg.warp_size) else {
            self.stats.skipped += 1;
            return Ok(());
        };
        let warp_size = self.cfg.warp_size;
        let launch = self.launch;
        let st = self.warps.entry(warp).or_insert_with(|| WarpState {
            lanes: vec![VecDeque::new(); warp_size as usize],
            events: Vec::new(),
            live: live_lanes(warp, &launch, warp_size),
        });
        st.lanes[lane].push_back(acc);
        self.buffered += 1;
        if st.lanes[lane].len() > self.cfg.max_lane_queue {
            match self.cfg.overflow {
                OverflowPolicy::Error => {
                    return Err(IngestError::LaneQueueOverflow {
                        warp,
                        lane,
                        bound: self.cfg.max_lane_queue,
                    });
                }
                OverflowPolicy::ForceDrain => {
                    let bound = self.cfg.max_lane_queue;
                    while self.warps[&warp].lanes[lane].len() > bound {
                        self.pop_one(warp);
                        self.stats.forced_drains += 1;
                    }
                }
            }
        }
        self.drain_ready(warp);
        self.stats.peak_buffered_entries = self.stats.peak_buffered_entries.max(self.buffered);
        Ok(())
    }

    /// Pops while every live lane of `warp` has a queued access — the
    /// exact-prefix rule from the module docs.
    fn drain_ready(&mut self, warp: u32) {
        loop {
            let st = self.warps.get(&warp).expect("warp exists");
            let ready = st.lanes[..st.live as usize].iter().all(|q| !q.is_empty());
            if !ready {
                return;
            }
            self.pop_one(warp);
        }
    }

    /// Pops exactly one warp-level instruction and feeds the classifier
    /// and heat map.
    fn pop_one(&mut self, warp: u32) {
        let st = self.warps.get_mut(&warp).expect("warp exists");
        // Count the would-be participants before popping: the winning
        // PC's lane count is not exposed by the shared step function.
        let fronts: Vec<Option<gmap_trace::record::Pc>> =
            st.lanes.iter().map(|q| q.front().map(|a| a.pc)).collect();
        let Some(access) = pop_warp_instruction(&mut st.lanes, self.cfg.profiler.line_size) else {
            return;
        };
        let participants = fronts
            .iter()
            .flatten()
            .filter(|&&pc| pc == access.pc)
            .count() as u32;
        self.buffered -= u64::from(participants);
        self.instructions += 1;
        self.transactions += access.lines.len() as u64;
        let lines: Vec<u64> = access.lines.iter().map(|l| l.0).collect();
        for &l in &lines {
            self.heat.observe(l, 1);
        }
        self.classifier.observe(
            warp,
            access.pc.0,
            access.kind.is_write(),
            &lines,
            participants,
            st.live,
        );
        st.events.push(WarpStreamEvent::Access(access));
    }

    /// Ends the stream: flushes the parser, drains every warp with the
    /// materialized loop, profiles, and assembles the report.
    ///
    /// # Errors
    ///
    /// Parse errors from the final partial line/record, and
    /// [`GmapError::EmptyProfile`] when no entry fell inside the
    /// geometry.
    pub fn finish(mut self) -> Result<IngestOutcome, IngestError> {
        self.parser.finish()?;
        let entries: Vec<TraceEntry> = self.parser.drain().collect();
        for e in entries {
            self.push_entry(e)?;
        }
        // Drain the tails: from here the queues hold exactly what the
        // materialized path would still have, so the same loop finishes
        // the job identically.
        let warps: Vec<u32> = self.warps.keys().copied().collect();
        for w in warps {
            while self.warps[&w].lanes.iter().any(|q| !q.is_empty()) {
                self.pop_one(w);
            }
        }
        let wpb = self.launch.warps_per_block(self.cfg.warp_size);
        let mut streams = Vec::with_capacity(self.warps.len());
        for (w, st) in std::mem::take(&mut self.warps) {
            streams.push(WarpStream {
                warp: WarpId(w),
                block: w / wpb,
                events: st.events,
            });
        }
        let profile = profile_streams(
            &self.name,
            &streams,
            &self.launch,
            self.cfg.warp_size,
            &self.cfg.profiler,
        )?;
        let pcs = self.classifier.finish();
        let untracked: u64 = self.instructions - pcs.iter().map(|p| p.instructions).sum::<u64>();
        let arrays = build_arrays(&self.heat, &pcs);
        let report = TraceReport {
            name: self.name.clone(),
            format: self
                .parser
                .format()
                .unwrap_or(TraceFormat::Text)
                .label()
                .to_string(),
            bytes: self.stats.bytes,
            entries: self.stats.entries,
            skipped: self.stats.skipped,
            warps: streams.len() as u64,
            instructions: self.instructions,
            transactions: self.transactions,
            page_bytes: self.heat.page_bytes(),
            arrays,
            pcs,
            untracked_instructions: untracked,
        };
        Ok(IngestOutcome {
            profile,
            report,
            stats: self.stats,
        })
    }
}

/// Streams a whole `Read` source through an [`Ingestor`] in
/// `chunk_size`-byte chunks.
///
/// # Errors
///
/// I/O errors surface as [`IngestError::Parse`]; see
/// [`Ingestor::push_bytes`] and [`Ingestor::finish`] for the rest.
pub fn ingest_reader<R: std::io::Read>(
    name: &str,
    mut reader: R,
    launch: &LaunchConfig,
    cfg: IngestConfig,
    chunk_size: usize,
) -> Result<IngestOutcome, IngestError> {
    let mut ing = Ingestor::new(name, *launch, cfg);
    let mut buf = vec![0u8; chunk_size.max(1)];
    loop {
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => ing.push_bytes(&buf[..n])?,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(IngestError::Parse(ParseTraceError::Io(e))),
        }
    }
    ing.finish()
}
