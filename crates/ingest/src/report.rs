//! CUTHERMO-style per-array / per-PC heat-map reporting.
//!
//! The ingest pass feeds every coalesced line transaction into an
//! [`AdaptiveHeat`] histogram: page-granular counts that *coarsen
//! themselves* (double the page size, merge adjacent buckets) whenever the
//! number of distinct pages would exceed a bound — so the histogram's
//! memory is constant in trace length and footprint, and the result is
//! deterministic (coarsening depends only on the access set, never on
//! timing or hash order).
//!
//! At finish time the global histogram is segmented into **arrays**:
//! maximal runs of touched pages separated by gaps of more than
//! [`ARRAY_GAP_PAGES`] pages — the address-space clusters a programmer
//! would recognize as buffers. The report renders each array as a fixed
//! 32-cell heat bar (log-scaled glyph ramp), annotated with the per-PC
//! verdicts from the online classifier ([`PcSummary`]).

use crate::classify::PcSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Pages with a gap larger than this merge bound belong to different
/// arrays.
pub const ARRAY_GAP_PAGES: u64 = 8;

/// Cells in a rendered heat bar.
pub const HEAT_CELLS: usize = 32;

/// Glyph ramp for the text heat bar, coldest to hottest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Page-granular access histogram that coarsens itself to stay within a
/// page budget.
#[derive(Debug, Clone)]
pub struct AdaptiveHeat {
    page_shift: u32,
    max_pages: usize,
    pages: BTreeMap<u64, u64>,
}

impl AdaptiveHeat {
    /// A histogram starting at `1 << page_shift`-byte pages, holding at
    /// most `max_pages` distinct pages before coarsening.
    pub fn new(page_shift: u32, max_pages: usize) -> Self {
        AdaptiveHeat {
            page_shift,
            max_pages: max_pages.max(2),
            pages: BTreeMap::new(),
        }
    }

    /// Records `count` accesses to the page containing `addr`.
    pub fn observe(&mut self, addr: u64, count: u64) {
        *self.pages.entry(addr >> self.page_shift).or_insert(0) += count;
        while self.pages.len() > self.max_pages {
            self.coarsen();
        }
    }

    fn coarsen(&mut self) {
        self.page_shift += 1;
        let old = std::mem::take(&mut self.pages);
        for (page, count) in old {
            *self.pages.entry(page >> 1).or_insert(0) += count;
        }
    }

    /// Current page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        1 << self.page_shift
    }

    /// Distinct pages currently held.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Total recorded accesses.
    pub fn total(&self) -> u64 {
        self.pages.values().sum()
    }

    /// Sums counts over the byte range `[lo, hi)`.
    pub fn range_total(&self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return 0;
        }
        let first = lo >> self.page_shift;
        let last = (hi - 1) >> self.page_shift;
        self.pages.range(first..=last).map(|(_, &c)| c).sum()
    }

    /// Splits touched pages into maximal runs separated by more than
    /// [`ARRAY_GAP_PAGES`] empty pages; returns `(base, end)` byte ranges.
    pub fn segments(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        for &page in self.pages.keys() {
            match out.last_mut() {
                Some((_, end))
                    if page.saturating_sub(*end >> self.page_shift) <= ARRAY_GAP_PAGES =>
                {
                    *end = (page + 1) << self.page_shift;
                }
                _ => out.push((page << self.page_shift, (page + 1) << self.page_shift)),
            }
        }
        out
    }

    /// Bins the range `[base, end)` into `cells` equal buckets of summed
    /// counts.
    pub fn bins(&self, base: u64, end: u64, cells: usize) -> Vec<u64> {
        let cells = cells.max(1);
        let mut out = vec![0u64; cells];
        if end <= base {
            return out;
        }
        let width = end - base;
        for (&page, &count) in self.pages.range(base >> self.page_shift..) {
            let addr = page << self.page_shift;
            if addr >= end {
                break;
            }
            let cell = ((addr - base) as u128 * cells as u128 / width as u128) as usize;
            out[cell.min(cells - 1)] += count;
        }
        out
    }
}

/// One detected address-space cluster ("array") with its heat profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArraySummary {
    /// Array index in ascending base order (`A0`, `A1`, ...).
    pub index: usize,
    /// First byte of the array (page-aligned).
    pub base: u64,
    /// One past the last byte (page-aligned).
    pub end: u64,
    /// Line transactions that landed in the array.
    pub accesses: u64,
    /// Fixed-width heat bins across `[base, end)`.
    pub heat: Vec<u64>,
    /// PCs (by address) whose footprint intersects the array.
    pub pcs: Vec<u64>,
}

/// The full ingest report: global statistics, detected arrays, and
/// per-PC classifier verdicts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Workload name the trace was ingested under.
    pub name: String,
    /// On-disk format (`"text"`/`"binary"`).
    pub format: String,
    /// Raw bytes consumed.
    pub bytes: u64,
    /// Per-thread entries parsed.
    pub entries: u64,
    /// Entries outside the launch geometry (ignored).
    pub skipped: u64,
    /// Warps that issued at least one access.
    pub warps: u64,
    /// Warp-level dynamic instructions reconstructed.
    pub instructions: u64,
    /// Coalesced line transactions.
    pub transactions: u64,
    /// Heat histogram page size after adaptation.
    pub page_bytes: u64,
    /// Detected arrays, ascending by base.
    pub arrays: Vec<ArraySummary>,
    /// Per-PC verdicts, hottest first.
    pub pcs: Vec<PcSummary>,
    /// Instructions at PCs beyond the classifier bound.
    pub untracked_instructions: u64,
}

impl TraceReport {
    /// Compact canonical JSON (key-sorted, stable across runs).
    pub fn to_json(&self) -> String {
        gmap_core::cachekey::canonical_json(self)
    }

    /// Human-readable heat-map report.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ =
            writeln!(
            s,
            "trace {:?} ({}): {} entries ({} skipped), {} warps, {} instructions, {} transactions",
            self.name, self.format, self.entries, self.skipped, self.warps, self.instructions,
            self.transactions
        );
        let _ = writeln!(
            s,
            "heat page {} B, {} arrays",
            self.page_bytes,
            self.arrays.len()
        );
        for a in &self.arrays {
            let peak = a.heat.iter().copied().max().unwrap_or(0);
            let bar: String = a.heat.iter().map(|&c| glyph(c, peak) as char).collect();
            let _ = writeln!(
                s,
                "A{:<3} {:#012x}..{:#012x} {:>10} B {:>10} acc |{bar}|",
                a.index,
                a.base,
                a.end,
                a.end - a.base,
                a.accesses
            );
        }
        let _ = writeln!(s, "per-PC classification (hottest first):");
        for p in &self.pcs {
            let stride = match (p.stride, p.inner_len, p.outer_stride) {
                (Some(si), Some(ni), Some(sj)) => format!(" stride {si} x{ni} outer {sj}"),
                (Some(si), _, _) => format!(" stride {si}"),
                _ => String::new(),
            };
            let cond = if p.conditional { " COND" } else { "" };
            let _ = writeln!(
                s,
                "  pc {:#06x} {:<2} {:<8}{stride}{cond}  {} instr, {} txn, {} warps, [{:#x}..{:#x}]",
                p.pc,
                p.kind,
                p.class.label(),
                p.instructions,
                p.transactions,
                p.warps,
                p.min_addr,
                p.max_addr
            );
        }
        if self.untracked_instructions > 0 {
            let _ = writeln!(
                s,
                "  (+{} instructions at untracked PCs beyond the classifier bound)",
                self.untracked_instructions
            );
        }
        s
    }
}

fn glyph(count: u64, peak: u64) -> u8 {
    if count == 0 || peak == 0 {
        return RAMP[0];
    }
    // Log-scale the ramp so sparse-but-nonzero cells stay visible.
    let level = ((count as f64).ln_1p() / (peak as f64).ln_1p() * (RAMP.len() - 1) as f64).ceil();
    RAMP[(level as usize).clamp(1, RAMP.len() - 1)]
}

/// Builds the array summaries from the global heat histogram and the
/// per-PC footprints.
pub fn build_arrays(heat: &AdaptiveHeat, pcs: &[PcSummary]) -> Vec<ArraySummary> {
    heat.segments()
        .into_iter()
        .enumerate()
        .map(|(index, (base, end))| ArraySummary {
            index,
            base,
            end,
            accesses: heat.range_total(base, end),
            heat: heat.bins(base, end, HEAT_CELLS),
            pcs: pcs
                .iter()
                .filter(|p| p.min_addr < end && p.max_addr >= base)
                .map(|p| p.pc)
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarsens_under_page_budget() {
        let mut h = AdaptiveHeat::new(12, 8);
        for i in 0..1000u64 {
            h.observe(i * 4096, 1);
        }
        assert!(h.len() <= 8, "held {} pages", h.len());
        assert_eq!(h.total(), 1000, "coarsening preserves counts");
        assert!(h.page_bytes() > 4096);
    }

    #[test]
    fn segments_split_on_gaps() {
        let mut h = AdaptiveHeat::new(12, 1024);
        h.observe(0x1000, 5);
        h.observe(0x2000, 5);
        // Far away: its own array.
        h.observe(0x100_0000, 7);
        let segs = h.segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(h.range_total(segs[0].0, segs[0].1), 10);
        assert_eq!(h.range_total(segs[1].0, segs[1].1), 7);
    }

    #[test]
    fn bins_cover_the_range() {
        let mut h = AdaptiveHeat::new(12, 1024);
        for i in 0..64u64 {
            h.observe(0x8000 + i * 4096, 2);
        }
        let (base, end) = h.segments()[0];
        let bins = h.bins(base, end, HEAT_CELLS);
        assert_eq!(bins.len(), HEAT_CELLS);
        assert_eq!(bins.iter().sum::<u64>(), 128);
    }

    #[test]
    fn glyph_ramp_is_monotone() {
        let peak = 1000;
        let mut last = 0;
        for c in [0, 1, 10, 100, 1000] {
            let g = RAMP
                .iter()
                .position(|&r| r == glyph(c, peak))
                .expect("in ramp");
            assert!(g >= last, "ramp must not decrease");
            last = g;
        }
    }
}
