//! Differential guarantees of the streaming ingest path.
//!
//! The contract under test: pushing a trace through [`Ingestor`] chunk by
//! chunk produces a `GmapProfile` **byte-identical** (canonical JSON) to
//! the materializing `read_* → profile_thread_trace` path, while the
//! resident trace buffer stays bounded — constant in trace length.

use gmap_core::cachekey::canonical_json;
use gmap_core::ingest::profile_thread_trace;
use gmap_core::profiler::ProfilerConfig;
use gmap_gpu::hierarchy::LaunchConfig;
use gmap_ingest::{
    ClassifierConfig, IngestConfig, IngestError, Ingestor, OverflowPolicy, PatternClass, PatternFsm,
};
use gmap_trace::io::{read_binary, write_binary, write_text, TraceEntry};
use gmap_trace::record::{AccessKind, ByteAddr, MemAccess, Pc, ThreadId};
use proptest::prelude::*;

fn entry(tid: u32, pc: u64, addr: u64, write: bool) -> TraceEntry {
    let acc = if write {
        MemAccess::write(Pc(pc), ByteAddr(addr))
    } else {
        MemAccess::read(Pc(pc), ByteAddr(addr))
    };
    (ThreadId(tid), acc)
}

/// Lane-interleaved trace (lockstep-tracer order): `steps` instructions
/// for every thread of the launch, emitted step-major.
fn interleaved_trace(launch: &LaunchConfig, steps: u64) -> Vec<TraceEntry> {
    let total = launch.total_threads() as u32;
    let mut out = Vec::new();
    for k in 0..steps {
        for tid in 0..total {
            let pc = 0x10 + (k % 3) * 0x10;
            let addr = 0x1_0000 + u64::from(tid) * 4 + k * 0x2000;
            out.push(entry(tid, pc, addr, k % 3 == 2));
        }
    }
    out
}

fn tiny_bounds() -> IngestConfig {
    IngestConfig {
        max_lane_queue: 8,
        ..IngestConfig::default()
    }
}

#[test]
fn streaming_binary_is_byte_identical_and_bounded() {
    // 8 warps x 100 steps = 25_600 entries ≈ 537 KiB binary — far larger
    // than the 1 KiB chunks and the 8-entry lane-queue bound below.
    let launch = LaunchConfig::new(4u32, 64u32);
    let entries = interleaved_trace(&launch, 100);
    let mut bytes = Vec::new();
    write_binary(&mut bytes, &entries).expect("write");

    let expected = profile_thread_trace("stream", &entries, &launch, &ProfilerConfig::default())
        .expect("materialized profile");

    let mut ing = Ingestor::new("stream", launch, tiny_bounds());
    for chunk in bytes.chunks(1024) {
        ing.push_bytes(chunk).expect("well-formed");
    }
    let outcome = ing.finish().expect("profile");

    assert_eq!(
        canonical_json(&outcome.profile),
        canonical_json(&expected),
        "streaming profile must be byte-identical to the materialized path"
    );
    // Bounded: the trace holds 25_600 entries but lockstep interleaving
    // keeps every lane queue O(1); with 256 lanes that is well under a
    // thousand buffered entries — and constant in `steps`.
    assert_eq!(outcome.stats.entries, 25_600);
    assert!(
        outcome.stats.peak_buffered_entries <= 512,
        "peak buffer {} not bounded",
        outcome.stats.peak_buffered_entries
    );
    assert_eq!(outcome.stats.forced_drains, 0, "lockstep never overflows");
    assert!(bytes.len() as u64 > 8 * 1024, "fixture larger than bounds");
}

#[test]
fn bounded_buffer_is_constant_in_trace_length() {
    // Double the trace; the peak buffer must not move.
    let launch = LaunchConfig::new(4u32, 64u32);
    let mut peaks = Vec::new();
    for steps in [50, 100, 200] {
        let entries = interleaved_trace(&launch, steps);
        let mut bytes = Vec::new();
        write_binary(&mut bytes, &entries).expect("write");
        let mut ing = Ingestor::new("stream", launch, tiny_bounds());
        for chunk in bytes.chunks(4096) {
            ing.push_bytes(chunk).expect("well-formed");
        }
        peaks.push(ing.finish().expect("profile").stats.peak_buffered_entries);
    }
    assert_eq!(peaks[0], peaks[1], "peak buffer grew with trace length");
    assert_eq!(peaks[1], peaks[2], "peak buffer grew with trace length");
}

#[test]
fn streaming_text_is_byte_identical() {
    let launch = LaunchConfig::new(2u32, 64u32);
    let entries = interleaved_trace(&launch, 40);
    let mut bytes = Vec::new();
    write_text(&mut bytes, &entries).expect("write");

    let expected = profile_thread_trace("t", &entries, &launch, &ProfilerConfig::default())
        .expect("materialized profile");
    let mut ing = Ingestor::new("t", launch, tiny_bounds());
    for chunk in bytes.chunks(333) {
        ing.push_bytes(chunk).expect("well-formed");
    }
    let outcome = ing.finish().expect("profile");
    assert_eq!(canonical_json(&outcome.profile), canonical_json(&expected));
}

#[test]
fn single_lane_warps_stay_exact_under_force_drain() {
    // `gmap clone` traces attribute every warp transaction to lane 0, so
    // each warp is a single-lane stream: the force-drain majority is a
    // majority of one and the result stays exact even though the bound
    // fires constantly.
    let launch = LaunchConfig::new(2u32, 64u32);
    let mut entries = Vec::new();
    for w in 0..4u32 {
        let tid = w * 32; // lane 0 of each warp
        for k in 0..100u64 {
            entries.push(entry(
                tid,
                0xA0,
                0x10_0000 + u64::from(w) * 0x4000 + k * 128,
                false,
            ));
        }
    }
    let expected = profile_thread_trace("clone", &entries, &launch, &ProfilerConfig::default())
        .expect("materialized profile");
    let mut ing = Ingestor::new("clone", launch, tiny_bounds());
    for e in &entries {
        ing.push_entry(*e).expect("in geometry");
    }
    let outcome = ing.finish().expect("profile");
    assert_eq!(canonical_json(&outcome.profile), canonical_json(&expected));
    assert!(outcome.stats.forced_drains > 0, "the bound must have fired");
    assert!(
        outcome.stats.peak_buffered_entries <= 8 * 4 + 4,
        "peak {} exceeds per-lane bound x warps",
        outcome.stats.peak_buffered_entries
    );
}

#[test]
fn strict_policy_errors_on_skewed_interleaving() {
    // Thread-major order with multi-lane warps starves the other lanes:
    // strict mode must refuse rather than approximate.
    let launch = LaunchConfig::new(1u32, 64u32);
    let cfg = IngestConfig {
        max_lane_queue: 8,
        overflow: OverflowPolicy::Error,
        ..IngestConfig::default()
    };
    let mut ing = Ingestor::new("skewed", launch, cfg);
    let mut hit = None;
    for k in 0..100u64 {
        if let Err(e) = ing.push_entry(entry(0, 0x10, 0x1000 + k * 4, false)) {
            hit = Some(e);
            break;
        }
    }
    match hit {
        Some(IngestError::LaneQueueOverflow {
            warp: 0,
            lane: 0,
            bound: 8,
        }) => {}
        other => panic!("expected overflow error, got {other:?}"),
    }
}

#[test]
fn thread_major_trace_exact_when_bound_allows() {
    // Thread-major (the order `warp_streams_from_entries`'s own tests
    // use): queues grow to the per-thread access count, so with an
    // adequate bound the drain happens at finish and stays exact.
    let launch = LaunchConfig::new(1u32, 64u32);
    let mut entries = Vec::new();
    for tid in 0..64u32 {
        for k in 0..20u64 {
            entries.push(entry(
                tid,
                0x30 + (k % 2) * 0x10,
                0x8000 + u64::from(tid) * 4 + k * 0x1000,
                false,
            ));
        }
    }
    let expected = profile_thread_trace("tm", &entries, &launch, &ProfilerConfig::default())
        .expect("materialized profile");
    let cfg = IngestConfig {
        max_lane_queue: 64,
        overflow: OverflowPolicy::Error,
        ..IngestConfig::default()
    };
    let mut ing = Ingestor::new("tm", launch, cfg);
    for e in &entries {
        ing.push_entry(*e).expect("under bound");
    }
    let outcome = ing.finish().expect("profile");
    assert_eq!(canonical_json(&outcome.profile), canonical_json(&expected));
}

#[test]
fn report_covers_arrays_and_classes() {
    let launch = LaunchConfig::new(4u32, 64u32);
    let entries = interleaved_trace(&launch, 100);
    let mut ing = Ingestor::new("report", launch, IngestConfig::default());
    for e in &entries {
        ing.push_entry(*e).expect("in geometry");
    }
    let outcome = ing.finish().expect("profile");
    let report = &outcome.report;
    assert_eq!(report.entries, 25_600);
    assert!(!report.arrays.is_empty(), "heat map found no arrays");
    assert_eq!(report.pcs.len(), 3, "three static PCs in the fixture");
    // Every PC walks `0x2000` per step per warp base: linear per warp.
    for pc in &report.pcs {
        assert_eq!(pc.class, PatternClass::Linear, "pc {:#x}", pc.pc);
        assert_eq!(
            pc.stride,
            Some(3 * 0x2000),
            "per-PC stride skips the other two PCs"
        );
    }
    let text = report.render_text();
    assert!(text.contains("LINEAR"), "missing class in:\n{text}");
    assert!(text.contains("A0"), "missing array row in:\n{text}");
    let json = report.to_json();
    assert!(json.contains("\"arrays\""), "missing arrays in JSON");
    // The streamed bytes were fed via push_entry, so `bytes` is 0 here;
    // entries/instructions must still reconcile.
    assert_eq!(
        report.instructions,
        report.pcs.iter().map(|p| p.instructions).sum::<u64>()
    );
}

#[test]
fn parse_error_positions_survive_streaming() {
    let launch = LaunchConfig::new(1u32, 32u32);
    let mut ing = Ingestor::new("bad", launch, IngestConfig::default());
    let res = (|| -> Result<(), IngestError> {
        ing.push_bytes(b"0 0x10 R 0x80\n")?;
        ing.push_bytes(b"0 0x10 Q 0x80\n")?;
        Ok(())
    })();
    match res {
        Err(IngestError::Parse(gmap_trace::io::ParseTraceError::Malformed {
            index: 2,
            field: "kind",
            ..
        })) => {}
        other => panic!("expected line-2 kind error, got {other:?}"),
    }
}

#[test]
fn binary_round_trip_through_streaming_matches_reader() {
    // The streamed parser and the materializing reader must agree on the
    // exact entry sequence, not just the profile.
    let launch = LaunchConfig::new(2u32, 64u32);
    let entries = interleaved_trace(&launch, 10);
    let mut bytes = Vec::new();
    write_binary(&mut bytes, &entries).expect("write");
    let back = read_binary(&bytes[..]).expect("read");
    assert_eq!(back, entries);
    let got: Result<Vec<_>, _> =
        gmap_ingest::TraceReader::with_chunk_size(&bytes[..], 17).collect();
    assert_eq!(got.expect("stream"), entries);
}

proptest! {
    /// Streaming vs. materialized reconstruction equivalence (satellite
    /// of the divergence tie-break): for arbitrary interleavings of
    /// per-thread access streams — including divergent PCs and partial
    /// warps — the streamed profile equals the materialized one
    /// byte-for-byte, as long as the lane bound does not force early
    /// drains (`max_lane_queue` is set above the trace depth).
    #[test]
    fn arbitrary_interleavings_are_exact(
        picks in proptest::collection::vec((0..96u32, 0..4u8, 0..512u16), 1..200),
    ) {
        // 96 tids over a 64-thread launch: a third of the entries fall
        // outside the geometry and must be skipped by both paths.
        let launch = LaunchConfig::new(1u32, 64u32);
        let entries: Vec<TraceEntry> = picks
            .iter()
            .map(|&(tid, pc_sel, addr_sel)| {
                entry(
                    tid,
                    0x10 + u64::from(pc_sel) * 0x10,
                    0x1000 + u64::from(addr_sel) * 4,
                    pc_sel == 3,
                )
            })
            .collect();
        let materialized =
            profile_thread_trace("prop", &entries, &launch, &ProfilerConfig::default());
        let cfg = IngestConfig {
            max_lane_queue: 256,
            overflow: OverflowPolicy::Error,
            ..IngestConfig::default()
        };
        let mut ing = Ingestor::new("prop", launch, cfg);
        for e in &entries {
            ing.push_entry(*e).expect("under bound");
        }
        match (ing.finish(), materialized) {
            (Ok(outcome), Ok(expected)) => {
                prop_assert_eq!(canonical_json(&outcome.profile), canonical_json(&expected));
            }
            (Err(IngestError::Profile(_)), Err(_)) => {} // both empty
            (got, want) => {
                panic!("paths disagree: streaming {got:?} vs materialized {want:?}");
            }
        }
    }

    /// The FSM only relaxes down the hierarchy: over any address
    /// sequence, `rank` never decreases.
    #[test]
    fn fsm_is_monotone(addrs in proptest::collection::vec(0..u64::MAX, 1..300)) {
        let mut f = PatternFsm::new(ClassifierConfig::default().indirect_max_span);
        let mut last = f.class().rank();
        for a in addrs {
            f.observe(a);
            let r = f.class().rank();
            prop_assert!(r >= last, "rank went {last} -> {r}");
            last = r;
        }
    }

    /// Synthesized affine streams classify exactly: constants stay
    /// CONSTANT, strided runs are LINEAR with the right stride, nested
    /// loops are QUADRIC with the right geometry.
    #[test]
    fn synthesized_affine_streams_classify(
        base in 0..(1u64 << 40),
        stride in 1..4096i64,
        ni in 2..32u64,
        nj in 2..16u64,
        outer in 16_384..262_144i64,
    ) {
        let span = ClassifierConfig::default().indirect_max_span;
        let mut c = PatternFsm::new(span);
        for _ in 0..50 {
            c.observe(base);
        }
        prop_assert_eq!(c.class(), PatternClass::Constant);

        let mut l = PatternFsm::new(span);
        for k in 0..50u64 {
            l.observe(base.wrapping_add((k as i64 * stride) as u64));
        }
        prop_assert_eq!(l.class(), PatternClass::Linear);
        prop_assert_eq!(l.stride(), stride);

        // outer == ni * stride degenerates to a pure linear walk, which
        // correctly classifies LINEAR — skip that corner.
        if outer != ni as i64 * stride {
            let mut q = PatternFsm::new(span);
            for j in 0..nj {
                for i in 0..ni {
                    q.observe(
                        base.wrapping_add((j as i64 * outer) as u64)
                            .wrapping_add((i as i64 * stride) as u64),
                    );
                }
            }
            prop_assert_eq!(q.class(), PatternClass::Quadric);
            prop_assert_eq!(q.stride(), stride);
            prop_assert_eq!(q.quadric(), (ni, outer));
        }
    }

    /// Synthesized gathers: bounded non-affine streams are INDIRECT,
    /// unbounded drifts are RANDOM.
    #[test]
    fn synthesized_gathers_classify(seed in 1..u64::MAX) {
        let span = ClassifierConfig::default().indirect_max_span;
        let mut x = seed;
        let mut lcg = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x
        };
        let mut ind = PatternFsm::new(span);
        for _ in 0..100 {
            ind.observe(0x10_0000 + (lcg() % (1 << 18)));
        }
        prop_assert_eq!(ind.class(), PatternClass::Indirect);

        let mut rnd = PatternFsm::new(span);
        for _ in 0..100 {
            rnd.observe(lcg() % (1 << 44));
        }
        prop_assert_eq!(rnd.class(), PatternClass::Random);
    }
}
