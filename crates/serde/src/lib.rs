//! Minimal, offline, API-compatible subset of `serde` for this workspace.
//!
//! The build environment has no reachable crates.io registry, so the
//! workspace vendors just enough of the serde surface that the G-MAP crates
//! use: `#[derive(Serialize, Deserialize)]` plus the blanket impls needed by
//! the derived code and by `serde_json`. The data model is a single `Value`
//! tree; derived types serialize *to* a `Value` and deserialize *from* one.
//!
//! This is not a general serde replacement — it covers exactly the shapes
//! present in this repository (structs with named fields, tuple structs,
//! enums with unit/tuple/struct variants, std collections, primitives).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The self-describing data model every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, `Vec`).
    Seq(Vec<Value>),
    /// Key-ordered map (structs, `BTreeMap`, enum struct variants).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a message describing the shape mismatch.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can lower itself into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{} out of range for {}", n, stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{} out of range for {}", n, stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(DeError::custom(format!(
                        "expected {} got {:?}", stringify!($t), other
                    ))),
                }
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{} out of range for {}", n, stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{} out of range for {}", n, stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::custom(format!(
                        "expected {} got {:?}", stringify!($t), other
                    ))),
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::custom(format!("expected f64 got {:?}", other))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool got {:?}", other))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string got {:?}", other))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence got {:?}",
                other
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// Maps serialize as a sequence of [key, value] pairs so non-string keys
// (e.g. `Histogram<i64>`) round-trip losslessly through JSON.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items
                .iter()
                .map(|item| match item {
                    Value::Seq(pair) if pair.len() == 2 => {
                        Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
                    }
                    other => Err(DeError::custom(format!(
                        "expected [key, value] pair got {:?}",
                        other
                    ))),
                })
                .collect(),
            other => Err(DeError::custom(format!("expected map got {:?}", other))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_value).collect();
                parsed?
                    .try_into()
                    .map_err(|_| DeError::custom("array length mismatch"))
            }
            other => Err(DeError::custom(format!(
                "expected array of {} got {:?}",
                N, other
            ))),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+));+ $(;)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected {}-tuple got {:?}", LEN, other
                    ))),
                }
            }
        }
    )+};
}

ser_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}
