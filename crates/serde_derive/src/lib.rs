//! `#[derive(Serialize, Deserialize)]` for the vendored offline serde subset.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`, since
//! the build has no registry access). The parser handles exactly the item
//! shapes used in this workspace: structs with named fields, tuple structs,
//! unit structs, and enums with unit / tuple / struct variants, plus a single
//! generic parameter list (e.g. `Histogram<T: Ord>`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Body {
    Unit,
    /// Tuple struct with N unnamed fields.
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: Body,
}

enum ItemKind {
    Struct(Body),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Full generics declaration, e.g. `T: Ord` (empty if none).
    generics_decl: String,
    /// Type parameter names, e.g. `["T"]`.
    generics_params: Vec<String>,
    kind: ItemKind,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attrs(&mut self) {
        loop {
            match (self.tokens.get(self.pos), self.tokens.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    self.pos += 2;
                }
                _ => break,
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {}, got {:?}", what, other),
        }
    }

    /// Consume a `<...>` generics block if present; return (decl, params).
    fn parse_generics(&mut self) -> (String, Vec<String>) {
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
            _ => return (String::new(), Vec::new()),
        }
        self.pos += 1; // consume '<'
        let mut depth = 1usize;
        let mut decl_tokens: Vec<TokenTree> = Vec::new();
        let mut params = Vec::new();
        let mut at_param_start = true;
        let mut prev_was_lifetime_tick = false;
        while depth > 0 {
            let t = self.next().expect("serde_derive: unclosed generics");
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => at_param_start = true,
                    '\'' => prev_was_lifetime_tick = true,
                    _ => {}
                }
            } else if let TokenTree::Ident(id) = &t {
                if depth == 1 && at_param_start && !prev_was_lifetime_tick {
                    params.push(id.to_string());
                }
                at_param_start = false;
                prev_was_lifetime_tick = false;
            }
            decl_tokens.push(t);
        }
        let decl: TokenStream = decl_tokens.into_iter().collect();
        (decl.to_string(), params)
    }
}

/// Parse named fields from the token stream of a `{ ... }` group.
fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {:?}", other),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde_derive: expected ':' after field {}, got {:?}",
                name, other
            ),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0usize;
        while let Some(t) = c.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        c.pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            c.pos += 1;
        }
        fields.push(Field { name });
    }
    fields
}

/// Count the comma-separated entries of a tuple-struct / tuple-variant body.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = ts.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut depth = 0usize;
    let mut saw_trailing_comma = false;
    for (i, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    if i + 1 == tokens.len() {
                        saw_trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {:?}", other),
        };
        let body = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                Body::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                Body::Named(fields)
            }
            _ => Body::Unit,
        };
        // Skip to the comma separating variants (covers `= discr` forms too).
        while let Some(t) = c.peek() {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    c.pos += 1;
                    break;
                }
            }
            c.pos += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    let (generics_decl, generics_params) = c.parse_generics();
    // Skip a where-clause if present.
    if let Some(TokenTree::Ident(id)) = c.peek() {
        if id.to_string() == "where" {
            while let Some(t) = c.peek() {
                match t {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break,
                    TokenTree::Punct(p) if p.as_char() == ';' => break,
                    _ => c.pos += 1,
                }
            }
        }
    }
    let kind = if kw == "enum" {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, got {:?}", other),
        }
    } else if kw == "struct" {
        match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Body::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(Body::Tuple(count_tuple_fields(g.stream())))
            }
            _ => ItemKind::Struct(Body::Unit),
        }
    } else {
        panic!(
            "serde_derive: only structs and enums are supported, got `{}`",
            kw
        );
    };
    Item {
        name,
        generics_decl,
        generics_params,
        kind,
    }
}

/// `impl<decl> Trait for Name<params> where P: Bound, ...` header pieces.
fn impl_header(item: &Item, trait_path: &str, bound: &str) -> String {
    let mut s = String::new();
    s.push_str("impl");
    if !item.generics_decl.is_empty() {
        s.push('<');
        s.push_str(&item.generics_decl);
        s.push('>');
    }
    s.push(' ');
    s.push_str(trait_path);
    s.push_str(" for ");
    s.push_str(&item.name);
    if !item.generics_params.is_empty() {
        s.push('<');
        s.push_str(&item.generics_params.join(", "));
        s.push('>');
    }
    if !item.generics_params.is_empty() {
        s.push_str(" where ");
        let clauses: Vec<String> = item
            .generics_params
            .iter()
            .map(|p| format!("{}: {}", p, bound))
            .collect();
        s.push_str(&clauses.join(", "));
    }
    s
}

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    match &item.kind {
        ItemKind::Struct(Body::Unit) => {
            body.push_str("serde::Value::Null");
        }
        ItemKind::Struct(Body::Tuple(1)) => {
            // Newtype structs serialize transparently, matching real serde.
            body.push_str("serde::Serialize::to_value(&self.0)");
        }
        ItemKind::Struct(Body::Tuple(n)) => {
            body.push_str("serde::Value::Seq(vec![");
            for i in 0..*n {
                body.push_str(&format!("serde::Serialize::to_value(&self.{}), ", i));
            }
            body.push_str("])");
        }
        ItemKind::Struct(Body::Named(fields)) => {
            body.push_str("serde::Value::Map(vec![");
            for f in fields {
                body.push_str(&format!(
                    "(\"{0}\".to_string(), serde::Serialize::to_value(&self.{0})), ",
                    f.name
                ));
            }
            body.push_str("])");
        }
        ItemKind::Enum(variants) => {
            body.push_str("match self {");
            for v in variants {
                let name = &item.name;
                match &v.body {
                    Body::Unit => body.push_str(&format!(
                        "{}::{} => serde::Value::Str(\"{}\".to_string()), ",
                        name, v.name, v.name
                    )),
                    Body::Tuple(1) => body.push_str(&format!(
                        "{}::{}(f0) => serde::Value::Map(vec![(\"{}\".to_string(), \
                         serde::Serialize::to_value(f0))]), ",
                        name, v.name, v.name
                    )),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{}", i)).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({})", b))
                            .collect();
                        body.push_str(&format!(
                            "{}::{}({}) => serde::Value::Map(vec![(\"{}\".to_string(), \
                             serde::Value::Seq(vec![{}]))]), ",
                            name,
                            v.name,
                            binds.join(", "),
                            v.name,
                            elems.join(", ")
                        ));
                    }
                    Body::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        body.push_str(&format!(
                            "{}::{} {{ {} }} => serde::Value::Map(vec![(\"{}\".to_string(), \
                             serde::Value::Map(vec![{}]))]), ",
                            name,
                            v.name,
                            binds.join(", "),
                            v.name,
                            entries.join(", ")
                        ));
                    }
                }
            }
            body.push('}');
        }
    }
    format!(
        "{} {{ fn to_value(&self) -> serde::Value {{ {} }} }}",
        impl_header(item, "serde::Serialize", "serde::Serialize"),
        body
    )
}

fn named_field_reads(target: &str, fields: &[Field], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{0}: serde::Deserialize::from_value({1}.get(\"{0}\").unwrap_or(&serde::Value::Null))?",
                f.name, source
            )
        })
        .collect();
    format!("Ok({} {{ {} }})", target, inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.kind {
        ItemKind::Struct(Body::Unit) => {
            body.push_str(&format!("let _ = v; Ok({})", name));
        }
        ItemKind::Struct(Body::Tuple(1)) => {
            body.push_str(&format!("Ok({}(serde::Deserialize::from_value(v)?))", name));
        }
        ItemKind::Struct(Body::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{}])?", i))
                .collect();
            body.push_str(&format!(
                "match v {{ serde::Value::Seq(items) if items.len() == {} => \
                 Ok({}({})), other => Err(serde::DeError::custom(format!(\
                 \"expected {}-tuple for {}, got {{:?}}\", other))) }}",
                n,
                name,
                elems.join(", "),
                n,
                name
            ));
        }
        ItemKind::Struct(Body::Named(fields)) => {
            body.push_str(&named_field_reads(name, fields, "v"));
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.body {
                    Body::Unit => {
                        unit_arms.push_str(&format!("\"{}\" => Ok({}::{}), ", v.name, name, v.name))
                    }
                    Body::Tuple(1) => data_arms.push_str(&format!(
                        "\"{}\" => Ok({}::{}(serde::Deserialize::from_value(payload)?)), ",
                        v.name, name, v.name
                    )),
                    Body::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&items[{}])?", i))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{}\" => match payload {{ serde::Value::Seq(items) \
                             if items.len() == {} => Ok({}::{}({})), other => \
                             Err(serde::DeError::custom(format!(\
                             \"bad payload for {}::{}: {{:?}}\", other))) }}, ",
                            v.name,
                            n,
                            name,
                            v.name,
                            elems.join(", "),
                            name,
                            v.name
                        ));
                    }
                    Body::Named(fields) => {
                        let target = format!("{}::{}", name, v.name);
                        data_arms.push_str(&format!(
                            "\"{}\" => {}, ",
                            v.name,
                            named_field_reads(&target, fields, "payload")
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "match v {{ \
                 serde::Value::Str(s) => match s.as_str() {{ {} _ => \
                 Err(serde::DeError::custom(format!(\"unknown {} variant {{}}\", s))) }}, \
                 serde::Value::Map(entries) if entries.len() == 1 => {{ \
                 let (tag, payload) = &entries[0]; \
                 let _ = payload; \
                 match tag.as_str() {{ {} _ => \
                 Err(serde::DeError::custom(format!(\"unknown {} variant {{}}\", tag))) }} }}, \
                 other => Err(serde::DeError::custom(format!(\
                 \"bad value for enum {}: {{:?}}\", other))) }}",
                unit_arms, name, data_arms, name, name
            ));
        }
    }
    format!(
        "{} {{ fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {} }} }}",
        impl_header(item, "serde::Deserialize", "serde::Deserialize"),
        body
    )
}

/// Derive `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}
