//! Minimal offline subset of the `criterion` benchmarking API.
//!
//! The build environment has no registry access; this crate provides the
//! small surface the workspace benches use — `Criterion`, benchmark groups,
//! `Bencher::iter`/`iter_batched`, `Throughput`, and the `criterion_group!`
//! / `criterion_main!` macros — backed by a simple mean-of-samples timer
//! that prints one line per benchmark.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// Retained for API compatibility; batching is not tuned here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: setup runs once per timed iteration.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// Per-iteration inputs.
    PerIteration,
}

/// Units-of-work annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate the group's units of work per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `iters` times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

fn run_bench<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One warmup sample, then `samples` timed samples of one iteration each.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let mean = total / samples as u32;
    let mut line = format!("{:<48} time: [mean {:>12?}  best {:>12?}]", id, mean, best);
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  thrpt: {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{}", line);
}

/// Define a benchmark group entry point. Supports both the positional and
/// the `name = ...; config = ...; targets = ...` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
