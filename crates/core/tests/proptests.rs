//! Property-based tests of the profile → clone pipeline.

use gmap_core::generate::{expected_accesses, generate_streams};
use gmap_core::miniaturize;
use gmap_core::profiler::{profile_kernel, ProfilerConfig};
use gmap_gpu::kernel::{dsl, KernelBuilder};
use gmap_gpu::schedule::WarpStreamEvent;
use proptest::prelude::*;

/// A randomized-but-valid strided kernel.
fn arb_kernel() -> impl Strategy<Value = gmap_gpu::kernel::KernelDesc> {
    (1u32..6, 1u32..4, 1i64..64, 1u32..12, -256i64..256).prop_map(
        |(blocks, warps_pb, tid_coef, trip, iter_coef)| {
            KernelBuilder::new("prop", blocks, warps_pb * 32)
                .array("a", 1 << 16)
                .stmt(dsl::loop_n(
                    trip,
                    vec![dsl::read(
                        0x10,
                        0,
                        dsl::affine(0, tid_coef, vec![(0, iter_coef)]),
                    )],
                ))
                .write(
                    gmap_trace::record::Pc(0x20),
                    0,
                    gmap_gpu::kernel::IndexExpr::tid_linear(0, 1),
                )
                .build()
                .expect("construction is valid by design")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Profiles of arbitrary strided kernels validate, and their clones
    /// have exactly the expected shape: same warp count, same per-warp
    /// access counts, line-aligned transactions.
    #[test]
    fn profile_then_clone_shape(kernel in arb_kernel(), seed in any::<u64>()) {
        let profile = profile_kernel(&kernel, &ProfilerConfig::default());
        profile.validate().expect("profiler output is consistent");
        let clone = generate_streams(&profile, seed);
        prop_assert_eq!(clone.len() as u32, profile.launch.total_warps(32));
        let per_warp_expected = profile.profiles[0].num_accesses();
        for s in &clone {
            prop_assert_eq!(s.num_accesses(), per_warp_expected);
            for e in &s.events {
                if let WarpStreamEvent::Access(a) = e {
                    for l in &a.lines {
                        prop_assert_eq!(l.0 % 128, 0);
                    }
                }
            }
        }
        // Volume identity.
        prop_assert_eq!(
            expected_accesses(&profile),
            clone.iter().map(|s| s.num_accesses() as u64).sum::<u64>()
        );
    }

    /// JSON round-trip is the identity for arbitrary profiles.
    #[test]
    fn profile_serde_identity(kernel in arb_kernel()) {
        let profile = profile_kernel(&kernel, &ProfilerConfig::default());
        let mut buf = Vec::new();
        profile.save(&mut buf).expect("save");
        let back = gmap_core::GmapProfile::load(&buf[..]).expect("load");
        prop_assert_eq!(profile, back);
    }

    /// Miniaturization never breaks profile consistency and shrinks (or
    /// keeps) the clone volume for factors >= 1.
    #[test]
    fn miniaturize_consistency(kernel in arb_kernel(), factor in 1.0f64..20.0) {
        let profile = profile_kernel(&kernel, &ProfilerConfig::default());
        let mini = miniaturize(&profile, factor).expect("factor > 0");
        mini.validate().expect("miniaturized profile is consistent");
        prop_assert!(expected_accesses(&mini) <= expected_accesses(&profile));
        // Still generates a non-empty clone.
        let clone = generate_streams(&mini, 1);
        prop_assert!(clone.iter().map(|s| s.num_accesses()).sum::<usize>() > 0);
    }

    /// Clone generation is a pure function of (profile, seed).
    #[test]
    fn generation_determinism(kernel in arb_kernel(), seed in any::<u64>()) {
        let profile = profile_kernel(&kernel, &ProfilerConfig::default());
        prop_assert_eq!(generate_streams(&profile, seed), generate_streams(&profile, seed));
    }

    /// Rebasing by any aligned offset shifts every generated transaction
    /// by exactly that offset (locality is translation-invariant). Both
    /// sides get a large positive headroom first: generated addresses
    /// saturate at zero, so the guarantee holds for the intended use —
    /// positive obfuscation offsets — not for walks driven into the
    /// bottom of the address space.
    #[test]
    fn rebase_translates_uniformly(kernel in arb_kernel(), delta_lines in 1u32..10_000) {
        let mut profile = profile_kernel(&kernel, &ProfilerConfig::default());
        profile.rebase(1 << 30);
        let delta = delta_lines as i64 * 128;
        let mut shifted = profile.clone();
        shifted.rebase(delta);
        let a = generate_streams(&profile, 7);
        let b = generate_streams(&shifted, 7);
        for (sa, sb) in a.iter().zip(&b) {
            for (ea, eb) in sa.events.iter().zip(&sb.events) {
                if let (WarpStreamEvent::Access(xa), WarpStreamEvent::Access(xb)) = (ea, eb) {
                    for (la, lb) in xa.lines.iter().zip(&xb.lines) {
                        prop_assert_eq!(lb.0 as i64 - la.0 as i64, delta);
                    }
                }
            }
        }
    }
}
