//! End-to-end JSON round-trip coverage for the wire-format types.
//!
//! The `gmap serve` model store and its content-addressed cache keys
//! depend on (de)serialization being lossless and canonical: a profile
//! must survive `to_json` → `from_json` bit-exactly, pretty and compact
//! renderings must parse to the same value, and equal values must always
//! hash to the same cache key.

use gmap_core::application::AppProfile;
use gmap_core::cachekey;
use gmap_core::fidelity::{self, FidelityClass, FidelityReport};
use gmap_core::profiler::{profile_kernel, ProfilerConfig};
use gmap_core::GmapProfile;
use gmap_gpu::app::Application;
use gmap_gpu::kernel::{dsl, KernelBuilder};
use gmap_gpu::workloads::{self, Scale};
use proptest::prelude::*;

fn workload_profile(name: &str) -> GmapProfile {
    let kernel = workloads::by_name(name, Scale::Tiny).expect("known workload");
    profile_kernel(&kernel, &ProfilerConfig::default())
}

#[test]
fn profile_to_json_from_json_identity() {
    for name in ["kmeans", "hotspot", "bfs"] {
        let p = workload_profile(name);
        let back = GmapProfile::from_json(&p.to_json()).expect("parse back");
        assert_eq!(p, back, "{name}: compact JSON round trip must be lossless");
        back.validate().expect("round-tripped profile stays valid");
    }
}

#[test]
fn compact_and_pretty_parse_to_the_same_profile() {
    let p = workload_profile("srad");
    let mut pretty = Vec::new();
    p.save(&mut pretty).expect("save pretty");
    let from_pretty = GmapProfile::load(&pretty[..]).expect("load pretty");
    let from_compact = GmapProfile::from_json(&p.to_json()).expect("load compact");
    assert_eq!(from_pretty, from_compact);
}

#[test]
fn app_profile_to_json_from_json_identity() {
    let app = gmap_gpu::app::apps::backprop_training(Scale::Tiny);
    let model = gmap_core::profile_application(&app, &ProfilerConfig::default());
    let back = AppProfile::from_json(&model.to_json()).expect("parse back");
    assert_eq!(model, back);
    back.validate().expect("valid after round trip");
}

#[test]
fn fidelity_report_round_trips_compact_and_pretty() {
    for name in ["kmeans", "hotspot"] {
        let r = fidelity::analyze(&workload_profile(name));
        let compact = serde_json::to_string(&r).expect("serialize");
        let pretty = serde_json::to_string_pretty(&r).expect("serialize pretty");
        assert_eq!(
            serde_json::from_str::<FidelityReport>(&compact).expect("parse compact"),
            r
        );
        assert_eq!(
            serde_json::from_str::<FidelityReport>(&pretty).expect("parse pretty"),
            r
        );
    }
    for class in [
        FidelityClass::High,
        FidelityClass::Medium,
        FidelityClass::Low,
    ] {
        let json = serde_json::to_string(&class).expect("serialize class");
        assert_eq!(
            serde_json::from_str::<FidelityClass>(&json).expect("parse class"),
            class
        );
    }
}

#[test]
fn cache_keys_are_content_addressed() {
    let a = workload_profile("kmeans");
    let b = workload_profile("kmeans");
    assert_eq!(
        cachekey::key_of(&a),
        cachekey::key_of(&b),
        "identical profiles must share a cache key"
    );
    let mut rebased = a.clone();
    rebased.rebase(0x1000);
    assert_ne!(
        cachekey::key_of(&a),
        cachekey::key_of(&rebased),
        "any content change must change the key"
    );
    assert_ne!(
        cachekey::key_of(&a),
        cachekey::key_of(&workload_profile("bfs"))
    );
}

/// A randomized multi-kernel application with varying geometry.
fn arb_app() -> impl Strategy<Value = Application> {
    proptest::collection::vec((1u32..5, 1u32..3, 1i64..32, -64i64..64), 1..4).prop_map(|specs| {
        let kernels = specs
            .into_iter()
            .enumerate()
            .map(|(i, (blocks, warps_pb, tid_coef, iter_coef))| {
                KernelBuilder::new(&format!("k{i}"), blocks, warps_pb * 32)
                    .array("a", 1 << 14)
                    .stmt(dsl::loop_n(
                        3,
                        vec![dsl::read(
                            0x10 + i as u64 * 0x10,
                            0,
                            dsl::affine(0, tid_coef, vec![(0, iter_coef)]),
                        )],
                    ))
                    .build()
                    .expect("construction is valid by design")
            })
            .collect::<Vec<_>>();
        Application::new("prop-app", kernels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `to_json`/`from_json` is the identity for arbitrary application
    /// models, and canonical JSON (hence the cache key) is deterministic.
    #[test]
    fn app_model_json_identity(app in arb_app()) {
        let model = gmap_core::profile_application(&app, &ProfilerConfig::default());
        let json = model.to_json();
        let back = AppProfile::from_json(&json).expect("parse back");
        prop_assert_eq!(&model, &back);
        // Canonical form is stable: re-rendering the parsed value gives
        // the same bytes, so cache keys never depend on parse history.
        prop_assert_eq!(json.clone(), back.to_json());
        prop_assert_eq!(cachekey::key_of(&model), cachekey::key_of(&back));
        prop_assert_eq!(cachekey::content_key(&json), cachekey::key_of(&model));
    }

    /// Fidelity reports survive JSON for arbitrary profiled kernels.
    #[test]
    fn fidelity_json_identity(app in arb_app()) {
        let profile = profile_kernel(&app.kernels[0], &ProfilerConfig::default());
        let report = fidelity::analyze(&profile);
        let json = serde_json::to_string(&report).expect("serialize");
        let back: FidelityReport = serde_json::from_str(&json).expect("parse");
        prop_assert_eq!(report, back);
    }
}
