//! G-MAP: statistical pattern based modeling of GPU memory access streams.
//!
//! This crate implements the contribution of the DAC 2017 paper: a
//! methodology that *profiles* the memory behaviour of a GPGPU application
//! into a compact statistical 5-tuple `(Π, Q, B, P_S, P_R)` and then
//! *regenerates* ("clones") a synthetic memory access stream from nothing
//! but that profile. The clone can stand in for the original application in
//! cache/prefetcher/DRAM design-space exploration — useful when the
//! original is proprietary, or simply too large to simulate repeatedly.
//!
//! The pipeline (paper §4):
//!
//! 1. [`profiler`] — consume coalesced per-warp transaction streams and
//!    extract: dominant dynamic memory instruction profiles Π with weights
//!    Q (clustered at similarity threshold 0.9, §4.4), per-instruction base
//!    addresses B, inter-thread stride distributions `P_E` (§4.2),
//!    intra-thread stride distributions `P_A` and reuse-distance
//!    distributions `P_R` (§4.3), plus a transactions-per-access
//!    distribution so divergent/uncoalesced instructions clone faithfully.
//! 2. [`generate`] — Algorithms 1 and 2: per-warp trace synthesis from the
//!    distributions, then warp/threadblock formation per the Fermi model.
//! 3. [`model`] — drive either stream (original or clone) through the warp
//!    scheduler and the cache hierarchy of `gmap-memsim`, and the recorded
//!    memory trace through `gmap-dram`.
//! 4. [`validate`] — the paper's two validation metrics: percentage error
//!    and Pearson correlation across configuration sweeps.
//! 5. [`mod@miniaturize`] — shrink the clone (§4.6): fewer accesses per warp
//!    first, fewer warps second, trading accuracy for simulation speed
//!    (Fig. 8).
//!
//! # Quickstart
//!
//! ```
//! use gmap_core::{profile_kernel, ProfilerConfig, generate::generate_streams};
//! use gmap_gpu::workloads::{self, Scale};
//!
//! // Profile an application (here: the synthetic kmeans model).
//! let kernel = workloads::kmeans(Scale::Tiny);
//! let profile = profile_kernel(&kernel, &ProfilerConfig::default());
//!
//! // The profile alone — no trace, no source — regenerates a clone.
//! let clone = generate_streams(&profile, 42);
//! assert_eq!(clone.len() as u32, profile.launch.total_warps(profile.warp_size));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod application;
pub mod cachekey;
pub mod error;
pub mod fidelity;
pub mod generate;
pub mod ingest;
pub mod miniaturize;
pub mod model;
pub mod profile;
pub mod profiler;
pub mod validate;

pub use admission::{admit_kernel, profile_application_admitted, profile_kernel_admitted};
pub use application::{
    profile_application, run_application_original, run_application_proxy, AppProfile, AppSimOutcome,
};
pub use error::GmapError;
pub use fidelity::{FidelityClass, FidelityReport};
pub use miniaturize::miniaturize;
pub use model::{run_original, run_proxy, simulate_streams, SimOutcome, SimtConfig};
pub use profile::{GmapProfile, PiEntry, PiProfile};
pub use profiler::{profile_kernel, profile_streams, ProfilerConfig};
pub use validate::{compare_series, summarize, BenchmarkComparison, SweepSummary};

/// The coalescing granularity of the capture model (CUDA guide §G.4.2,
/// Fermi: 128-byte transactions).
///
/// Both the original and the clone are coalesced at this granularity
/// regardless of the simulated cache line size, exactly as the paper's
/// profiler does; caches index transactions by their own line size.
pub const COALESCE_BYTES: u64 = 128;
