//! Profile fidelity analysis: *will this profile clone well?*
//!
//! The paper's error analysis (§5) observes that cloning accuracy tracks
//! how *dominant* an application's patterns are: "Hotspot experiences the
//! highest error because it does not have significantly dominant
//! intra-/inter-thread stride patterns or reuse locality." This module
//! makes that observation operational: it scores a [`GmapProfile`] on the
//! dominance of each statistical component and predicts a fidelity class,
//! so a workload owner can tell — before shipping a profile — whether a
//! clone will be trustworthy, and an architect can weight results
//! accordingly.

use crate::profile::GmapProfile;
use gmap_trace::Histogram;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Normalized entropy of a histogram in `[0, 1]`: 0 = a single value
/// (perfectly predictable), 1 = uniform over its support.
fn normalized_entropy<T: Ord + Copy>(h: &Histogram<T>) -> f64 {
    let total = h.total();
    if total == 0 || h.distinct() <= 1 {
        return 0.0;
    }
    let mut entropy = 0.0;
    for (_, c) in h.iter() {
        let p = c as f64 / total as f64;
        entropy -= p * p.log2();
    }
    entropy / (h.distinct() as f64).log2()
}

/// Weighted dominance of a profile's stride distributions: the mean
/// frequency of the most common stride, weighted by each instruction's
/// execution frequency. 1.0 = every instruction has a single stride.
fn stride_dominance(profile: &GmapProfile, strides: &[Histogram<i64>]) -> f64 {
    let freqs = profile.slot_frequencies();
    let mut acc = 0.0;
    let mut weight = 0.0;
    for (slot, h) in strides.iter().enumerate() {
        if let Some((_, f)) = h.dominant() {
            acc += f * freqs[slot];
            weight += freqs[slot];
        }
    }
    if weight == 0.0 {
        // No instruction repeats at all: trivially predictable.
        1.0
    } else {
        acc / weight
    }
}

/// Predicted cloneability class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FidelityClass {
    /// Strongly dominant patterns: expect clone errors of a few percent
    /// or less (the kmeans/heartwall regime).
    High,
    /// Mixed regularity: expect single-digit to low-teens errors.
    Medium,
    /// No dominant patterns: the hotspot regime — the clone reproduces
    /// aggregate intensity, not fine-grained locality.
    Low,
}

impl fmt::Display for FidelityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FidelityClass::High => f.write_str("high"),
            FidelityClass::Medium => f.write_str("medium"),
            FidelityClass::Low => f.write_str("low"),
        }
    }
}

/// Fidelity report for one profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Application name.
    pub name: String,
    /// Frequency-weighted dominance of inter-warp strides `[0, 1]`.
    pub inter_stride_dominance: f64,
    /// Frequency-weighted dominance of intra-warp strides `[0, 1]`.
    pub intra_stride_dominance: f64,
    /// Mean normalized entropy of the reuse-distance distributions
    /// (lower = more predictable temporal locality).
    pub reuse_entropy: f64,
    /// Fraction of stride/reuse positions covered by structural schedules
    /// (majority-agreed per-ordinal behaviour).
    pub structural_coverage: f64,
    /// Weight of the heaviest π profile in `[0, 1]` — control-flow
    /// uniformity (§4.4).
    pub path_dominance: f64,
    /// Combined score in `[0, 1]`.
    pub score: f64,
    /// Predicted class.
    pub class: FidelityClass,
}

impl fmt::Display for FidelityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} score {:.2} ({})  inter {:.2}  intra {:.2}  reuseH {:.2}  struct {:.2}  path {:.2}",
            self.name,
            self.score,
            self.class,
            self.inter_stride_dominance,
            self.intra_stride_dominance,
            self.reuse_entropy,
            self.structural_coverage,
            self.path_dominance
        )
    }
}

/// Analyzes a profile's expected cloning fidelity.
pub fn analyze(profile: &GmapProfile) -> FidelityReport {
    let inter = stride_dominance(profile, &profile.inter_stride);
    let intra = stride_dominance(profile, &profile.intra_stride);
    let reuse_entropy = {
        let hs: Vec<f64> = profile
            .reuse
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let w = profile.profile_weights.freq_of(i);
                w * normalized_entropy(r.distances())
            })
            .collect();
        hs.iter().sum()
    };
    let structural_coverage = {
        let mut covered = 0usize;
        let mut total = 0usize;
        for sched in &profile.intra_stride_schedule {
            total += sched.len();
            covered += sched.iter().filter(|e| e.is_some()).count();
        }
        for sched in &profile.pc_reuse_schedule {
            total += sched.len();
            covered += sched.iter().filter(|e| e.is_some()).count();
        }
        if total == 0 {
            1.0
        } else {
            covered as f64 / total as f64
        }
    };
    let path_dominance = profile.profile_weights.dominant().map_or(1.0, |(_, f)| f);

    // Equal-weight blend; entropy enters inverted (low entropy = good).
    let score =
        (inter + intra + (1.0 - reuse_entropy) + structural_coverage + path_dominance) / 5.0;
    let class = if score >= 0.8 {
        FidelityClass::High
    } else if score >= 0.55 {
        FidelityClass::Medium
    } else {
        FidelityClass::Low
    };
    FidelityReport {
        name: profile.name.clone(),
        inter_stride_dominance: inter,
        intra_stride_dominance: intra,
        reuse_entropy,
        structural_coverage,
        path_dominance,
        score,
        class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{profile_kernel, ProfilerConfig};
    use gmap_gpu::workloads::{self, Scale};

    fn report(name: &str) -> FidelityReport {
        let k = workloads::by_name(name, Scale::Tiny).expect("known");
        analyze(&profile_kernel(&k, &ProfilerConfig::default()))
    }

    #[test]
    fn entropy_bounds() {
        let single: Histogram<i64> = [5, 5, 5].into_iter().collect();
        assert_eq!(normalized_entropy(&single), 0.0);
        let uniform: Histogram<i64> = (0..16).collect();
        assert!((normalized_entropy(&uniform) - 1.0).abs() < 1e-9);
        let skewed: Histogram<i64> = [1, 1, 1, 1, 1, 1, 1, 2].into_iter().collect();
        let h = normalized_entropy(&skewed);
        assert!(h > 0.0 && h < 1.0);
        assert_eq!(normalized_entropy(&Histogram::<i64>::new()), 0.0);
    }

    #[test]
    fn regular_workloads_score_high() {
        for name in ["scalarprod", "blackscholes", "kmeans", "srad"] {
            let r = report(name);
            assert_eq!(r.class, FidelityClass::High, "{name}: {r}");
            assert!(r.inter_stride_dominance > 0.7, "{name}: {r}");
        }
    }

    #[test]
    fn hotspot_scores_low() {
        let r = report("hotspot");
        assert_eq!(r.class, FidelityClass::Low, "{r}");
        assert!(r.inter_stride_dominance < 0.3, "{r}");
        assert!(r.reuse_entropy > 0.5, "{r}");
    }

    #[test]
    fn irregular_apps_score_below_regular_ones() {
        let hotspot = report("hotspot").score;
        let bfs = report("bfs").score;
        let kmeans = report("kmeans").score;
        assert!(hotspot < kmeans);
        assert!(bfs < kmeans);
    }

    #[test]
    fn score_in_unit_interval_for_all_workloads() {
        for name in workloads::NAMES {
            let r = report(name);
            assert!((0.0..=1.0).contains(&r.score), "{name}: score {}", r.score);
            assert!((0.0..=1.0).contains(&r.structural_coverage), "{name}: {r}");
            assert!((0.0..=1.0).contains(&r.path_dominance), "{name}: {r}");
        }
    }

    #[test]
    fn display_mentions_name_and_class() {
        let r = report("aes");
        let text = r.to_string();
        assert!(text.contains("aes"));
        assert!(text.contains("score"));
    }

    #[test]
    fn serde_round_trip() {
        let r = report("lib");
        let json = serde_json::to_string(&r).expect("serialize");
        assert_eq!(
            serde_json::from_str::<FidelityReport>(&json).expect("deserialize"),
            r
        );
    }
}
