//! Multi-kernel application support.
//!
//! Real GPGPU applications launch several kernels (paper §2.2); G-MAP
//! profiles each kernel separately — a kernel is the unit of execution
//! regularity — and the clone replays them in order. The cache hierarchy
//! is shared across the sequence, so inter-kernel locality (a later kernel
//! hitting data its predecessor left in the L2) is modeled on both the
//! original and the proxy side.

use crate::error::GmapError;
use crate::generate::generate_streams;
use crate::model::{original_streams, SimOutcome, SimtConfig};
use crate::profile::GmapProfile;
use crate::profiler::{profile_kernel, ProfilerConfig};
use gmap_gpu::app::Application;
use gmap_gpu::hierarchy::LaunchConfig;
use gmap_gpu::schedule::{run_schedule, ScheduleOutcome, WarpStream};
use gmap_memsim::hierarchy::GpuHierarchy;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// The shippable profile of a multi-kernel application: one
/// [`GmapProfile`] per kernel, in launch order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name.
    pub name: String,
    /// Per-kernel profiles, in launch order.
    pub kernels: Vec<GmapProfile>,
}

impl AppProfile {
    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors.
    pub fn save<W: Write>(&self, mut writer: W) -> Result<(), GmapError> {
        let json = serde_json::to_string_pretty(self)?;
        writer.write_all(json.as_bytes())?;
        Ok(())
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Propagates deserialization and I/O errors.
    pub fn load<R: Read>(mut reader: R) -> Result<Self, GmapError> {
        let mut buf = String::new();
        reader.read_to_string(&mut buf)?;
        Self::from_json(&buf)
    }

    /// Renders the application model as compact canonical JSON (see
    /// [`GmapProfile::to_json`]).
    pub fn to_json(&self) -> String {
        crate::cachekey::canonical_json(self)
    }

    /// Parses an application model from a JSON string (compact or pretty).
    ///
    /// # Errors
    ///
    /// Propagates deserialization errors as [`GmapError::Serde`].
    pub fn from_json(json: &str) -> Result<Self, GmapError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Validates every kernel profile.
    ///
    /// # Errors
    ///
    /// Returns [`GmapError::EmptyProfile`] for an empty or inconsistent
    /// application profile.
    pub fn validate(&self) -> Result<(), GmapError> {
        if self.kernels.is_empty() {
            return Err(GmapError::EmptyProfile);
        }
        for k in &self.kernels {
            k.validate()?;
        }
        Ok(())
    }

    /// Total warp-level accesses across kernels.
    pub fn total_warp_accesses(&self) -> u64 {
        self.kernels.iter().map(|k| k.total_warp_accesses).sum()
    }
}

/// Profiles every kernel of an application.
pub fn profile_application(app: &Application, cfg: &ProfilerConfig) -> AppProfile {
    AppProfile {
        name: app.name.clone(),
        kernels: app.kernels.iter().map(|k| profile_kernel(k, cfg)).collect(),
    }
}

/// Result of simulating a kernel sequence on one shared hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSimOutcome {
    /// Per-kernel scheduling outcomes, in launch order.
    pub per_kernel: Vec<ScheduleOutcome>,
    /// Final (whole-application) simulation state.
    pub total: SimOutcome,
}

impl AppSimOutcome {
    /// Total cycles across the kernel sequence.
    pub fn total_cycles(&self) -> u64 {
        self.per_kernel.iter().map(|k| k.cycles).sum()
    }
}

/// Simulates a sequence of per-kernel streams on one shared hierarchy.
fn simulate_sequence(
    sequence: &[(Vec<WarpStream>, LaunchConfig)],
    cfg: &SimtConfig,
) -> Result<AppSimOutcome, GmapError> {
    let mut hier = GpuHierarchy::new(cfg.hierarchy)?;
    let mut per_kernel = Vec::with_capacity(sequence.len());
    let mut cycle_base = 0u64;
    for (i, (streams, launch)) in sequence.iter().enumerate() {
        let trace_mark = hier.mem_trace_len();
        let outcome = run_schedule(
            streams,
            launch,
            &cfg.gpu,
            cfg.policy,
            &mut hier,
            cfg.seed.wrapping_add(i as u64),
        );
        // Each schedule counts cycles from zero: move this kernel's memory
        // requests past its predecessors' so the DRAM replay sees one
        // monotonic stream.
        hier.shift_mem_trace_cycles(trace_mark, cycle_base);
        cycle_base += outcome.cycles;
        per_kernel.push(outcome);
    }
    let stats = hier.stats();
    let schedule = per_kernel.last().expect("sequence is non-empty").clone();
    Ok(AppSimOutcome {
        per_kernel,
        total: SimOutcome {
            stats,
            schedule,
            mem_trace: hier.into_mem_trace(),
        },
    })
}

/// Runs the original application: every kernel executed, coalesced and
/// scheduled in order on one hierarchy.
///
/// # Errors
///
/// Returns [`GmapError::Config`] for invalid hierarchy geometry.
pub fn run_application_original(
    app: &Application,
    cfg: &SimtConfig,
) -> Result<AppSimOutcome, GmapError> {
    let sequence: Vec<(Vec<WarpStream>, LaunchConfig)> = app
        .kernels
        .iter()
        .map(|k| (original_streams(k), k.launch))
        .collect();
    simulate_sequence(&sequence, cfg)
}

/// Runs the application clone: every kernel profile regenerated and
/// scheduled in order on one hierarchy.
///
/// # Errors
///
/// Returns [`GmapError::Config`] for invalid hierarchy geometry, or
/// [`GmapError::EmptyProfile`] for an empty application profile.
pub fn run_application_proxy(
    profile: &AppProfile,
    cfg: &SimtConfig,
) -> Result<AppSimOutcome, GmapError> {
    profile.validate()?;
    let sequence: Vec<(Vec<WarpStream>, LaunchConfig)> = profile
        .kernels
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (
                generate_streams(p, cfg.seed.wrapping_add(i as u64)),
                p.launch,
            )
        })
        .collect();
    simulate_sequence(&sequence, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmap_gpu::app::apps;
    use gmap_gpu::workloads::Scale;
    use gmap_memsim::hierarchy::TraceCapture;

    fn cfg() -> SimtConfig {
        let mut cfg = SimtConfig::default();
        cfg.hierarchy.trace_capture = TraceCapture::Full;
        cfg
    }

    #[test]
    fn application_profile_round_trips() {
        let app = apps::backprop_training(Scale::Tiny);
        let profile = profile_application(&app, &ProfilerConfig::default());
        assert_eq!(profile.kernels.len(), 2);
        let mut buf = Vec::new();
        profile.save(&mut buf).expect("save");
        let back = AppProfile::load(&buf[..]).expect("load");
        assert_eq!(profile, back);
        back.validate().expect("valid");
    }

    #[test]
    fn original_runs_all_kernels() {
        let app = apps::kmeans_iterative(Scale::Tiny);
        let out = run_application_original(&app, &cfg()).expect("valid config");
        assert_eq!(out.per_kernel.len(), 3);
        assert!(out.total_cycles() > 0);
        for k in &out.per_kernel {
            assert!(k.issued_accesses > 0);
        }
        // Trace cycles are monotonically offset across kernels.
        let cycles: Vec<u64> = out.total.mem_trace.iter().map(|r| r.cycle).collect();
        let first_k1 = cycles.first().copied().expect("traffic exists");
        let last = cycles.last().copied().expect("traffic exists");
        assert!(last >= first_k1);
        assert!(
            last >= out.per_kernel[0].cycles,
            "later kernels shifted past kernel 0"
        );
    }

    #[test]
    fn proxy_tracks_original_across_kernels() {
        let app = apps::backprop_training(Scale::Tiny);
        let orig = run_application_original(&app, &cfg()).expect("valid config");
        let profile = profile_application(&app, &ProfilerConfig::default());
        let proxy = run_application_proxy(&profile, &cfg()).expect("valid config");
        let o = orig.total.stats.l1_miss_rate() * 100.0;
        let p = proxy.total.stats.l1_miss_rate() * 100.0;
        assert!(
            (o - p).abs() < 10.0,
            "application-level L1 miss: orig {o:.2}% vs proxy {p:.2}%"
        );
        assert_eq!(proxy.per_kernel.len(), orig.per_kernel.len());
    }

    #[test]
    fn warm_l2_carries_between_kernels() {
        // Running the same kernel twice in one application must hit more
        // at L2 than the two kernels' demands run on cold hierarchies.
        let app = apps::backprop_training(Scale::Tiny);
        let warm = run_application_original(&app, &cfg()).expect("valid config");
        let single = Application::single(app.kernels[0].clone());
        let cold = run_application_original(&single, &cfg()).expect("valid config");
        let warm_rate = warm.total.stats.l2_miss_rate();
        let cold_rate = cold.total.stats.l2_miss_rate();
        assert!(
            warm_rate < cold_rate,
            "second pass should warm the L2: {warm_rate:.3} vs {cold_rate:.3}"
        );
    }

    #[test]
    fn empty_app_profile_rejected() {
        let empty = AppProfile {
            name: "x".into(),
            kernels: vec![],
        };
        assert!(matches!(empty.validate(), Err(GmapError::EmptyProfile)));
        assert!(run_application_proxy(&empty, &cfg()).is_err());
    }
}
