//! The static-analysis admission gate of the profile pipeline.
//!
//! Every kernel that enters the profiler can instead go through
//! [`profile_kernel_admitted`], which runs `gmap-analyze` first and
//! refuses to profile specs with correctness errors (out-of-bounds
//! affine indices, overlapping written arrays, size overflows, barriers
//! that deadlock under divergence). Warnings — e.g. fully uncoalesced
//! accesses, which shipped workloads like kmeans exhibit by design —
//! never block admission.
//!
//! Admission also runs the analyzer's *self-check*: after executing the
//! kernel (which profiling does anyway), every emitted address is diffed
//! against the static per-PC interval. A violation means the analyzer
//! itself is unsound for this spec and is surfaced as
//! [`GmapError::SelfCheck`] rather than silently trusted.

use crate::error::GmapError;
use crate::profile::GmapProfile;
use crate::profiler::{profile_streams, ProfilerConfig};
use gmap_analyze::{analyze_kernel, verify_against_trace, StaticReport};
use gmap_gpu::app::Application;
use gmap_gpu::coalesce::coalesce_app;
use gmap_gpu::exec::execute_kernel;
use gmap_gpu::kernel::KernelDesc;

/// How many self-check violations to report before giving up.
const SELF_CHECK_LIMIT: usize = 8;

/// Statically analyzes a kernel and decides admission.
///
/// # Errors
///
/// Returns [`GmapError::Inadmissible`] when the report carries error
/// findings; the report (with its warnings) is returned otherwise.
pub fn admit_kernel(kernel: &KernelDesc) -> Result<StaticReport, GmapError> {
    let report = analyze_kernel(kernel);
    if report.has_errors() {
        return Err(GmapError::Inadmissible {
            kernel: kernel.name.clone(),
            findings: report.errors().map(|f| f.message.clone()).collect(),
        });
    }
    Ok(report)
}

/// Profiles a kernel behind the admission gate: analyze, execute,
/// self-check the analysis against the real trace, then profile.
///
/// # Errors
///
/// - [`GmapError::Inadmissible`] when static analysis finds errors,
/// - [`GmapError::SelfCheck`] when the dynamic trace escapes the static
///   intervals (an analyzer bug),
/// - [`GmapError::EmptyProfile`] when the kernel emits no accesses.
pub fn profile_kernel_admitted(
    kernel: &KernelDesc,
    cfg: &ProfilerConfig,
) -> Result<(GmapProfile, StaticReport), GmapError> {
    let report = admit_kernel(kernel)?;
    let app = execute_kernel(kernel);
    let violations = verify_against_trace(&report, &app, SELF_CHECK_LIMIT);
    if !violations.is_empty() {
        return Err(GmapError::SelfCheck {
            kernel: kernel.name.clone(),
            detail: violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; "),
        });
    }
    let streams = coalesce_app(&app, cfg.line_size);
    let profile = profile_streams(&kernel.name, &streams, &app.launch, app.warp_size, cfg)?;
    Ok((profile, report))
}

/// Profiles a whole application behind the admission gate; fails on the
/// first inadmissible kernel.
///
/// # Errors
///
/// As [`profile_kernel_admitted`], for any kernel in the sequence.
pub fn profile_application_admitted(
    app: &Application,
    cfg: &ProfilerConfig,
) -> Result<(crate::application::AppProfile, Vec<StaticReport>), GmapError> {
    let mut kernels = Vec::with_capacity(app.kernels.len());
    let mut reports = Vec::with_capacity(app.kernels.len());
    for k in &app.kernels {
        let (profile, report) = profile_kernel_admitted(k, cfg)?;
        kernels.push(profile);
        reports.push(report);
    }
    Ok((
        crate::application::AppProfile {
            name: app.name.clone(),
            kernels,
        },
        reports,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::profile_kernel;
    use gmap_analyze::fixtures;
    use gmap_gpu::workloads::{self, Scale};

    #[test]
    fn workloads_are_admitted_and_profile_matches_ungated_path() {
        let cfg = ProfilerConfig::default();
        let kernel = workloads::by_name("backprop", Scale::Tiny).expect("known");
        let (gated, report) = profile_kernel_admitted(&kernel, &cfg).expect("admissible");
        assert!(!report.sites.is_empty());
        let ungated = profile_kernel(&kernel, &cfg);
        assert_eq!(gated, ungated, "the gate must not perturb the profile");
    }

    #[test]
    fn oob_spec_is_rejected_before_profiling() {
        let err = profile_kernel_admitted(&fixtures::oob_affine(), &ProfilerConfig::default())
            .expect_err("inadmissible");
        match err {
            GmapError::Inadmissible { kernel, findings } => {
                assert_eq!(kernel, "oob-affine");
                assert!(findings.iter().any(|m| m.contains("wraps")), "{findings:?}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn uncoalesced_spec_is_admitted_with_warning() {
        let (_, report) =
            profile_kernel_admitted(&fixtures::uncoalesced(), &ProfilerConfig::default())
                .expect("warnings are admissible");
        assert!(report.warnings().count() > 0);
    }

    #[test]
    fn racy_phased_spec_is_rejected_and_certified_one_admitted() {
        let err = admit_kernel(&fixtures::race_rw()).expect_err("racy spec inadmissible");
        match err {
            GmapError::Inadmissible { kernel, findings } => {
                assert_eq!(kernel, "race-rw");
                assert!(findings.iter().any(|m| m.contains("race")), "{findings:?}");
            }
            other => panic!("wrong error: {other}"),
        }
        let report = admit_kernel(&fixtures::phased_stencil()).expect("certified admissible");
        assert!(report.race_certified);
    }

    #[test]
    fn application_gate_covers_every_kernel() {
        let app = gmap_gpu::app::apps::backprop_training(Scale::Tiny);
        let (profile, reports) =
            profile_application_admitted(&app, &ProfilerConfig::default()).expect("admissible");
        assert_eq!(profile.kernels.len(), reports.len());
        assert_eq!(profile.kernels.len(), app.kernels.len());
    }
}
