//! The profiling phase (paper §4, phases ① and ②).
//!
//! Consumes coalesced per-warp transaction streams — from the execution
//! substrate or any external trace source — and produces the statistical
//! [`GmapProfile`]. Coalescing has already happened (the paper applies the
//! coalescing model *before* locality analysis), so the unit of "thread"
//! in the locality statistics is the warp, matching Table 1's "inter-warp"
//! stride columns.

use crate::error::GmapError;
use crate::profile::{GmapProfile, PiEntry, PiProfile};
use crate::COALESCE_BYTES;
use gmap_gpu::coalesce::coalesce_app;
use gmap_gpu::exec::execute_kernel;
use gmap_gpu::hierarchy::LaunchConfig;
use gmap_gpu::kernel::KernelDesc;
use gmap_gpu::schedule::{WarpStream, WarpStreamEvent};
use gmap_trace::record::{AccessKind, ByteAddr, Pc};
use gmap_trace::reuse::ReuseHistogram;
use gmap_trace::{default_mode, Histogram};
use std::collections::{BTreeMap, HashMap};

/// Profiler parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerConfig {
    /// Coalescing granularity (must match how the streams were coalesced).
    pub line_size: u64,
    /// π-profile clustering threshold `Th` (§4.4; the paper uses 0.9).
    pub cluster_threshold: f64,
    /// Cap on the number of dominant profiles kept; overflow joins the
    /// nearest cluster.
    pub max_profiles: usize,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            line_size: COALESCE_BYTES,
            cluster_threshold: 0.9,
            max_profiles: 32,
        }
    }
}

/// Profiles a kernel end to end: execute → coalesce → profile.
///
/// # Panics
///
/// Panics if the kernel produces no memory accesses (a validated workload
/// kernel always does); use [`profile_streams`] for a fallible interface.
pub fn profile_kernel(kernel: &KernelDesc, cfg: &ProfilerConfig) -> GmapProfile {
    let app = execute_kernel(kernel);
    let streams = coalesce_app(&app, cfg.line_size);
    profile_streams(&kernel.name, &streams, &app.launch, app.warp_size, cfg)
        .expect("executed kernel has memory accesses")
}

/// Profiles coalesced warp streams.
///
/// # Errors
///
/// Returns [`GmapError::EmptyProfile`] if the streams contain no memory
/// accesses.
pub fn profile_streams(
    name: &str,
    streams: &[WarpStream],
    launch: &LaunchConfig,
    warp_size: u32,
    cfg: &ProfilerConfig,
) -> Result<GmapProfile, GmapError> {
    // --- Pass 1: slot table and per-warp raw sequences. ------------------
    let mut slot_of: HashMap<Pc, usize> = HashMap::new();
    let mut pcs: Vec<Pc> = Vec::new();
    let mut kinds: Vec<AccessKind> = Vec::new();
    let mut total_warp_accesses = 0u64;

    struct WarpRaw {
        warp: u32,
        pi: PiProfile,
        /// First-transaction address of every memory entry, in order.
        addrs: Vec<u64>,
        /// Per-slot: indices into `addrs` of this slot's executions.
        /// BTreeMap: pass 3 iterates this map, and the iteration order
        /// feeds the stride histograms — hash order would make profiles
        /// nondeterministic across runs (see the determinism lint).
        by_slot: BTreeMap<usize, Vec<usize>>,
        /// Full line stream (all transactions) for reuse analysis.
        lines: Vec<u64>,
    }

    let mut raws: Vec<WarpRaw> = Vec::with_capacity(streams.len());
    for s in streams {
        let mut raw = WarpRaw {
            warp: s.warp.0,
            pi: PiProfile::default(),
            addrs: Vec::new(),
            by_slot: BTreeMap::new(),
            lines: Vec::new(),
        };
        for ev in &s.events {
            match ev {
                WarpStreamEvent::Access(a) => {
                    if a.lines.is_empty() {
                        continue;
                    }
                    let slot = *slot_of.entry(a.pc).or_insert_with(|| {
                        pcs.push(a.pc);
                        kinds.push(a.kind);
                        pcs.len() - 1
                    });
                    raw.pi.entries.push(PiEntry::Mem(slot));
                    let idx = raw.addrs.len();
                    raw.addrs.push(a.lines[0].0);
                    raw.by_slot.entry(slot).or_default().push(idx);
                    for l in &a.lines {
                        raw.lines.push(l.0 / cfg.line_size);
                    }
                    total_warp_accesses += 1;
                }
                WarpStreamEvent::Sync => raw.pi.entries.push(PiEntry::Sync),
            }
        }
        raws.push(raw);
    }
    if pcs.is_empty() {
        return Err(GmapError::EmptyProfile);
    }
    // Profile statistics are keyed by warp id order.
    raws.sort_by_key(|r| r.warp);

    // --- Pass 2: π clustering (§4.4). ------------------------------------
    // Deduplicate identical sequences first; cluster the unique ones
    // greedily by positional similarity against cluster representatives.
    let mut unique: Vec<(PiProfile, u64)> = Vec::new();
    let mut seq_index: HashMap<PiProfile, usize> = HashMap::new();
    let mut warp_unique: Vec<usize> = Vec::with_capacity(raws.len());
    for raw in &raws {
        let i = *seq_index.entry(raw.pi.clone()).or_insert_with(|| {
            unique.push((raw.pi.clone(), 0));
            unique.len() - 1
        });
        unique[i].1 += 1;
        warp_unique.push(i);
    }
    let order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..unique.len()).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(unique[i].1));
        idx
    };
    let mut cluster_of_unique: Vec<usize> = vec![usize::MAX; unique.len()];
    let mut reps: Vec<PiProfile> = Vec::new();
    let mut weights: Histogram<usize> = Histogram::new();
    for &u in &order {
        let (seq, count) = &unique[u];
        let found = reps
            .iter()
            .position(|rep| rep.similarity(seq) >= cfg.cluster_threshold)
            .or_else(|| {
                if reps.len() >= cfg.max_profiles {
                    // Overflow: join the nearest cluster.
                    reps.iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            a.similarity(seq)
                                .partial_cmp(&b.similarity(seq))
                                .expect("similarities are finite")
                        })
                        .map(|(i, _)| i)
                } else {
                    None
                }
            });
        let c = match found {
            Some(c) => c,
            None => {
                reps.push(seq.clone());
                reps.len() - 1
            }
        };
        cluster_of_unique[u] = c;
        weights.add_n(c, *count);
    }
    let warp_cluster: Vec<usize> = warp_unique.iter().map(|&u| cluster_of_unique[u]).collect();

    // --- Pass 3: locality distributions. ----------------------------------
    let n = pcs.len();
    let mut base_addrs = vec![ByteAddr(0); n];
    let mut base_set = vec![false; n];
    let mut inter_stride: Vec<Histogram<i64>> = vec![Histogram::new(); n];
    let mut intra_stride: Vec<Histogram<i64>> = vec![Histogram::new(); n];
    let mut pc_reuse: Vec<Histogram<u32>> = vec![Histogram::new(); n];
    // Per-slot, per-ordinal distance votes (ordinal e stored at e-1).
    let mut schedule_votes: Vec<Vec<Histogram<u32>>> = vec![Vec::new(); n];
    // Per-slot, per-ordinal intra-stride votes.
    let mut stride_votes: Vec<Vec<Histogram<i64>>> = vec![Vec::new(); n];
    // Per-slot, per-block-phase inter-warp stride votes.
    let wpb = launch.warps_per_block(warp_size).max(1) as usize;
    let mut phase_votes: Vec<Vec<Histogram<i64>>> =
        vec![(0..wpb).map(|_| Histogram::new()).collect(); n];
    let mut txn_count: Vec<Histogram<u32>> = vec![Histogram::new(); n];
    let mut txn_span: Vec<Histogram<u64>> = vec![Histogram::new(); n];
    let mut last_first_addr: Vec<Option<u64>> = vec![None; n];
    let mut reuse: Vec<ReuseHistogram> = vec![ReuseHistogram::new(); reps.len()];
    let kmode = default_mode();
    let mut stride_scratch: Vec<i64> = Vec::new();

    for (w, raw) in raws.iter().enumerate() {
        // Inter-warp strides: first execution per slot vs the previous
        // warp that executed the slot (warp-id order).
        for (&slot, execs) in &raw.by_slot {
            let first = raw.addrs[execs[0]];
            if !base_set[slot] {
                base_addrs[slot] = ByteAddr(first);
                base_set[slot] = true;
            } else if let Some(prev) = last_first_addr[slot] {
                let stride = first as i64 - prev as i64;
                inter_stride[slot].add(stride);
                phase_votes[slot][raw.warp as usize % wpb].add(stride);
            }
            last_first_addr[slot] = Some(first);
            // Intra-warp strides: successive executions of the slot.
            // Strides are materialized once so the slot-level histogram
            // absorbs them through the batched sort+RLE kernel; the
            // per-ordinal votes still want one add per ordinal.
            stride_scratch.clear();
            for pair in execs.windows(2) {
                stride_scratch.push(raw.addrs[pair[1]] as i64 - raw.addrs[pair[0]] as i64);
            }
            intra_stride[slot].add_slice(&stride_scratch, kmode);
            let votes = &mut stride_votes[slot];
            if votes.len() < stride_scratch.len() {
                votes.resize_with(stride_scratch.len(), Histogram::new);
            }
            for (e, &stride) in stride_scratch.iter().enumerate() {
                votes[e].add(stride);
            }
            // PC-localized reuse: for every execution after the first,
            // distance in same-slot executions back to the previous touch
            // of the same address (0 = fresh address for this slot). Also
            // accumulate the per-ordinal distance votes for the modal
            // reuse schedule.
            let mut last_touch: HashMap<u64, usize> = HashMap::new();
            for (e, &idx) in execs.iter().enumerate() {
                let addr = raw.addrs[idx];
                let dist = match last_touch.insert(addr, e) {
                    Some(prev) => (e - prev) as u32,
                    None => 0,
                };
                if e > 0 {
                    pc_reuse[slot].add(dist);
                    let votes = &mut schedule_votes[slot];
                    if votes.len() < e {
                        votes.resize_with(e, Histogram::new);
                    }
                    votes[e - 1].add(dist);
                }
            }
        }
        // Reuse distances per π cluster, at line granularity.
        reuse[warp_cluster[w]].merge(&ReuseHistogram::from_lines(raw.lines.iter().copied()));
        let _ = w;
    }
    // Transaction counts per slot (needs a second walk over events to keep
    // slot association simple).
    for s in streams {
        for ev in &s.events {
            if let WarpStreamEvent::Access(a) = ev {
                if let Some(&slot) = slot_of.get(&a.pc) {
                    if !a.lines.is_empty() {
                        txn_count[slot].add(a.lines.len() as u32);
                        if a.lines.len() > 1 {
                            let span =
                                (a.lines[a.lines.len() - 1].0 - a.lines[0].0) / cfg.line_size;
                            txn_span[slot].add(span);
                        }
                    }
                }
            }
        }
    }

    let profile = GmapProfile {
        name: name.to_owned(),
        launch: *launch,
        warp_size,
        line_size: cfg.line_size,
        pcs,
        kinds,
        profiles: reps,
        profile_weights: weights,
        base_addrs,
        inter_stride,
        intra_stride,
        pc_reuse,
        pc_reuse_schedule: modal_schedule(schedule_votes),
        intra_stride_schedule: modal_schedule(stride_votes),
        inter_stride_phase: modal_schedule(phase_votes),
        reuse,
        txn_count,
        txn_span,
        sched_p_self: None,
        total_warp_accesses,
    };
    profile.validate()?;
    Ok(profile)
}

/// Reduces per-position vote histograms to modal values, keeping a value
/// only where a majority of voters agree — i.e. where the behaviour is
/// *structural* (every warp does it) rather than incidental.
fn modal_schedule<T: Ord + Copy>(votes: Vec<Vec<Histogram<T>>>) -> Vec<Vec<Option<T>>> {
    votes
        .into_iter()
        .map(|per_pos| {
            per_pos
                .into_iter()
                .map(|h| h.dominant().and_then(|(v, f)| (f >= 0.5).then_some(v)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmap_gpu::kernel::{dsl, IndexExpr, KernelBuilder, Pred, Stmt};
    use gmap_gpu::workloads::{self, Scale};
    use gmap_trace::reuse::ReuseClass;

    fn simple_kernel() -> KernelDesc {
        KernelBuilder::new("simple", 4u32, 64u32)
            .array("a", 1 << 18)
            .stmt(dsl::loop_n(
                4,
                vec![dsl::read(0x10, 0, dsl::affine(0, 1, vec![(0, 1024)]))],
            ))
            .write(Pc(0x20), 0, IndexExpr::tid_linear(0, 1))
            .build()
            .expect("valid")
    }

    #[test]
    fn profiles_simple_kernel() {
        let p = profile_kernel(&simple_kernel(), &ProfilerConfig::default());
        assert_eq!(p.pcs, vec![Pc(0x10), Pc(0x20)]);
        assert_eq!(p.kinds, vec![AccessKind::Read, AccessKind::Write]);
        // No divergence: exactly one π profile.
        assert_eq!(p.profiles.len(), 1);
        assert_eq!(p.profiles[0].num_accesses(), 5);
        assert_eq!(p.total_warp_accesses, 8 * 5);
    }

    #[test]
    fn inter_warp_stride_is_captured() {
        let p = profile_kernel(&simple_kernel(), &ProfilerConfig::default());
        let slot = p.slot_of(Pc(0x10)).expect("profiled");
        // Unit-stride 4-byte elements, 32 lanes: inter-warp stride 128 B.
        let (stride, freq) = p.inter_stride[slot].dominant().expect("non-empty");
        assert_eq!(stride, 128);
        assert!(freq > 0.9);
    }

    #[test]
    fn intra_warp_stride_is_captured() {
        let p = profile_kernel(&simple_kernel(), &ProfilerConfig::default());
        let slot = p.slot_of(Pc(0x10)).expect("profiled");
        // Loop coefficient 1024 elements = 4096 B.
        let (stride, _) = p.intra_stride[slot].dominant().expect("non-empty");
        assert_eq!(stride, 4096);
    }

    #[test]
    fn txn_counts_reflect_coalescing() {
        let p = profile_kernel(&simple_kernel(), &ProfilerConfig::default());
        let slot = p.slot_of(Pc(0x10)).expect("profiled");
        // Fully coalesced: one transaction per access.
        assert_eq!(p.txn_count[slot].dominant(), Some((1, 1.0)));
    }

    #[test]
    fn base_address_is_first_warp_first_access() {
        let p = profile_kernel(&simple_kernel(), &ProfilerConfig::default());
        let slot = p.slot_of(Pc(0x10)).expect("profiled");
        // Array base is 0x1000 (builder layout), line-aligned.
        assert_eq!(p.base_addrs[slot], ByteAddr(0x1000));
    }

    #[test]
    fn divergent_kernel_yields_multiple_profiles() {
        let k = KernelBuilder::new("div", 8u32, 32u32)
            .array("a", 1 << 16)
            .stmt(Stmt::If {
                pred: Pred::BlockMod { m: 2, r: 0 },
                then_body: vec![
                    dsl::read(0x10, 0, IndexExpr::tid_linear(0, 1)),
                    dsl::read(0x18, 0, IndexExpr::tid_linear(64, 1)),
                    dsl::read(0x20, 0, IndexExpr::tid_linear(128, 1)),
                ],
                else_body: vec![dsl::read(0x28, 0, IndexExpr::tid_linear(0, 2))],
            })
            .build()
            .expect("valid");
        let p = profile_kernel(&k, &ProfilerConfig::default());
        assert_eq!(p.profiles.len(), 2, "two distinct execution paths");
        // Equal split: 4 blocks each.
        let w0 = p.profile_weights.count_of(0);
        let w1 = p.profile_weights.count_of(1);
        assert_eq!(w0 + w1, 8);
        assert_eq!(w0, 4);
    }

    #[test]
    fn clustering_threshold_merges_similar_paths() {
        // Paths differing in 1 of 20 entries (95% similar) must merge at
        // Th=0.9 but split at Th=0.99.
        let body = |extra_pc: u64| {
            let mut v = vec![];
            for i in 0..19 {
                v.push(dsl::read(0x100 + i * 8, 0, IndexExpr::tid_linear(0, 1)));
            }
            v.push(dsl::read(extra_pc, 0, IndexExpr::tid_linear(0, 1)));
            v
        };
        let k = KernelBuilder::new("near", 4u32, 32u32)
            .array("a", 1 << 16)
            .stmt(Stmt::If {
                pred: Pred::BlockMod { m: 2, r: 0 },
                then_body: body(0x200),
                else_body: body(0x208),
            })
            .build()
            .expect("valid");
        let loose = profile_kernel(&k, &ProfilerConfig::default());
        assert_eq!(loose.profiles.len(), 1, "95%-similar paths merge at Th=0.9");
        let strict = profile_kernel(
            &k,
            &ProfilerConfig {
                cluster_threshold: 0.99,
                ..ProfilerConfig::default()
            },
        );
        assert_eq!(
            strict.profiles.len(),
            2,
            "95%-similar paths split at Th=0.99"
        );
    }

    #[test]
    fn sync_entries_survive_profiling() {
        let k = KernelBuilder::new("sync", 2u32, 64u32)
            .array("a", 1 << 12)
            .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
            .stmt(Stmt::Sync)
            .read(Pc(0x18), 0, IndexExpr::tid_linear(0, 1))
            .build()
            .expect("valid");
        let p = profile_kernel(&k, &ProfilerConfig::default());
        assert_eq!(
            p.profiles[0].entries,
            vec![PiEntry::Mem(0), PiEntry::Sync, PiEntry::Mem(1)]
        );
    }

    #[test]
    fn reuse_class_survives_profiling() {
        // kmeans is the paper's canonical high-reuse app.
        let p = profile_kernel(&workloads::kmeans(Scale::Tiny), &ProfilerConfig::default());
        let dominant_profile = p.profile_weights.dominant().expect("non-empty").0;
        assert_eq!(p.reuse[dominant_profile].class(), ReuseClass::High);
        // scalarprod is streaming.
        let p = profile_kernel(
            &workloads::scalarprod(Scale::Tiny),
            &ProfilerConfig::default(),
        );
        let dom = p.profile_weights.dominant().expect("non-empty").0;
        assert_eq!(p.reuse[dom].class(), ReuseClass::Low);
    }

    #[test]
    fn empty_streams_are_rejected() {
        let launch = LaunchConfig::new(1u32, 32u32);
        let err = profile_streams("empty", &[], &launch, 32, &ProfilerConfig::default());
        assert!(matches!(err, Err(GmapError::EmptyProfile)));
    }

    #[test]
    fn profile_is_deterministic() {
        let k = workloads::bfs(Scale::Tiny);
        let a = profile_kernel(&k, &ProfilerConfig::default());
        let b = profile_kernel(&k, &ProfilerConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn all_workloads_profile_cleanly() {
        for k in workloads::all(Scale::Tiny) {
            let p = profile_kernel(&k, &ProfilerConfig::default());
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(p.total_warp_accesses > 0, "{}", k.name);
        }
    }
}
