//! The statistical profile: the paper's 5-tuple `(Π, Q, B, P_S, P_R)`.
//!
//! A [`GmapProfile`] is the *entire* artifact a workload owner ships in
//! place of a proprietary trace (§1, §4.2): a few kilobytes of histograms
//! and instruction sequences from which proxies of any length can be
//! regenerated. It is JSON-serializable so it can be audited — the point of
//! performance cloning is that the profile provably contains no raw
//! addresses beyond per-instruction base addresses, which may themselves be
//! remapped for obfuscation (see [`GmapProfile::rebase`]).

use crate::error::GmapError;
use gmap_gpu::hierarchy::LaunchConfig;
use gmap_trace::record::{AccessKind, ByteAddr, Pc};
use gmap_trace::reuse::ReuseHistogram;
use gmap_trace::Histogram;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// One entry of a dynamic memory instruction profile π.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PiEntry {
    /// A memory instruction, by static-instruction slot (index into
    /// [`GmapProfile::pcs`]).
    Mem(usize),
    /// A threadblock barrier, kept in the profile so the clone reproduces
    /// TB-level synchronization (§4.5).
    Sync,
}

/// A dynamic memory instruction profile: the ordered sequence of static
/// memory instructions one warp executes (§4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PiProfile {
    /// Entries in execution order.
    pub entries: Vec<PiEntry>,
}

impl PiProfile {
    /// Number of memory entries (barriers excluded).
    pub fn num_accesses(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, PiEntry::Mem(_)))
            .count()
    }

    /// Positional similarity with another profile: identical entries in
    /// sequence divided by the longer length (§4.4). Two empty profiles
    /// are identical (1.0).
    pub fn similarity(&self, other: &PiProfile) -> f64 {
        let longer = self.entries.len().max(other.entries.len());
        if longer == 0 {
            return 1.0;
        }
        let matching = self
            .entries
            .iter()
            .zip(&other.entries)
            .filter(|(a, b)| a == b)
            .count();
        matching as f64 / longer as f64
    }
}

/// A complete G-MAP statistical profile.
///
/// Formally (§4.6) the features are the 5-tuple `(Π, Q, B, P_S, P_R)`;
/// this struct adds the bookkeeping needed to regenerate the thread
/// hierarchy (launch geometry, warp size) and the coalescing behaviour
/// (transactions-per-access distributions) plus the measured `SchedP_self`
/// scheduling statistic (§4.5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmapProfile {
    /// Application name.
    pub name: String,
    /// Launch geometry (G-MAP "maintains the same grid and TB dimensions
    /// as the original application", §4).
    pub launch: LaunchConfig,
    /// Warp size at capture.
    pub warp_size: u32,
    /// Coalescing granularity at capture, bytes.
    pub line_size: u64,
    /// Static instruction table (the slot space all other fields index).
    pub pcs: Vec<Pc>,
    /// Read/write kind per slot.
    pub kinds: Vec<AccessKind>,
    /// Π — dominant dynamic memory instruction profiles.
    pub profiles: Vec<PiProfile>,
    /// Q — weight of each profile (by cluster population).
    pub profile_weights: Histogram<usize>,
    /// B — base address per slot (line-aligned).
    pub base_addrs: Vec<ByteAddr>,
    /// `P_E` — inter-thread (inter-warp) stride distribution per slot,
    /// in bytes.
    pub inter_stride: Vec<Histogram<i64>>,
    /// `P_A` — intra-thread stride distribution per slot, in bytes.
    pub intra_stride: Vec<Histogram<i64>>,
    /// `P_R` — reuse distance distribution per profile.
    pub reuse: Vec<ReuseHistogram>,
    /// PC-localized temporal reuse: for each slot, the distribution of the
    /// distance (in executions of *that* instruction) back to the last
    /// execution that touched the same address; `0` means a fresh address.
    ///
    /// This is a reproduction extension beyond the paper's 5-tuple: it
    /// pins loop-rewind strides (e.g. a multi-pass kernel returning to its
    /// region start) to the right *position* in the stream, which plain
    /// stride sampling places randomly. The `ablation` experiment
    /// quantifies its effect; clear these histograms to recover the
    /// paper's exact Algorithm 1.
    pub pc_reuse: Vec<Histogram<u32>>,
    /// Positional companion to [`GmapProfile::pc_reuse`]: for each slot,
    /// the *modal* reuse distance at each execution ordinal (0 = fresh
    /// address), kept only where the mode is structural (a majority of
    /// warps agree); `None` ordinals — and ordinals beyond the schedule —
    /// sample `pc_reuse` instead. The π profiles already store exact PC
    /// sequences; this stores the same kind of structural information for
    /// temporal reuse, so that loop rewinds happen at the ordinal where
    /// every warp performs them.
    pub pc_reuse_schedule: Vec<Vec<Option<u32>>>,
    /// Modal intra-thread stride per execution ordinal (same majority-vote
    /// rule as [`GmapProfile::pc_reuse_schedule`]): entry `e` is the
    /// stride from execution `e` to `e+1` when a majority of warps agree,
    /// `None` where behaviour is not structural. Keeps every warp's chain
    /// aligned in lockstep-regular kernels, which is what preserves
    /// inter-warp line sharing.
    pub intra_stride_schedule: Vec<Vec<Option<i64>>>,
    /// Modal inter-warp stride by block phase: entry `p` of slot `k` is
    /// the majority first-execution stride for warps whose id is `p`
    /// modulo warps-per-block. Captures block-boundary discontinuities at
    /// their exact period instead of scattering them randomly.
    pub inter_stride_phase: Vec<Vec<Option<i64>>>,
    /// Coalesced transactions per warp-level access, per slot.
    pub txn_count: Vec<Histogram<u32>>,
    /// Span of a multi-transaction access in lines (distance between its
    /// first and last transaction), per slot. A perfectly coalesced
    /// strided access has span = transactions − 1 (consecutive lines); an
    /// irregular gather spans a large random window. The clone spreads its
    /// transactions over a sampled span with jittered gaps, so it neither
    /// invents spatial locality an irregular app lacks nor loses the
    /// locality a strided app has.
    pub txn_span: Vec<Histogram<u64>>,
    /// Measured probability of scheduling the same warp consecutively
    /// (`SchedP_self`, §4.5); `None` if never measured.
    pub sched_p_self: Option<f64>,
    /// Warp-level memory instructions observed at capture (the original
    /// `J`; miniaturization scales it).
    pub total_warp_accesses: u64,
}

impl GmapProfile {
    /// Number of static instructions.
    pub fn num_slots(&self) -> usize {
        self.pcs.len()
    }

    /// Slot of a PC, if profiled.
    pub fn slot_of(&self, pc: Pc) -> Option<usize> {
        self.pcs.iter().position(|&p| p == pc)
    }

    /// Relative execution frequency of each slot across all profiles,
    /// weighted by Q — the "%Mem Freq" column of Table 1.
    pub fn slot_frequencies(&self) -> Vec<f64> {
        let mut counts = vec![0.0f64; self.pcs.len()];
        let mut total = 0.0;
        for (i, p) in self.profiles.iter().enumerate() {
            let w = self.profile_weights.count_of(i) as f64;
            for e in &p.entries {
                if let PiEntry::Mem(slot) = e {
                    counts[*slot] += w;
                    total += w;
                }
            }
        }
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        counts
    }

    /// Remaps every base address by a fixed offset — the obfuscation knob
    /// of §4.2 ("choice of the initial base addresses can help to create
    /// obfuscated proxy memory access sequences for proprietariness").
    /// Locality is translation-invariant, so clone fidelity is unchanged.
    pub fn rebase(&mut self, delta: i64) {
        for b in &mut self.base_addrs {
            *b = b.offset(delta);
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization and I/O errors as [`GmapError`].
    pub fn save<W: Write>(&self, mut writer: W) -> Result<(), GmapError> {
        let json = serde_json::to_string_pretty(self)?;
        writer.write_all(json.as_bytes())?;
        Ok(())
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Propagates deserialization and I/O errors as [`GmapError`].
    pub fn load<R: Read>(mut reader: R) -> Result<Self, GmapError> {
        let mut buf = String::new();
        reader.read_to_string(&mut buf)?;
        Self::from_json(&buf)
    }

    /// Renders the profile as compact canonical JSON — the wire format of
    /// the `gmap serve` model store, and the byte string its
    /// content-addressed cache keys hash ([`crate::cachekey`]).
    pub fn to_json(&self) -> String {
        crate::cachekey::canonical_json(self)
    }

    /// Parses a profile from a JSON string (compact or pretty).
    ///
    /// # Errors
    ///
    /// Propagates deserialization errors as [`GmapError::Serde`].
    pub fn from_json(json: &str) -> Result<Self, GmapError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Sanity-checks internal consistency (all slot references in range,
    /// parallel arrays of equal length).
    ///
    /// # Errors
    ///
    /// Returns [`GmapError::EmptyProfile`] for structurally broken or
    /// empty profiles.
    pub fn validate(&self) -> Result<(), GmapError> {
        let n = self.pcs.len();
        let consistent = self.kinds.len() == n
            && self.base_addrs.len() == n
            && self.inter_stride.len() == n
            && self.intra_stride.len() == n
            && self.pc_reuse.len() == n
            && self.pc_reuse_schedule.len() == n
            && self.intra_stride_schedule.len() == n
            && self.inter_stride_phase.len() == n
            && self.txn_count.len() == n
            && self.txn_span.len() == n
            && self.reuse.len() == self.profiles.len()
            && !self.profiles.is_empty()
            && n > 0;
        if !consistent {
            return Err(GmapError::EmptyProfile);
        }
        for p in &self.profiles {
            for e in &p.entries {
                if let PiEntry::Mem(slot) = e {
                    if *slot >= n {
                        return Err(GmapError::EmptyProfile);
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_profile() -> GmapProfile {
        let mut weights = Histogram::new();
        weights.add_n(0, 3);
        weights.add_n(1, 1);
        GmapProfile {
            name: "toy".into(),
            launch: LaunchConfig::new(2u32, 64u32),
            warp_size: 32,
            line_size: 128,
            pcs: vec![Pc(0x10), Pc(0x20)],
            kinds: vec![AccessKind::Read, AccessKind::Write],
            profiles: vec![
                PiProfile {
                    entries: vec![PiEntry::Mem(0), PiEntry::Mem(0), PiEntry::Mem(1)],
                },
                PiProfile {
                    entries: vec![PiEntry::Mem(0), PiEntry::Sync, PiEntry::Mem(1)],
                },
            ],
            profile_weights: weights,
            base_addrs: vec![ByteAddr(0x1000), ByteAddr(0x8000)],
            inter_stride: vec![
                [128i64].into_iter().collect(),
                [256i64].into_iter().collect(),
            ],
            intra_stride: vec![[64i64].into_iter().collect(), Histogram::new()],
            pc_reuse: vec![[0u32].into_iter().collect(), [0u32].into_iter().collect()],
            pc_reuse_schedule: vec![vec![Some(0), Some(0)], vec![Some(0)]],
            intra_stride_schedule: vec![vec![Some(64), Some(64)], vec![]],
            inter_stride_phase: vec![vec![Some(128), Some(128)], vec![Some(256), None]],
            reuse: vec![ReuseHistogram::new(), ReuseHistogram::new()],
            txn_count: vec![[1u32].into_iter().collect(), [2u32].into_iter().collect()],
            txn_span: vec![Histogram::new(), [1u64].into_iter().collect()],
            sched_p_self: Some(0.1),
            total_warp_accesses: 12,
        }
    }

    #[test]
    fn similarity_matches_paper_definition() {
        let a = PiProfile {
            entries: vec![PiEntry::Mem(0), PiEntry::Mem(1), PiEntry::Mem(2)],
        };
        let b = PiProfile {
            entries: vec![PiEntry::Mem(0), PiEntry::Mem(9), PiEntry::Mem(2)],
        };
        assert!((a.similarity(&b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.similarity(&a), 1.0);
        // Different lengths: normalized by the longer one.
        let c = PiProfile {
            entries: vec![PiEntry::Mem(0)],
        };
        assert!((a.similarity(&c) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(PiProfile::default().similarity(&PiProfile::default()), 1.0);
    }

    #[test]
    fn num_accesses_excludes_sync() {
        let p = PiProfile {
            entries: vec![PiEntry::Mem(0), PiEntry::Sync, PiEntry::Mem(1)],
        };
        assert_eq!(p.num_accesses(), 2);
    }

    #[test]
    fn slot_frequencies_are_weighted_by_q() {
        let p = toy_profile();
        let f = p.slot_frequencies();
        // Profile 0 (weight 3): slot0 x2, slot1 x1. Profile 1 (weight 1):
        // slot0 x1, slot1 x1. Totals: slot0 = 7, slot1 = 4, sum 11.
        assert!((f[0] - 7.0 / 11.0).abs() < 1e-12);
        assert!((f[1] - 4.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn rebase_translates_bases() {
        let mut p = toy_profile();
        p.rebase(0x100);
        assert_eq!(p.base_addrs[0], ByteAddr(0x1100));
        p.rebase(-0x100);
        assert_eq!(p.base_addrs[0], ByteAddr(0x1000));
    }

    #[test]
    fn save_load_round_trip() {
        let p = toy_profile();
        let mut buf = Vec::new();
        p.save(&mut buf).expect("save");
        let q = GmapProfile::load(&buf[..]).expect("load");
        assert_eq!(p, q);
    }

    #[test]
    fn validate_accepts_consistent_profile() {
        toy_profile().validate().expect("toy profile is consistent");
    }

    #[test]
    fn validate_rejects_bad_slot() {
        let mut p = toy_profile();
        p.profiles[0].entries.push(PiEntry::Mem(99));
        assert!(matches!(p.validate(), Err(GmapError::EmptyProfile)));
    }

    #[test]
    fn validate_rejects_mismatched_arrays() {
        let mut p = toy_profile();
        p.base_addrs.pop();
        assert!(p.validate().is_err());
    }

    #[test]
    fn slot_lookup() {
        let p = toy_profile();
        assert_eq!(p.slot_of(Pc(0x20)), Some(1));
        assert_eq!(p.slot_of(Pc(0x99)), None);
        assert_eq!(p.num_slots(), 2);
    }
}
