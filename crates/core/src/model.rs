//! End-to-end performance modeling: streams → scheduler → hierarchy →
//! (optionally) DRAM.
//!
//! This is the glue the experiments stand on. Both the original
//! application and its clone go through the *same* pipeline — exactly the
//! paper's methodology, where original and proxy are compared on the same
//! simulator:
//!
//! ```text
//! KernelDesc ──execute──▶ per-warp streams ──┐
//!                                            ├─▶ run_schedule(policy) ─▶ GpuHierarchy ─▶ stats
//! GmapProfile ──generate──▶ per-warp streams ┘                                │
//!                                                      timestamped requests ─┴─▶ DramSystem
//! ```

use crate::error::GmapError;
use crate::generate::generate_streams;
use crate::profile::GmapProfile;
use crate::COALESCE_BYTES;
use gmap_dram::{DramConfig, DramMetrics, DramRequest, DramSystem};
use gmap_gpu::coalesce::coalesce_app;
use gmap_gpu::exec::execute_kernel;
use gmap_gpu::hierarchy::{GpuConfig, LaunchConfig};
use gmap_gpu::kernel::KernelDesc;
use gmap_gpu::schedule::{run_schedule, Policy, ScheduleOutcome, WarpStream};
use gmap_memsim::hierarchy::{
    GpuHierarchy, HierarchyConfig, HierarchyStats, MemRequest, TraceCapture,
};
use serde::{Deserialize, Serialize};

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimtConfig {
    /// GPU machine parameters (cores, warp size, occupancy limits).
    pub gpu: GpuConfig,
    /// Cache hierarchy under evaluation.
    pub hierarchy: HierarchyConfig,
    /// Warp scheduling policy.
    pub policy: Policy,
    /// Seed for stochastic scheduling (and the clone generator in
    /// [`run_proxy`]).
    pub seed: u64,
}

impl Default for SimtConfig {
    fn default() -> Self {
        SimtConfig {
            gpu: GpuConfig::fermi_baseline(),
            hierarchy: HierarchyConfig::fermi_baseline(),
            policy: Policy::Lrr,
            seed: 1,
        }
    }
}

impl SimtConfig {
    /// Returns a copy with the given trace-capture mode. Miss-rate sweeps
    /// run with [`TraceCapture::Off`] so no `mem_trace` is materialized;
    /// DRAM experiments need [`TraceCapture::Full`].
    pub fn with_trace_capture(mut self, capture: TraceCapture) -> Self {
        self.hierarchy.trace_capture = capture;
        self
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    /// Cache-hierarchy counters.
    pub stats: HierarchyStats,
    /// Scheduling counters (cycles, `SchedP_self`, issue counts).
    pub schedule: ScheduleOutcome,
    /// Timestamped memory requests (only if the hierarchy recorded them).
    pub mem_trace: Vec<MemRequest>,
}

impl SimOutcome {
    /// L1 miss rate in percent (the unit of Figure 6).
    pub fn l1_miss_pct(&self) -> f64 {
        self.stats.l1_miss_rate() * 100.0
    }

    /// L2 miss rate in percent.
    pub fn l2_miss_pct(&self) -> f64 {
        self.stats.l2_miss_rate() * 100.0
    }

    /// Replays the recorded memory trace through a DRAM configuration
    /// (Figure 7).
    pub fn dram_metrics(&self, cfg: DramConfig) -> DramMetrics {
        let reqs: Vec<DramRequest> = self
            .mem_trace
            .iter()
            .map(|m| DramRequest {
                cycle: m.cycle,
                addr: m.addr,
                kind: m.kind,
            })
            .collect();
        DramSystem::new(cfg).run(&reqs)
    }
}

/// Executes and coalesces a kernel into per-warp transaction streams at
/// the capture granularity ([`COALESCE_BYTES`]).
pub fn original_streams(kernel: &KernelDesc) -> Vec<WarpStream> {
    coalesce_app(&execute_kernel(kernel), COALESCE_BYTES)
}

/// Simulates per-warp streams on a configuration.
///
/// # Errors
///
/// Returns [`GmapError::Config`] for invalid hierarchy geometry.
pub fn simulate_streams(
    streams: &[WarpStream],
    launch: &LaunchConfig,
    cfg: &SimtConfig,
) -> Result<SimOutcome, GmapError> {
    let mut hier = GpuHierarchy::new(cfg.hierarchy)?;
    let schedule = run_schedule(streams, launch, &cfg.gpu, cfg.policy, &mut hier, cfg.seed);
    let stats = hier.stats();
    Ok(SimOutcome {
        stats,
        schedule,
        mem_trace: hier.into_mem_trace(),
    })
}

/// Runs the original application on a configuration.
///
/// # Errors
///
/// Returns [`GmapError::Config`] for invalid hierarchy geometry.
pub fn run_original(kernel: &KernelDesc, cfg: &SimtConfig) -> Result<SimOutcome, GmapError> {
    let streams = original_streams(kernel);
    simulate_streams(&streams, &kernel.launch, cfg)
}

/// Generates and runs the clone of a profile on a configuration.
///
/// The clone stream depends only on `(profile, cfg.seed)`; the launch
/// geometry comes from the profile.
///
/// # Errors
///
/// Returns [`GmapError::Config`] for invalid hierarchy geometry.
pub fn run_proxy(profile: &GmapProfile, cfg: &SimtConfig) -> Result<SimOutcome, GmapError> {
    let streams = generate_streams(profile, cfg.seed);
    simulate_streams(&streams, &profile.launch, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{profile_kernel, ProfilerConfig};
    use gmap_gpu::workloads::{self, Scale};
    use gmap_memsim::cache::{CacheConfig, ReplacementPolicy};

    fn quick_cfg() -> SimtConfig {
        let mut cfg = SimtConfig::default();
        cfg.hierarchy.trace_capture = TraceCapture::Full;
        cfg
    }

    #[test]
    fn original_simulation_produces_stats() {
        let k = workloads::scalarprod(Scale::Tiny);
        let out = run_original(&k, &quick_cfg()).expect("valid config");
        assert!(out.stats.l1.accesses > 0);
        assert!(out.schedule.cycles > 0);
        assert!(!out.mem_trace.is_empty());
        assert!(out.l1_miss_pct() >= 0.0 && out.l1_miss_pct() <= 100.0);
    }

    #[test]
    fn proxy_tracks_original_l1_miss_rate() {
        // The headline behaviour: clone miss rate close to the original.
        for k in [
            workloads::scalarprod(Scale::Tiny),
            workloads::kmeans(Scale::Tiny),
        ] {
            let cfg = quick_cfg();
            let orig = run_original(&k, &cfg).expect("valid config");
            let profile = profile_kernel(&k, &ProfilerConfig::default());
            let proxy = run_proxy(&profile, &cfg).expect("valid config");
            let err = (orig.l1_miss_pct() - proxy.l1_miss_pct()).abs();
            assert!(
                err < 15.0,
                "{}: L1 miss {:.1}% vs proxy {:.1}% (err {err:.1}pp)",
                k.name,
                orig.l1_miss_pct(),
                proxy.l1_miss_pct()
            );
        }
    }

    #[test]
    fn bigger_l1_reduces_miss_rate_for_reuse_heavy_app() {
        let k = workloads::kmeans(Scale::Tiny);
        let mut small = quick_cfg();
        small.hierarchy.l1 =
            CacheConfig::new(8 * 1024, 4, 128, ReplacementPolicy::Lru).expect("valid");
        let mut big = quick_cfg();
        big.hierarchy.l1 =
            CacheConfig::new(128 * 1024, 4, 128, ReplacementPolicy::Lru).expect("valid");
        let m_small = run_original(&k, &small)
            .expect("valid config")
            .l1_miss_pct();
        let m_big = run_original(&k, &big).expect("valid config").l1_miss_pct();
        assert!(
            m_big <= m_small,
            "bigger L1 should not miss more: {m_big} vs {m_small}"
        );
    }

    #[test]
    fn dram_replay_from_sim_outcome() {
        let k = workloads::srad(Scale::Tiny);
        let out = run_original(&k, &quick_cfg()).expect("valid config");
        let m = out.dram_metrics(DramConfig::table2_baseline());
        assert_eq!(m.requests as usize, out.mem_trace.len());
        assert!(m.avg_read_latency > 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let k = workloads::backprop(Scale::Tiny);
        let cfg = quick_cfg();
        let a = run_original(&k, &cfg).expect("valid config");
        let b = run_original(&k, &cfg).expect("valid config");
        assert_eq!(a, b);
        let p = profile_kernel(&k, &ProfilerConfig::default());
        let c = run_proxy(&p, &cfg).expect("valid config");
        let d = run_proxy(&p, &cfg).expect("valid config");
        assert_eq!(c, d);
    }

    #[test]
    fn gto_policy_raises_sched_p_self() {
        // A kernel whose accesses nearly always hit L1 (tiny working set,
        // long reuse loop): the greedy warp is ready again next cycle, so
        // GTO keeps re-issuing it while LRR rotates. A streaming workload
        // would show ~0 for both policies.
        use gmap_gpu::kernel::{dsl, KernelBuilder};
        let k = KernelBuilder::new("hot", 4u32, 128u32)
            .array("small", 1024)
            .stmt(dsl::loop_n(
                64,
                vec![dsl::read(0x10, 0, dsl::affine(0, 1, vec![]))],
            ))
            .build()
            .expect("valid");
        let mut lrr = quick_cfg();
        lrr.policy = Policy::Lrr;
        let mut gto = quick_cfg();
        gto.policy = Policy::Gto;
        let p_lrr = run_original(&k, &lrr)
            .expect("valid config")
            .schedule
            .sched_p_self;
        let p_gto = run_original(&k, &gto)
            .expect("valid config")
            .schedule
            .sched_p_self;
        assert!(p_gto > p_lrr, "GTO SchedP_self {p_gto} <= LRR {p_lrr}");
    }
}
