//! Trace miniaturization (§4.6, Figure 8).
//!
//! "Miniaturization is performed by scaling down the number of proxy
//! accesses (J), intra-thread statistics followed by the inter-thread
//! statistics by the target scaling factor."
//!
//! The factor is split between the two axes: repeated executions inside
//! each π profile are thinned first (intra), then the grid is shrunk
//! (inter). Splitting near the square root keeps both statistics populated
//! as long as possible — the accuracy knee the paper shows at ~8× arises
//! because one of the two sample populations becomes too thin for the law
//! of large numbers to hold.

use crate::error::GmapError;
use crate::profile::{GmapProfile, PiEntry, PiProfile};
use gmap_gpu::dim::Dim3;

/// Produces a miniaturized (factor > 1) or scaled-up (factor < 1) copy of
/// a profile.
///
/// # Errors
///
/// Returns [`GmapError::BadScaleFactor`] unless `factor > 0`.
pub fn miniaturize(profile: &GmapProfile, factor: f64) -> Result<GmapProfile, GmapError> {
    if !(factor > 0.0 && factor.is_finite()) {
        return Err(GmapError::BadScaleFactor { factor });
    }
    let mut out = profile.clone();
    if (factor - 1.0).abs() < 1e-9 {
        return Ok(out);
    }
    if factor < 1.0 {
        // Scale-up: more threadblocks of the same shape (the paper's
        // "model futuristic workloads with ... larger number of threads").
        let grow = (profile.launch.grid.x as f64 / factor).round().max(1.0) as u32;
        out.launch.grid = Dim3::new(grow, profile.launch.grid.y, profile.launch.grid.z);
        out.total_warp_accesses = (profile.total_warp_accesses as f64 / factor) as u64;
        return Ok(out);
    }

    // --- Intra-thread thinning. ------------------------------------------
    // Keep the first execution of every instruction; keep every `step`-th
    // repetition after that. step ~ sqrt(factor) splits the factor between
    // the two axes.
    let step = factor.sqrt().round().max(1.0) as u64;
    let mut kept = 0u64;
    let mut orig = 0u64;
    for p in &mut out.profiles {
        *p = thin_profile(p, step);
    }
    for (i, p) in out.profiles.iter().enumerate() {
        let w = out.profile_weights.count_of(i);
        kept += w * p.num_accesses() as u64;
        orig += w * profile.profiles[i].num_accesses() as u64;
    }
    let f_intra = if kept == 0 {
        1.0
    } else {
        orig as f64 / kept as f64
    };

    // --- Inter-thread shrinking. ------------------------------------------
    let f_inter = (factor / f_intra).max(1.0);
    let shrunk = (profile.launch.grid.x as f64 / f_inter).round().max(1.0) as u32;
    out.launch.grid = Dim3::new(shrunk, profile.launch.grid.y, profile.launch.grid.z);

    // Scale the sampled statistics' populations (shape-preserving; §4.6
    // scales intra statistics first, then inter).
    let inv = 1.0 / factor;
    for h in &mut out.intra_stride {
        if !h.is_empty() {
            h.scale_counts(inv);
        }
    }
    for h in &mut out.pc_reuse {
        if !h.is_empty() {
            h.scale_counts(inv);
        }
    }
    // Thinning keeps every `step`-th execution, so reuse distances and the
    // positional schedule contract by the same step.
    if step > 1 {
        for h in &mut out.pc_reuse {
            let mut contracted = gmap_trace::Histogram::new();
            for (d, c) in h.iter() {
                let nd = if d == 0 {
                    0
                } else {
                    (d as u64 / step).max(1) as u32
                };
                contracted.add_n(nd, c);
            }
            *h = contracted;
        }
        // The stride from kept ordinal j to j+1 is the sum of the original
        // strides across the thinned-out gap — defined only where every
        // intermediate stride was structural.
        for sched in &mut out.intra_stride_schedule {
            let thinned: Vec<Option<i64>> = (0..)
                .map(|j| j * step as usize)
                .take_while(|&s| s + step as usize <= sched.len())
                .map(|s| {
                    sched[s..s + step as usize]
                        .iter()
                        .try_fold(0i64, |acc, d| d.map(|d| acc + d))
                })
                .collect();
            *sched = thinned;
        }
        for sched in &mut out.pc_reuse_schedule {
            let thinned: Vec<Option<u32>> = (1..)
                .map(|j| j * step as usize)
                .take_while(|&e| e <= sched.len())
                .map(|e| {
                    sched[e - 1].map(|d| {
                        if d == 0 {
                            0
                        } else {
                            (d as u64 / step).max(1) as u32
                        }
                    })
                })
                .collect();
            *sched = thinned;
        }
    }
    for r in &mut out.reuse {
        r.scale_counts(inv);
    }
    for h in &mut out.inter_stride {
        if !h.is_empty() {
            h.scale_counts(inv);
        }
    }
    out.total_warp_accesses = ((profile.total_warp_accesses as f64) / factor).round() as u64;
    Ok(out)
}

/// Keeps the first occurrence of every slot plus every `step`-th
/// repetition, preserving order and barriers.
fn thin_profile(p: &PiProfile, step: u64) -> PiProfile {
    if step <= 1 {
        return p.clone();
    }
    let mut occ: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    let entries = p
        .entries
        .iter()
        .filter(|e| match e {
            PiEntry::Sync => true,
            PiEntry::Mem(slot) => {
                let c = occ.entry(*slot).or_insert(0);
                let keep = (*c).is_multiple_of(step);
                *c += 1;
                keep
            }
        })
        .copied()
        .collect();
    PiProfile { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{expected_accesses, generate_streams};
    use crate::profiler::{profile_kernel, ProfilerConfig};
    use gmap_gpu::workloads::{self, Scale};

    fn base_profile() -> GmapProfile {
        profile_kernel(
            &workloads::scalarprod(Scale::Small),
            &ProfilerConfig::default(),
        )
    }

    #[test]
    fn factor_one_is_identity() {
        let p = base_profile();
        assert_eq!(miniaturize(&p, 1.0).expect("valid factor"), p);
    }

    #[test]
    fn invalid_factors_rejected() {
        let p = base_profile();
        assert!(matches!(
            miniaturize(&p, 0.0),
            Err(GmapError::BadScaleFactor { .. })
        ));
        assert!(miniaturize(&p, -2.0).is_err());
        assert!(miniaturize(&p, f64::NAN).is_err());
        assert!(miniaturize(&p, f64::INFINITY).is_err());
    }

    #[test]
    fn clone_shrinks_by_roughly_the_factor() {
        let p = base_profile();
        let full = expected_accesses(&p);
        for factor in [2.0, 4.0, 8.0] {
            let m = miniaturize(&p, factor).expect("valid factor");
            let small = expected_accesses(&m);
            let achieved = full as f64 / small as f64;
            assert!(
                achieved > factor * 0.5 && achieved < factor * 2.0,
                "factor {factor}: achieved {achieved:.2} (full {full}, small {small})"
            );
        }
    }

    #[test]
    fn thinning_keeps_first_occurrences() {
        let p = PiProfile {
            entries: vec![
                PiEntry::Mem(0),
                PiEntry::Mem(1),
                PiEntry::Mem(0),
                PiEntry::Sync,
                PiEntry::Mem(0),
                PiEntry::Mem(0),
            ],
        };
        let t = thin_profile(&p, 2);
        // Slot 0 has 4 occurrences at positions 0,2,4,5; step 2 keeps
        // occurrences 0 and 2 (positions 0 and 4). Slot 1's single
        // occurrence and the barrier are kept.
        assert_eq!(
            t.entries,
            vec![
                PiEntry::Mem(0),
                PiEntry::Mem(1),
                PiEntry::Sync,
                PiEntry::Mem(0)
            ]
        );
    }

    #[test]
    fn miniaturized_profile_still_generates() {
        let p = base_profile();
        let m = miniaturize(&p, 8.0).expect("valid factor");
        m.validate().expect("still consistent");
        let streams = generate_streams(&m, 5);
        assert!(!streams.is_empty());
        let total: usize = streams.iter().map(|s| s.num_accesses()).sum();
        assert!(total > 0);
    }

    #[test]
    fn scale_up_grows_the_grid() {
        let p = base_profile();
        let up = miniaturize(&p, 0.5).expect("valid factor");
        assert_eq!(up.launch.grid.x, p.launch.grid.x * 2);
        assert!(expected_accesses(&up) > expected_accesses(&p));
    }

    #[test]
    fn support_survives_extreme_miniaturization() {
        let p = base_profile();
        let m = miniaturize(&p, 16.0).expect("valid factor");
        for (orig, mini) in p.intra_stride.iter().zip(&m.intra_stride) {
            let a: Vec<i64> = orig.support().collect();
            let b: Vec<i64> = mini.support().collect();
            assert_eq!(a, b, "stride support must be preserved");
        }
    }
}
