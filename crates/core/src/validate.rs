//! Validation metrics (paper §5).
//!
//! "We use two metrics for validation: the percentage error between
//! original and proxy performance metrics and Pearson's correlation
//! coefficient" — error says how close the clone's absolute numbers are;
//! correlation says whether the clone *ranks* configurations the way the
//! original does, which is what design-space exploration actually needs.

use gmap_trace::stats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Original-vs-proxy comparison of one benchmark across a configuration
/// sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkComparison {
    /// Benchmark name.
    pub name: String,
    /// Original metric per configuration.
    pub original: Vec<f64>,
    /// Proxy metric per configuration (same order).
    pub proxy: Vec<f64>,
    /// Mean absolute error, in the metric's unit (percentage points for
    /// miss rates).
    pub mean_abs_err: f64,
    /// Mean relative error, as a fraction of the original.
    pub mean_rel_err: f64,
    /// Pearson correlation across the sweep.
    pub correlation: f64,
}

impl fmt::Display for BenchmarkComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} err={:6.2}  rel={:6.2}%  corr={:5.2}  ({} configs)",
            self.name,
            self.mean_abs_err,
            self.mean_rel_err * 100.0,
            self.correlation,
            self.original.len()
        )
    }
}

/// Compares a benchmark's original and proxy metric series.
///
/// # Panics
///
/// Panics if the series lengths differ (a harness bug, not user input).
pub fn compare_series(name: &str, original: Vec<f64>, proxy: Vec<f64>) -> BenchmarkComparison {
    assert_eq!(original.len(), proxy.len(), "sweep series must align");
    let mean_abs_err = stats::mean_abs_error(&original, &proxy);
    let mean_rel_err = stats::mean_rel_error(&original, &proxy);
    let correlation = stats::pearson(&original, &proxy);
    BenchmarkComparison {
        name: name.to_owned(),
        original,
        proxy,
        mean_abs_err,
        mean_rel_err,
        correlation,
    }
}

/// Summary over all benchmarks of one experiment (one paper figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Per-benchmark comparisons.
    pub per_benchmark: Vec<BenchmarkComparison>,
    /// Average of the per-benchmark mean absolute errors.
    pub avg_error: f64,
    /// Average of the per-benchmark correlations.
    pub avg_correlation: f64,
    /// Total validation points (benchmarks × configurations).
    pub validation_points: usize,
}

/// Aggregates per-benchmark comparisons into the figure-level summary the
/// paper reports ("the average error ... and average correlation ...").
pub fn summarize(per_benchmark: Vec<BenchmarkComparison>) -> SweepSummary {
    let errs: Vec<f64> = per_benchmark.iter().map(|b| b.mean_abs_err).collect();
    let corrs: Vec<f64> = per_benchmark.iter().map(|b| b.correlation).collect();
    let validation_points = per_benchmark.iter().map(|b| b.original.len()).sum();
    SweepSummary {
        avg_error: stats::mean(&errs),
        avg_correlation: stats::mean(&corrs),
        validation_points,
        per_benchmark,
    }
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.per_benchmark {
            writeln!(f, "{b}")?;
        }
        write!(
            f,
            "average: err={:.2}  corr={:.2}  over {} validation points",
            self.avg_error, self.avg_correlation, self.validation_points
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_proxy_scores_zero_error_full_correlation() {
        let c = compare_series("x", vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]);
        assert_eq!(c.mean_abs_err, 0.0);
        assert!((c.correlation - 1.0).abs() < 1e-9);
    }

    #[test]
    fn biased_but_tracking_proxy_keeps_correlation() {
        let c = compare_series("x", vec![10.0, 20.0, 30.0], vec![12.0, 22.0, 32.0]);
        assert!((c.mean_abs_err - 2.0).abs() < 1e-12);
        assert!((c.correlation - 1.0).abs() < 1e-12);
        assert!((c.mean_rel_err - (0.2 + 0.1 + 2.0 / 30.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_averages_over_benchmarks() {
        let s = summarize(vec![
            compare_series("a", vec![1.0, 2.0], vec![1.0, 2.0]),
            compare_series("b", vec![5.0, 7.0], vec![7.0, 9.0]),
        ]);
        assert!((s.avg_error - 1.0).abs() < 1e-12);
        assert!((s.avg_correlation - 1.0).abs() < 1e-12);
        assert_eq!(s.validation_points, 4);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_series_panic() {
        compare_series("x", vec![1.0], vec![1.0, 2.0]);
    }

    #[test]
    fn display_formats() {
        let s = summarize(vec![compare_series("aes", vec![1.0, 2.0], vec![1.5, 2.5])]);
        let text = s.to_string();
        assert!(text.contains("aes"));
        assert!(text.contains("average:"));
    }
}
