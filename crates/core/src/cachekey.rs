//! Canonical JSON and content-addressed cache keys.
//!
//! The `gmap serve` model cache (and anything else that wants to reuse a
//! profile computed for an identical input) needs a stable identity for
//! "the same request": two workload specs that serialize to the same
//! canonical JSON must map to the same key, and any difference in the
//! spec must change it. The vendored serde data model makes canonical
//! form easy — struct fields serialize in declaration order, `BTreeMap`
//! entries as ordered pairs, and [`serde_json::to_string`] emits no
//! insignificant whitespace — so the compact rendering *is* the
//! canonical form.
//!
//! Keys are 128-bit FNV-1a digests rendered as 32 hex characters. FNV is
//! not collision-resistant against adversaries, but the cache is a
//! performance optimization keyed by trusted request bodies, not a
//! security boundary; 128 bits makes accidental collisions negligible.

use serde::Serialize;

/// The canonical (compact, field-ordered) JSON rendering of a value.
///
/// Struct fields appear in declaration order and `BTreeMap` entries in
/// ascending key order, so equal values always produce byte-identical
/// JSON.
pub fn canonical_json<T: Serialize + ?Sized>(value: &T) -> String {
    serde_json::to_string(value).expect("canonical rendering cannot fail")
}

/// 64-bit FNV-1a over a byte slice with a caller-chosen offset basis.
fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Content key of a canonical byte string: a 128-bit digest as 32 lower
/// hex characters, stable across runs and platforms.
pub fn content_key(canonical: &str) -> String {
    // Two independent 64-bit FNV-1a passes (standard offset basis, and
    // the same basis with the length folded in) give 128 key bits.
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    let bytes = canonical.as_bytes();
    let lo = fnv1a64(bytes, BASIS);
    let hi = fnv1a64(bytes, BASIS ^ (bytes.len() as u64).wrapping_mul(PRIME_MIX));
    format!("{hi:016x}{lo:016x}")
}

/// Mix constant separating the two FNV passes of [`content_key`].
const PRIME_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Convenience: the content key of a value's canonical JSON.
pub fn key_of<T: Serialize + ?Sized>(value: &T) -> String {
    content_key(&canonical_json(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn canonical_json_is_compact_and_ordered() {
        // The vendored serde renders maps as ordered key/value pairs;
        // what matters for cache keys is that the rendering is compact
        // and independent of insertion order.
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let json = canonical_json(&m);
        assert_eq!(json, "[[\"a\",1],[\"b\",2]]");
        let mut swapped = BTreeMap::new();
        swapped.insert("a".to_string(), 1u64);
        swapped.insert("b".to_string(), 2u64);
        assert_eq!(json, canonical_json(&swapped));
    }

    #[test]
    fn key_is_stable_and_hex() {
        let k = content_key("hello");
        assert_eq!(k.len(), 32);
        assert!(k.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(k, content_key("hello"));
    }

    #[test]
    fn different_content_changes_key() {
        assert_ne!(content_key("a"), content_key("b"));
        assert_ne!(content_key(""), content_key("\0"));
        // Same FNV64 inputs of different length must still separate.
        assert_ne!(content_key("ab"), content_key("ab\0"));
    }

    #[test]
    fn key_of_tracks_value_identity() {
        let a: Vec<u64> = vec![1, 2, 3];
        let b: Vec<u64> = vec![1, 2, 3];
        let c: Vec<u64> = vec![3, 2, 1];
        assert_eq!(key_of(&a), key_of(&b));
        assert_ne!(key_of(&a), key_of(&c));
    }
}
