//! Error type of the G-MAP core crate.

use gmap_memsim::cache::ConfigError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors surfaced by profiling, generation, modeling and profile I/O.
#[derive(Debug)]
pub enum GmapError {
    /// An invalid cache/hierarchy configuration.
    Config(ConfigError),
    /// Profile (de)serialization failed.
    Serde(serde_json::Error),
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The input streams were unusable (e.g. no memory accesses at all).
    EmptyProfile,
    /// A miniaturization factor outside `(0, ∞)`.
    BadScaleFactor {
        /// The offending factor.
        factor: f64,
    },
    /// The static analyzer found correctness errors in a kernel spec:
    /// the admission gate refuses to profile it.
    Inadmissible {
        /// Name of the offending kernel.
        kernel: String,
        /// Rendered error findings, one per line.
        findings: Vec<String>,
    },
    /// The analyzer self-check failed: the executor emitted an address
    /// outside the static per-PC interval (an analyzer bug, not a spec
    /// bug — surfaced loudly rather than papered over).
    SelfCheck {
        /// Name of the offending kernel.
        kernel: String,
        /// Description of the first violations.
        detail: String,
    },
}

impl fmt::Display for GmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmapError::Config(e) => write!(f, "invalid configuration: {e}"),
            GmapError::Serde(e) => write!(f, "profile serialization failed: {e}"),
            GmapError::Io(e) => write!(f, "profile i/o failed: {e}"),
            GmapError::EmptyProfile => f.write_str("input contains no memory accesses"),
            GmapError::BadScaleFactor { factor } => {
                write!(f, "miniaturization factor {factor} must be positive")
            }
            GmapError::Inadmissible { kernel, findings } => {
                write!(
                    f,
                    "kernel '{kernel}' rejected by static analysis: {}",
                    findings.join("; ")
                )
            }
            GmapError::SelfCheck { kernel, detail } => {
                write!(
                    f,
                    "static/dynamic self-check failed for kernel '{kernel}': {detail}"
                )
            }
        }
    }
}

impl Error for GmapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GmapError::Config(e) => Some(e),
            GmapError::Serde(e) => Some(e),
            GmapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for GmapError {
    fn from(e: ConfigError) -> Self {
        GmapError::Config(e)
    }
}

impl From<serde_json::Error> for GmapError {
    fn from(e: serde_json::Error) -> Self {
        GmapError::Serde(e)
    }
}

impl From<io::Error> for GmapError {
    fn from(e: io::Error) -> Self {
        GmapError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(GmapError::EmptyProfile
            .to_string()
            .contains("no memory accesses"));
        assert!(GmapError::BadScaleFactor { factor: -1.0 }
            .to_string()
            .contains("-1"));
    }

    #[test]
    fn conversions_work() {
        let e: GmapError = ConfigError::Zero.into();
        assert!(matches!(e, GmapError::Config(_)));
        let e: GmapError = io::Error::new(io::ErrorKind::NotFound, "x").into();
        assert!(matches!(e, GmapError::Io(_)));
        assert!(e.source().is_some());
    }
}
